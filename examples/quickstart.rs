//! Quickstart: parse a small VHDL1 design, run the Information Flow analysis
//! and print the resulting graph (and its Graphviz form).
//!
//! Run with `cargo run --example quickstart`.

use vhdl_infoflow::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-process design: an input is latched into an internal signal, a
    // second process forwards it to the output under a gate condition.
    let src = "
        entity gatekeeper is
          port(
            data_in : in std_logic_vector(7 downto 0);
            enable  : in std_logic;
            data_out : out std_logic_vector(7 downto 0)
          );
        end gatekeeper;
        architecture rtl of gatekeeper is
          signal latched : std_logic_vector(7 downto 0);
        begin
          latch : process
          begin
            latched <= data_in;
            wait on data_in;
          end process latch;

          forward : process
            variable buffered : std_logic_vector(7 downto 0);
          begin
            if enable = '1' then
              buffered := latched;
            else
              buffered := \"00000000\";
            end if;
            data_out <= buffered;
            wait on latched, enable;
          end process forward;
        end rtl;";

    let design = frontend(src)?;
    println!(
        "design `{}`: {} signals, {} processes, {} labelled blocks",
        design.name,
        design.signals.len(),
        design.processes.len(),
        design.max_label()
    );

    let result = analyze(&design);
    let graph = result.flow_graph();

    println!("\ninformation flows (edge = information may flow):");
    for (from, to) in graph.edges() {
        println!("  {from} -> {to}");
    }

    // The implicit flow from the gate condition is captured:
    assert!(graph.has_edge("enable", "data_out"));
    assert!(graph.has_edge("data_in", "data_out"));

    println!(
        "\nGraphviz DOT:\n{}",
        graph.merge_io_nodes().to_dot("gatekeeper")
    );
    Ok(())
}
