//! Quickstart: open an analysis session ([`Engine`]), query the Information
//! Flow graph of a small VHDL1 design on demand and print it (and its
//! Graphviz form).
//!
//! Run with `cargo run --example quickstart`.

use vhdl_infoflow::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-process design: an input is latched into an internal signal, a
    // second process forwards it to the output under a gate condition.
    let src = "
        entity gatekeeper is
          port(
            data_in : in std_logic_vector(7 downto 0);
            enable  : in std_logic;
            data_out : out std_logic_vector(7 downto 0)
          );
        end gatekeeper;
        architecture rtl of gatekeeper is
          signal latched : std_logic_vector(7 downto 0);
        begin
          latch : process
          begin
            latched <= data_in;
            wait on data_in;
          end process latch;

          forward : process
            variable buffered : std_logic_vector(7 downto 0);
          begin
            if enable = '1' then
              buffered := latched;
            else
              buffered := \"00000000\";
            end if;
            data_out <= buffered;
            wait on latched, enable;
          end process forward;
        end rtl;";

    // An Engine is a long-lived analysis session: options, memo table and
    // stage counters.  `analyze_source` parses, elaborates and hands back a
    // lazy Analysis — nothing below runs until a stage is queried.
    let engine = Engine::default();
    let analysis = engine.analyze_source(src)?;
    let design = analysis.design();
    println!(
        "design `{}`: {} signals, {} processes, {} labelled blocks",
        design.name,
        design.signals.len(),
        design.processes.len(),
        design.max_label()
    );

    // First demand computes the pipeline; every later call is a memo hit
    // returning the same borrowed graph.  Stage queries are fallible — the
    // engine's resource budget (unlimited by default) can cut them short.
    let graph = analysis.flow_graph()?;

    println!("\ninformation flows (edge = information may flow):");
    for (from, to) in graph.edges() {
        println!("  {from} -> {to}");
    }

    // The implicit flow from the gate condition is captured:
    assert!(graph.has_edge("enable", "data_out"));
    assert!(graph.has_edge("data_in", "data_out"));

    println!(
        "\nGraphviz DOT:\n{}",
        analysis.merged_flow_graph()?.to_dot("gatekeeper")
    );

    // Re-analysing the same source is free — served from the content-hash
    // memo table without even reparsing:
    let again = engine.analyze_source(src)?;
    assert!(std::ptr::eq(graph, again.flow_graph()?));
    assert_eq!(engine.stats().cache_hits, 1);
    Ok(())
}
