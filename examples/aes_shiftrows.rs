//! Reproduction of Figure 5: Kemmerer's covert-channel analysis versus the
//! RD-based Information Flow analysis on the AES ShiftRows function.
//!
//! Run with `cargo run --example aes_shiftrows`.

use vhdl_infoflow::aes::vhdl::shift_rows_vhdl;
use vhdl_infoflow::infoflow::{analyze, Node};
use vhdl_infoflow::syntax::frontend;

/// Row index of a `prefix_row_col` byte name.
fn row_of(name: &str) -> Option<usize> {
    let parts: Vec<&str> = name.split('_').collect();
    if parts.len() != 3 {
        return None;
    }
    parts[2].parse::<usize>().ok()?;
    parts[1].parse().ok()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = shift_rows_vhdl();
    println!(
        "generated ShiftRows workload: {} lines of VHDL1",
        src.lines().count()
    );

    let design = frontend(&src)?;
    let result = analyze(&design);

    // Present both graphs the way the paper does: incoming/outgoing nodes
    // merged, output ports identified with the corresponding state byte, and
    // only the three shifted rows shown.
    let present = |g: &vhdl_infoflow::infoflow::FlowGraph| {
        g.merge_io_nodes()
            .map_names(|n| {
                n.strip_prefix("b_")
                    .map(|r| format!("a_{r}"))
                    .unwrap_or_else(|| n.to_string())
            })
            .restrict(|n: &Node| matches!(row_of(n.name()), Some(r) if (1..=3).contains(&r)))
    };

    let ours = present(&result.flow_graph());
    let kemmerer = present(&result.kemmerer_flow_graph());

    println!(
        "\nFigure 5(b) — this paper's analysis ({} edges):",
        ours.edge_count()
    );
    for row in 1..=3 {
        let mut edges: Vec<String> = ours
            .edges()
            .filter(|(f, _)| row_of(f.name()) == Some(row))
            .map(|(f, t)| format!("{f}->{t}"))
            .collect();
        edges.sort();
        println!("  row {row}: {}", edges.join(", "));
    }

    println!(
        "\nFigure 5(a) — Kemmerer's method ({} edges, {} of them across rows):",
        kemmerer.edge_count(),
        kemmerer
            .edges()
            .filter(|(f, t)| row_of(f.name()) != row_of(t.name()))
            .count()
    );
    println!("  (every byte of a shifted row depends on every byte routed through the shared temporaries)");

    println!(
        "\nDOT of the precise graph:\n{}",
        ours.to_dot("shift_rows_ours")
    );
    Ok(())
}
