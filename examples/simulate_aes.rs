//! Simulate the generated AES-128 VHDL1 implementation on the FIPS-197 test
//! vector and compare it against the Rust reference model — the validation
//! role ModelSim plays in the paper.
//!
//! Run with `cargo run --release --example simulate_aes`.

use vhdl_infoflow::aes::vhdl::aes128_vhdl;
use vhdl_infoflow::aes::{encrypt_block, hex_block};
use vhdl_infoflow::sim::Simulator;
use vhdl_infoflow::syntax::frontend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = aes128_vhdl();
    println!(
        "generated AES-128 VHDL1: {} lines (fully unrolled)",
        src.lines().count()
    );

    let design = frontend(&src)?;
    println!(
        "elaborated: {} signals, {} labelled blocks",
        design.signals.len(),
        design.max_label()
    );

    let key = hex_block("000102030405060708090a0b0c0d0e0f");
    let pt = hex_block("00112233445566778899aabbccddeeff");

    let mut sim = Simulator::new(&design)?;
    sim.run_until_quiescent(50)?;
    for i in 0..16 {
        sim.drive_input_unsigned(&format!("pt_{i}"), pt[i] as u128)?;
        sim.drive_input_unsigned(&format!("key_{i}"), key[i] as u128)?;
    }
    sim.run_until_quiescent(50)?;

    let ct: Vec<u8> = (0..16)
        .map(|i| {
            sim.signal(&format!("ct_{i}"))
                .unwrap()
                .to_unsigned()
                .unwrap() as u8
        })
        .collect();
    let expected = encrypt_block(&key, &pt);

    let hex = |bytes: &[u8]| bytes.iter().map(|b| format!("{b:02x}")).collect::<String>();
    println!("plaintext : {}", hex(&pt));
    println!("key       : {}", hex(&key));
    println!("simulated : {}", hex(&ct));
    println!("reference : {}", hex(&expected));
    println!("delta cycles: {}", sim.delta_count());
    assert_eq!(
        ct,
        expected.to_vec(),
        "VHDL1 simulation must match the reference model"
    );
    println!("AES-128 VHDL1 implementation validated against FIPS-197");
    Ok(())
}
