//! A Common Criteria style covert-channel audit (the paper's motivating use
//! case, Chapter 14 of the CC): classify the resources of a small crypto
//! design with security levels and check every information flow reported by
//! the analysis against the policy.
//!
//! The audit goes through the same reporter as the `vhdl1c` batch driver
//! ([`vhdl1_cli::report`]), so what this example prints is exactly what
//! `vhdl1c analyze --format text` prints for the same design and policy.
//!
//! Run with `cargo run --example covert_channel_audit`.

use vhdl1_cli::report::{analysis_report, BatchReport};
use vhdl_infoflow::infoflow::{Engine, Policy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The design xors the secret key into the data path (allowed, it is the
    // cipher) but also copies a key byte to a debug port when debugging is
    // enabled — the covert channel the audit must surface.
    let src = "
        entity leaky_cipher is
          port(
            plaintext : in std_logic_vector(7 downto 0);
            key       : in std_logic_vector(7 downto 0);
            debug_en  : in std_logic;
            ciphertext : out std_logic_vector(7 downto 0);
            debug_out  : out std_logic_vector(7 downto 0)
          );
        end leaky_cipher;
        architecture rtl of leaky_cipher is
        begin
          encrypt : process
            variable mixed : std_logic_vector(7 downto 0);
          begin
            mixed := plaintext xor key;
            ciphertext <= mixed;
            wait on plaintext, key;
          end process encrypt;

          debug : process
            variable probe : std_logic_vector(7 downto 0);
          begin
            if debug_en = '1' then
              probe := key;
            else
              probe := \"00000000\";
            end if;
            debug_out <= probe;
            wait on key, debug_en;
          end process debug;
        end rtl;";

    // One session, one lazy analysis: the reporter demands exactly the
    // merged flow graph; auditing a second policy later would reuse it.
    let engine = Engine::default();
    let analysis = engine.analyze_source(src)?;

    // Security lattice: key is secret (level 2), everything externally
    // observable is public (level 0).  Flows into the ciphertext are
    // explicitly declassified — that is what the cipher is for.
    let policy = Policy::new()
        .with_level("key", 2)
        .with_level("plaintext", 0)
        .with_level("debug_en", 0)
        .with_level("ciphertext", 0)
        .with_level("debug_out", 0)
        .with_allowed("key", "ciphertext")
        .with_allowed("key", "mixed");

    // One design, one report — rendered by the product reporter.  The
    // default budget is unlimited, so the only error source here is the
    // engine itself.
    let report = analysis_report(&analysis, &policy)?;
    let batch = BatchReport {
        designs: vec![report],
        ..BatchReport::default()
    };
    print!("{}", batch.to_text());

    // The leak through the debug port must be flagged.
    let report = &batch.designs[0];
    assert!(!report.is_secure());
    assert!(report
        .violations
        .iter()
        .any(|v| v.from == "key" && v.to.starts_with("debug")));
    Ok(())
}
