//! `vhdl-ifc` — command-line front end for the Information Flow analysis.
//!
//! ```console
//! $ vhdl-ifc analyze design.vhd            # list information flows
//! $ vhdl-ifc analyze design.vhd --dot      # Graphviz output
//! $ vhdl-ifc analyze design.vhd --base     # base closure (no ◦/• nodes)
//! $ vhdl-ifc compare design.vhd            # this paper's analysis vs Kemmerer
//! $ vhdl-ifc simulate design.vhd sig=VALUE ...   # drive inputs, print outputs
//! ```

use std::process::ExitCode;
use vhdl_infoflow::infoflow::{AnalysisOptions, Engine};
use vhdl_infoflow::sim::{Simulator, Value};
use vhdl_infoflow::syntax::frontend;

fn usage() -> &'static str {
    "usage:\n  vhdl-ifc analyze <file.vhd> [--dot] [--base] [--sequential]\n  vhdl-ifc compare <file.vhd>\n  vhdl-ifc simulate <file.vhd> [signal=value ...]\n\nvalues are bit strings (e.g. data=10110001) or single std_logic characters"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (command, rest) = args.split_first().ok_or("missing command")?;
    match command.as_str() {
        "analyze" => analyze_command(rest),
        "compare" => compare_command(rest),
        "simulate" => simulate_command(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn load_source(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn load_design(path: &str) -> Result<vhdl_infoflow::syntax::Design, String> {
    frontend(&load_source(path)?).map_err(|e| e.to_string())
}

fn options(flags: &[String]) -> AnalysisOptions {
    let mut opts = if flags.iter().any(|f| f == "--sequential") {
        AnalysisOptions::sequential_illustration()
    } else {
        AnalysisOptions::default()
    };
    if flags.iter().any(|f| f == "--base") {
        opts.improved = false;
    }
    opts
}

fn analyze_command(args: &[String]) -> Result<(), String> {
    let (path, flags) = args.split_first().ok_or("analyze needs a file")?;
    // Demand-driven: the engine computes exactly the stages the flow graph
    // needs under the selected options (no Table-9 work under `--base`),
    // and front-end failures arrive as structured, positioned errors.
    let src = load_source(path)?;
    let engine = Engine::with_options(options(flags));
    let analysis = engine.analyze_source(&src).map_err(|e| e.to_string())?;
    // Report from the persisted summary and graph-label artifacts rather
    // than the elaborated design, so a warm persistent cache serves this
    // command without re-running any front-end work.
    let summary = analysis.summary();
    let graph = analysis.flow_graph().map_err(|e| e.to_string())?;
    if flags.iter().any(|f| f == "--dot") {
        println!(
            "{}",
            graph.to_dot_with(&summary.name, analysis.graph_labels())
        );
        return Ok(());
    }
    println!(
        "design `{}`: {} processes, {} labelled blocks, {} resources",
        summary.name, summary.processes, summary.labels, summary.resources
    );
    println!("information flows ({} edges):", graph.edge_count());
    for (from, to) in graph.edges() {
        println!("  {from} -> {to}");
    }
    Ok(())
}

fn compare_command(args: &[String]) -> Result<(), String> {
    let (path, flags) = args.split_first().ok_or("compare needs a file")?;
    let design = load_design(path)?;
    let mut opts = options(flags);
    opts.improved = false;
    let engine = Engine::with_options(opts);
    let analysis = engine.analyze(&design);
    let ours = analysis.base_flow_graph().map_err(|e| e.to_string())?;
    let kemmerer = analysis.kemmerer_graph().map_err(|e| e.to_string())?;
    println!(
        "this paper : {} edges (non-transitive: {})",
        ours.edge_count(),
        !ours.is_transitive()
    );
    println!(
        "kemmerer   : {} edges (always transitive)",
        kemmerer.edge_count()
    );
    let spurious = kemmerer.edge_difference(ours);
    println!(
        "edges reported only by Kemmerer's method ({}):",
        spurious.len()
    );
    for (from, to) in spurious {
        println!("  {from} -> {to}");
    }
    Ok(())
}

fn simulate_command(args: &[String]) -> Result<(), String> {
    let (path, drives) = args.split_first().ok_or("simulate needs a file")?;
    let design = load_design(path)?;
    let mut sim = Simulator::new(&design).map_err(|e| e.to_string())?;
    sim.run_until_quiescent(1000).map_err(|e| e.to_string())?;
    for drive in drives {
        let (name, value) = drive
            .split_once('=')
            .ok_or_else(|| format!("expected signal=value, got `{drive}`"))?;
        let value = Value::vector(value)
            .or_else(|| value.chars().next().and_then(Value::logic))
            .ok_or_else(|| format!("`{value}` is not a std_logic value or bit string"))?;
        sim.drive_input(name, value).map_err(|e| e.to_string())?;
    }
    sim.run_until_quiescent(10_000).map_err(|e| e.to_string())?;
    println!("after {} delta cycles:", sim.delta_count());
    for out in design.output_signals() {
        if let Some(v) = sim.signal(&out) {
            println!("  {out} = {v}");
        }
    }
    Ok(())
}
