//! # `vhdl-infoflow` — Information Flow Analysis for VHDL
//!
//! Facade crate re-exporting the full reproduction of *Information Flow
//! Analysis for VHDL* (Tolstrup, Nielson & Nielson, PaCT 2005):
//!
//! * [`syntax`] — the VHDL1 front end (lexer, parser, elaboration),
//! * [`sim`] — the structural operational semantics simulator,
//! * [`dataflow`] — the Reaching Definitions analyses of Section 4,
//! * [`alfp`] — the ALFP/Datalog constraint solver (Succinct Solver substrate),
//! * [`infoflow`] — the Information Flow analysis of Section 5,
//! * [`aes`] — the AES-128 VHDL1 workloads of the evaluation (Section 6).
//!
//! ```
//! use vhdl_infoflow::prelude::*;
//!
//! let design = frontend(
//!     "entity e is port(a : in std_logic; b : out std_logic); end e;
//!      architecture rtl of e is begin
//!        p : process begin b <= a; wait on a; end process p;
//!      end rtl;")?;
//! let graph = analyze(&design).flow_graph();
//! assert!(graph.has_edge("a", "b"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aes_vhdl as aes;
pub use alfp_solver as alfp;
pub use vhdl1_dataflow as dataflow;
pub use vhdl1_infoflow as infoflow;
pub use vhdl1_sim as sim;
pub use vhdl1_syntax as syntax;

/// Commonly used items for working with the analysis end to end.
pub mod prelude {
    pub use crate::infoflow::{
        analyze, Analysis, AnalysisOptions, AnalysisResult, Engine, EngineError, FlowGraph,
    };
    pub use crate::syntax::{elaborate, frontend, parse, Design, Program};
}
