//! The naive reference evaluator: per stratum, re-derive every tuple from
//! scratch each round over string-keyed bindings until nothing new appears.
//!
//! This is the solver's original evaluation strategy, kept verbatim as the
//! oracle for differential testing of the semi-naive engine (see the
//! `semi_naive_agrees_with_naive_*` tests) and for before/after
//! benchmarking via the `naive` feature.  It is deliberately simple and
//! allocation-heavy; do not use it on large programs.

use crate::{Literal, Model, Program, Rule, Term, Tuple};
use std::collections::{BTreeMap, BTreeSet};

type Bindings = BTreeMap<String, String>;
type Relations = BTreeMap<String, BTreeSet<Tuple>>;

/// Computes the least model naively.  `strata` must come from
/// `Program::stratify` on the same (already checked) program.
pub(crate) fn solve(program: &Program, strata: &[BTreeSet<String>]) -> Model {
    let mut relations: Relations = BTreeMap::new();

    // Facts from the interned fast path, resolved back to strings.
    for (pred, args) in &program.interned_facts {
        let name = program.interner.resolve(*pred).to_string();
        let tuple: Tuple = args
            .iter()
            .map(|&s| program.interner.resolve(s).to_string())
            .collect();
        relations.entry(name).or_default().insert(tuple);
    }

    for stratum in strata {
        let rules: Vec<&Rule> = program
            .rules
            .iter()
            .filter(|r| stratum.contains(&r.head_predicate))
            .collect();
        evaluate_stratum(&rules, &mut relations);
    }

    Model::from_string_relations(relations)
}

fn evaluate_stratum(rules: &[&Rule], relations: &mut Relations) {
    loop {
        let mut new_tuples: Vec<(String, Tuple)> = Vec::new();
        for rule in rules {
            let mut bindings: Vec<Bindings> = vec![BTreeMap::new()];
            for lit in &rule.body {
                bindings = extend_bindings(&bindings, lit, relations);
                if bindings.is_empty() {
                    break;
                }
            }
            for b in &bindings {
                let tuple: Option<Tuple> = rule
                    .head_args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => Some(c.clone()),
                        Term::Var(v) => b.get(v).cloned(),
                    })
                    .collect();
                if let Some(tuple) = tuple {
                    let rel = relations.entry(rule.head_predicate.clone()).or_default();
                    if !rel.contains(&tuple) {
                        new_tuples.push((rule.head_predicate.clone(), tuple));
                    }
                }
            }
        }
        if new_tuples.is_empty() {
            return;
        }
        for (pred, tuple) in new_tuples {
            relations.entry(pred).or_default().insert(tuple);
        }
    }
}

fn extend_bindings(current: &[Bindings], lit: &Literal, relations: &Relations) -> Vec<Bindings> {
    let empty = BTreeSet::new();
    let relation = relations.get(&lit.predicate).unwrap_or(&empty);
    let mut out = Vec::new();
    for binding in current {
        if lit.negated {
            // All variables are bound (safety); check membership.
            let tuple: Option<Tuple> = lit
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(c) => Some(c.clone()),
                    Term::Var(v) => binding.get(v).cloned(),
                })
                .collect();
            match tuple {
                Some(t) if !relation.contains(&t) => out.push(binding.clone()),
                _ => {}
            }
        } else {
            for tuple in relation {
                if let Some(extended) = unify(binding, &lit.args, tuple) {
                    out.push(extended);
                }
            }
        }
    }
    out
}

fn unify(binding: &Bindings, args: &[Term], tuple: &[String]) -> Option<Bindings> {
    if args.len() != tuple.len() {
        return None;
    }
    let mut out = binding.clone();
    for (arg, value) in args.iter().zip(tuple) {
        match arg {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => match out.get(v) {
                Some(existing) if existing != value => return None,
                Some(_) => {}
                None => {
                    out.insert(v.clone(), value.clone());
                }
            },
        }
    }
    Some(out)
}
