//! # `alfp-solver` — a stratified Datalog / ALFP constraint solver
//!
//! The paper implements both its own analysis and Kemmerer's method in the
//! *Succinct Solver*, a solver for Alternation-free Least Fixed Point logic
//! (ALFP).  The Succinct Solver itself is not distributed, so this crate
//! provides the substrate from scratch: a bottom-up, semi-naive Datalog
//! engine with stratified negation, which computes the same least models for
//! the clause systems the analyses generate (see `vhdl1-infoflow`'s
//! `alfp_encoding` module for the encodings and the cross-check tests).
//!
//! ```
//! use alfp_solver::{Program, Term};
//!
//! let mut p = Program::new();
//! // edge facts
//! p.fact("edge", vec![Term::cst("a"), Term::cst("b")]);
//! p.fact("edge", vec![Term::cst("b"), Term::cst("c")]);
//! // path(X, Y) :- edge(X, Y).
//! // path(X, Z) :- path(X, Y), edge(Y, Z).
//! p.rule("path", vec![Term::var("X"), Term::var("Y")])
//!     .pos("edge", vec![Term::var("X"), Term::var("Y")])
//!     .build();
//! p.rule("path", vec![Term::var("X"), Term::var("Z")])
//!     .pos("path", vec![Term::var("X"), Term::var("Y")])
//!     .pos("edge", vec![Term::var("Y"), Term::var("Z")])
//!     .build();
//! let model = p.solve()?;
//! assert!(model.contains("path", &["a", "c"]));
//! assert_eq!(model.relation("path").len(), 3);
//! # Ok::<(), alfp_solver::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A term of a clause: either a constant symbol or a variable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A constant symbol.
    Const(String),
    /// A clause variable (universally quantified over the clause).
    Var(String),
}

impl Term {
    /// Creates a constant term.
    pub fn cst(s: impl Into<String>) -> Term {
        Term::Const(s.into())
    }

    /// Creates a variable term.
    pub fn var(s: impl Into<String>) -> Term {
        Term::Var(s.into())
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::Var(v) => write!(f, "?{v}"),
        }
    }
}

/// A literal in a rule body: a possibly negated atom.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Literal {
    /// Predicate name.
    pub predicate: String,
    /// Argument terms.
    pub args: Vec<Term>,
    /// Whether the literal is negated.
    pub negated: bool,
}

/// A Horn-style rule `head :- body` (facts are rules with an empty body).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// Predicate of the head atom.
    pub head_predicate: String,
    /// Argument terms of the head atom.
    pub head_args: Vec<Term>,
    /// Body literals (conjunction).
    pub body: Vec<Literal>,
}

/// Errors reported by the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// A variable occurs in the head or in a negated literal without being
    /// bound by a positive body literal (the usual safety condition).
    UnsafeRule {
        /// The offending variable.
        variable: String,
        /// Predicate of the rule head.
        head: String,
    },
    /// The program is not stratifiable: a predicate depends negatively on
    /// itself through a cycle.
    NotStratifiable {
        /// A predicate on the offending negative cycle.
        predicate: String,
    },
    /// A predicate is used with inconsistent arities.
    ArityMismatch {
        /// The predicate.
        predicate: String,
        /// First arity seen.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::UnsafeRule { variable, head } => {
                write!(f, "unsafe rule for `{head}`: variable `{variable}` is not bound by a positive literal")
            }
            SolveError::NotStratifiable { predicate } => {
                write!(f, "program is not stratifiable: `{predicate}` depends negatively on itself")
            }
            SolveError::ArityMismatch { predicate, expected, found } => {
                write!(f, "predicate `{predicate}` used with arity {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// A tuple of constant symbols.
pub type Tuple = Vec<String>;

/// The least model of a program: one relation (set of tuples) per predicate.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Model {
    relations: BTreeMap<String, BTreeSet<Tuple>>,
}

impl Model {
    /// The tuples of a predicate (empty if the predicate never appears).
    pub fn relation(&self, predicate: &str) -> BTreeSet<Tuple> {
        self.relations.get(predicate).cloned().unwrap_or_default()
    }

    /// Whether the model contains the given ground atom.
    pub fn contains(&self, predicate: &str, args: &[&str]) -> bool {
        self.relations
            .get(predicate)
            .map(|r| r.contains(&args.iter().map(|s| s.to_string()).collect::<Tuple>()))
            .unwrap_or(false)
    }

    /// Names of all predicates with at least one tuple.
    pub fn predicates(&self) -> impl Iterator<Item = &String> {
        self.relations.keys()
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.relations.values().map(BTreeSet::len).sum()
    }
}

/// A Datalog/ALFP clause program.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    rules: Vec<Rule>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a ground fact.  Non-constant arguments are rejected at solve time
    /// by the safety check.
    pub fn fact(&mut self, predicate: impl Into<String>, args: Vec<Term>) -> &mut Self {
        self.rules.push(Rule {
            head_predicate: predicate.into(),
            head_args: args,
            body: Vec::new(),
        });
        self
    }

    /// Starts building a rule with the given head.
    pub fn rule(&mut self, predicate: impl Into<String>, args: Vec<Term>) -> RuleBuilder<'_> {
        RuleBuilder {
            program: self,
            rule: Rule { head_predicate: predicate.into(), head_args: args, body: Vec::new() },
        }
    }

    /// Adds an already-constructed rule.
    pub fn add_rule(&mut self, rule: Rule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// The rules of the program.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules (including facts).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Computes the least model of the program.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if a rule is unsafe, a predicate is used with
    /// inconsistent arities, or the program cannot be stratified.
    pub fn solve(&self) -> Result<Model, SolveError> {
        self.check_arities()?;
        self.check_safety()?;
        let strata = self.stratify()?;

        let mut model = Model::default();
        for stratum in strata {
            let rules: Vec<&Rule> =
                self.rules.iter().filter(|r| stratum.contains(&r.head_predicate)).collect();
            evaluate_stratum(&rules, &mut model);
        }
        Ok(model)
    }

    fn check_arities(&self) -> Result<(), SolveError> {
        let mut arities: BTreeMap<String, usize> = BTreeMap::new();
        for rule in &self.rules {
            let mut note = |pred: &str, n: usize| -> Result<(), SolveError> {
                match arities.get(pred) {
                    Some(&expected) if expected != n => Err(SolveError::ArityMismatch {
                        predicate: pred.to_string(),
                        expected,
                        found: n,
                    }),
                    _ => {
                        arities.insert(pred.to_string(), n);
                        Ok(())
                    }
                }
            };
            note(&rule.head_predicate, rule.head_args.len())?;
            for lit in &rule.body {
                note(&lit.predicate, lit.args.len())?;
            }
        }
        Ok(())
    }

    fn check_safety(&self) -> Result<(), SolveError> {
        for rule in &self.rules {
            let mut bound: BTreeSet<&str> = BTreeSet::new();
            for lit in rule.body.iter().filter(|l| !l.negated) {
                for arg in &lit.args {
                    if let Term::Var(v) = arg {
                        bound.insert(v);
                    }
                }
            }
            let mut need: Vec<&str> = Vec::new();
            for arg in &rule.head_args {
                if let Term::Var(v) = arg {
                    need.push(v);
                }
            }
            for lit in rule.body.iter().filter(|l| l.negated) {
                for arg in &lit.args {
                    if let Term::Var(v) = arg {
                        need.push(v);
                    }
                }
            }
            for v in need {
                if !bound.contains(v) {
                    return Err(SolveError::UnsafeRule {
                        variable: v.to_string(),
                        head: rule.head_predicate.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Computes a stratification: an ordered partition of the predicates such
    /// that negation only refers to earlier strata.
    fn stratify(&self) -> Result<Vec<BTreeSet<String>>, SolveError> {
        let mut preds: BTreeSet<String> = BTreeSet::new();
        for r in &self.rules {
            preds.insert(r.head_predicate.clone());
            for l in &r.body {
                preds.insert(l.predicate.clone());
            }
        }
        // stratum[p] computed by fixed-point: stratum(head) >= stratum(pos body),
        // stratum(head) >= stratum(neg body) + 1.
        let mut stratum: BTreeMap<String, usize> = preds.iter().map(|p| (p.clone(), 0)).collect();
        let max_rounds = preds.len() + 1;
        for round in 0..=max_rounds {
            let mut changed = false;
            for r in &self.rules {
                let head = stratum[&r.head_predicate];
                let mut need = head;
                for l in &r.body {
                    let s = stratum[&l.predicate];
                    need = need.max(if l.negated { s + 1 } else { s });
                }
                if need > head {
                    stratum.insert(r.head_predicate.clone(), need);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            if round == max_rounds {
                // A stratum exceeding the number of predicates implies a
                // negative cycle.
                let worst = stratum.iter().max_by_key(|(_, s)| **s).map(|(p, _)| p.clone());
                return Err(SolveError::NotStratifiable {
                    predicate: worst.unwrap_or_default(),
                });
            }
        }
        if stratum.values().any(|&s| s > preds.len()) {
            let worst = stratum.iter().max_by_key(|(_, s)| **s).map(|(p, _)| p.clone());
            return Err(SolveError::NotStratifiable { predicate: worst.unwrap_or_default() });
        }
        let max = stratum.values().copied().max().unwrap_or(0);
        let mut out: Vec<BTreeSet<String>> = vec![BTreeSet::new(); max + 1];
        for (p, s) in stratum {
            out[s].insert(p);
        }
        Ok(out.into_iter().filter(|s| !s.is_empty()).collect())
    }
}

/// Builder for a single rule.
#[derive(Debug)]
pub struct RuleBuilder<'a> {
    program: &'a mut Program,
    rule: Rule,
}

impl RuleBuilder<'_> {
    /// Adds a positive body literal.
    pub fn pos(mut self, predicate: impl Into<String>, args: Vec<Term>) -> Self {
        self.rule.body.push(Literal { predicate: predicate.into(), args, negated: false });
        self
    }

    /// Adds a negated body literal.
    pub fn neg(mut self, predicate: impl Into<String>, args: Vec<Term>) -> Self {
        self.rule.body.push(Literal { predicate: predicate.into(), args, negated: true });
        self
    }

    /// Finishes the rule and adds it to the program.
    pub fn build(self) {
        self.program.rules.push(self.rule);
    }
}

type Bindings = BTreeMap<String, String>;

fn evaluate_stratum(rules: &[&Rule], model: &mut Model) {
    // Naive-to-seminaive bottom-up evaluation restricted to the stratum's
    // rules; relations of earlier strata are already complete in `model`.
    loop {
        let mut new_tuples: Vec<(String, Tuple)> = Vec::new();
        for rule in rules {
            let mut bindings: Vec<Bindings> = vec![BTreeMap::new()];
            for lit in &rule.body {
                bindings = extend_bindings(&bindings, lit, model);
                if bindings.is_empty() {
                    break;
                }
            }
            for b in &bindings {
                let tuple: Option<Tuple> = rule
                    .head_args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => Some(c.clone()),
                        Term::Var(v) => b.get(v).cloned(),
                    })
                    .collect();
                if let Some(tuple) = tuple {
                    let rel = model.relations.entry(rule.head_predicate.clone()).or_default();
                    if !rel.contains(&tuple) {
                        new_tuples.push((rule.head_predicate.clone(), tuple));
                    }
                }
            }
        }
        if new_tuples.is_empty() {
            return;
        }
        for (pred, tuple) in new_tuples {
            model.relations.entry(pred).or_default().insert(tuple);
        }
    }
}

fn extend_bindings(current: &[Bindings], lit: &Literal, model: &Model) -> Vec<Bindings> {
    let empty = BTreeSet::new();
    let relation = model.relations.get(&lit.predicate).unwrap_or(&empty);
    let mut out = Vec::new();
    for binding in current {
        if lit.negated {
            // All variables are bound (safety); check membership.
            let tuple: Option<Tuple> = lit
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(c) => Some(c.clone()),
                    Term::Var(v) => binding.get(v).cloned(),
                })
                .collect();
            match tuple {
                Some(t) if !relation.contains(&t) => out.push(binding.clone()),
                _ => {}
            }
        } else {
            for tuple in relation {
                if let Some(extended) = unify(binding, &lit.args, tuple) {
                    out.push(extended);
                }
            }
        }
    }
    out
}

fn unify(binding: &Bindings, args: &[Term], tuple: &[String]) -> Option<Bindings> {
    if args.len() != tuple.len() {
        return None;
    }
    let mut out = binding.clone();
    for (arg, value) in args.iter().zip(tuple) {
        match arg {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => match out.get(v) {
                Some(existing) if existing != value => return None,
                Some(_) => {}
                None => {
                    out.insert(v.clone(), value.clone());
                }
            },
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_facts(p: &mut Program, edges: &[(&str, &str)]) {
        for (a, b) in edges {
            p.fact("edge", vec![Term::cst(*a), Term::cst(*b)]);
        }
    }

    fn path_rules(p: &mut Program) {
        p.rule("path", vec![Term::var("X"), Term::var("Y")])
            .pos("edge", vec![Term::var("X"), Term::var("Y")])
            .build();
        p.rule("path", vec![Term::var("X"), Term::var("Z")])
            .pos("path", vec![Term::var("X"), Term::var("Y")])
            .pos("edge", vec![Term::var("Y"), Term::var("Z")])
            .build();
    }

    #[test]
    fn transitive_closure() {
        let mut p = Program::new();
        edge_facts(&mut p, &[("a", "b"), ("b", "c"), ("c", "d")]);
        path_rules(&mut p);
        let m = p.solve().unwrap();
        assert!(m.contains("path", &["a", "d"]));
        assert_eq!(m.relation("path").len(), 6);
        assert_eq!(m.relation("edge").len(), 3);
    }

    #[test]
    fn cycles_terminate() {
        let mut p = Program::new();
        edge_facts(&mut p, &[("a", "b"), ("b", "a")]);
        path_rules(&mut p);
        let m = p.solve().unwrap();
        assert!(m.contains("path", &["a", "a"]));
        assert_eq!(m.relation("path").len(), 4);
    }

    #[test]
    fn constants_in_rule_heads_and_bodies() {
        let mut p = Program::new();
        edge_facts(&mut p, &[("a", "b"), ("b", "c")]);
        p.rule("from_a", vec![Term::var("Y")])
            .pos("edge", vec![Term::cst("a"), Term::var("Y")])
            .build();
        let m = p.solve().unwrap();
        assert_eq!(m.relation("from_a"), BTreeSet::from([vec!["b".to_string()]]));
    }

    #[test]
    fn stratified_negation() {
        // unreachable(X) :- node(X), not path(a, X).
        let mut p = Program::new();
        edge_facts(&mut p, &[("a", "b"), ("c", "d")]);
        path_rules(&mut p);
        for n in ["a", "b", "c", "d"] {
            p.fact("node", vec![Term::cst(n)]);
        }
        p.rule("unreachable", vec![Term::var("X")])
            .pos("node", vec![Term::var("X")])
            .neg("path", vec![Term::cst("a"), Term::var("X")])
            .build();
        let m = p.solve().unwrap();
        assert!(m.contains("unreachable", &["c"]));
        assert!(m.contains("unreachable", &["d"]));
        assert!(m.contains("unreachable", &["a"])); // no self loop on a
        assert!(!m.contains("unreachable", &["b"]));
    }

    #[test]
    fn unsafe_rule_rejected() {
        let mut p = Program::new();
        p.rule("bad", vec![Term::var("X")]).build();
        assert!(matches!(p.solve(), Err(SolveError::UnsafeRule { .. })));

        let mut p2 = Program::new();
        p2.fact("node", vec![Term::cst("a")]);
        p2.rule("bad", vec![Term::cst("a")])
            .neg("node", vec![Term::var("Y")])
            .build();
        assert!(matches!(p2.solve(), Err(SolveError::UnsafeRule { .. })));
    }

    #[test]
    fn non_stratifiable_program_rejected() {
        // p(X) :- node(X), not q(X).  q(X) :- node(X), not p(X).
        let mut p = Program::new();
        p.fact("node", vec![Term::cst("a")]);
        p.rule("p", vec![Term::var("X")])
            .pos("node", vec![Term::var("X")])
            .neg("q", vec![Term::var("X")])
            .build();
        p.rule("q", vec![Term::var("X")])
            .pos("node", vec![Term::var("X")])
            .neg("p", vec![Term::var("X")])
            .build();
        assert!(matches!(p.solve(), Err(SolveError::NotStratifiable { .. })));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut p = Program::new();
        p.fact("r", vec![Term::cst("a")]);
        p.fact("r", vec![Term::cst("a"), Term::cst("b")]);
        assert!(matches!(p.solve(), Err(SolveError::ArityMismatch { .. })));
    }

    #[test]
    fn empty_program_has_empty_model() {
        let p = Program::new();
        assert!(p.is_empty());
        let m = p.solve().unwrap();
        assert_eq!(m.tuple_count(), 0);
    }

    #[test]
    fn model_queries() {
        let mut p = Program::new();
        edge_facts(&mut p, &[("a", "b")]);
        let m = p.solve().unwrap();
        assert_eq!(m.predicates().collect::<Vec<_>>(), vec!["edge"]);
        assert!(!m.contains("missing", &["a"]));
        assert_eq!(m.tuple_count(), 1);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Term::cst("a").to_string(), "a");
        assert_eq!(Term::var("X").to_string(), "?X");
        let e = SolveError::ArityMismatch { predicate: "p".into(), expected: 2, found: 3 };
        assert!(e.to_string().contains("arity"));
    }
}
