//! # `alfp-solver` — a stratified Datalog / ALFP constraint solver
//!
//! The paper implements both its own analysis and Kemmerer's method in the
//! *Succinct Solver*, a solver for Alternation-free Least Fixed Point logic
//! (ALFP).  The Succinct Solver itself is not distributed, so this crate
//! provides the substrate from scratch: a bottom-up Datalog engine with
//! stratified negation, which computes the same least models for the clause
//! systems the analyses generate (see `vhdl1-infoflow`'s `alfp_encoding`
//! module for the encodings and the cross-check tests).
//!
//! ## Engine
//!
//! The solver is built for throughput on analysis-scale clause systems:
//!
//! * **Symbol interning** — every constant and predicate name is mapped to a
//!   dense [`Symbol`] (`u32`) by an [`Interner`]; tuples are `Box<[Symbol]>`
//!   and all joins compare machine words, never strings.  Front ends can
//!   bypass string handling entirely via [`Program::intern`] and
//!   [`Program::fact_interned`].
//! * **Compiled rules** — at solve time, rule variables are numbered and
//!   each body literal gets a precomputed bound-position mask, so bindings
//!   live in a flat `Vec<Option<Symbol>>` slot array instead of a name map.
//! * **Hash indexes** — every (predicate, bound-position-set) pair a rule
//!   joins on gets a hash index from bound-value keys to tuple ids, so
//!   joins probe instead of scanning whole relations.
//! * **Semi-naive evaluation** — per stratum, each relation keeps a delta
//!   (the contiguous id range of tuples added in the previous round) and
//!   every recursive rule is re-evaluated once per body literal with that
//!   literal restricted to the delta.  See [`Program::solve`] for the
//!   invariants.
//!
//! ```
//! use alfp_solver::{Program, Term};
//!
//! let mut p = Program::new();
//! // edge facts
//! p.fact("edge", vec![Term::cst("a"), Term::cst("b")]);
//! p.fact("edge", vec![Term::cst("b"), Term::cst("c")]);
//! // path(X, Y) :- edge(X, Y).
//! // path(X, Z) :- path(X, Y), edge(Y, Z).
//! p.rule("path", vec![Term::var("X"), Term::var("Y")])
//!     .pos("edge", vec![Term::var("X"), Term::var("Y")])
//!     .build();
//! p.rule("path", vec![Term::var("X"), Term::var("Z")])
//!     .pos("path", vec![Term::var("X"), Term::var("Y")])
//!     .pos("edge", vec![Term::var("Y"), Term::var("Z")])
//!     .build();
//! let model = p.solve()?;
//! assert!(model.contains("path", &["a", "c"]));
//! assert_eq!(model.relation("path").len(), 3);
//! # Ok::<(), alfp_solver::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

#[cfg(any(test, feature = "naive"))]
mod naive;

/// Fast, non-cryptographic hasher (FxHash) for the solver's hot maps.
///
/// The keys hashed in the inner loops are short symbol tuples; the default
/// SipHash is measurably slower there and DoS resistance is irrelevant for
/// an in-process constraint solver.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash.rotate_left(5) ^ u64::from(b)).wrapping_mul(FX_SEED);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.hash = (self.hash.rotate_left(5) ^ u64::from(n)).wrapping_mul(FX_SEED);
    }

    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// An interned constant or predicate name: a dense index into an
/// [`Interner`]'s string table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense index of the symbol (usable for side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner mapping names to dense [`Symbol`]s and back.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interner {
    map: FxHashMap<Arc<str>, Symbol>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol (stable across repeated calls).
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        // One shared allocation serves both the table and the map key.
        let shared: Arc<str> = s.into();
        self.strings.push(shared.clone());
        self.map.insert(shared, sym);
        sym
    }

    /// The symbol of `s`, if it has been interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// The string of an interned symbol.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// A term of a clause: either a constant symbol or a variable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A constant symbol.
    Const(String),
    /// A clause variable (universally quantified over the clause).
    Var(String),
}

impl Term {
    /// Creates a constant term.
    pub fn cst(s: impl Into<String>) -> Term {
        Term::Const(s.into())
    }

    /// Creates a variable term.
    pub fn var(s: impl Into<String>) -> Term {
        Term::Var(s.into())
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::Var(v) => write!(f, "?{v}"),
        }
    }
}

/// A literal in a rule body: a possibly negated atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    /// Predicate name.
    pub predicate: String,
    /// Argument terms.
    pub args: Vec<Term>,
    /// Whether the literal is negated.
    pub negated: bool,
}

/// A Horn-style rule `head :- body` (facts are rules with an empty body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Predicate of the head atom.
    pub head_predicate: String,
    /// Argument terms of the head atom.
    pub head_args: Vec<Term>,
    /// Body literals (conjunction).
    pub body: Vec<Literal>,
}

/// Errors reported by the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// A variable occurs in the head or in a negated literal without being
    /// bound by a positive body literal (the usual safety condition).
    UnsafeRule {
        /// The offending variable.
        variable: String,
        /// Predicate of the rule head.
        head: String,
    },
    /// The program is not stratifiable: a predicate depends negatively on
    /// itself through a cycle.
    NotStratifiable {
        /// A predicate on the offending negative cycle.
        predicate: String,
    },
    /// A predicate is used with inconsistent arities.
    ArityMismatch {
        /// The predicate.
        predicate: String,
        /// First arity seen.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// A bounded solve ([`Program::solve_bounded`]) hit one of its resource
    /// limits before reaching the least model.
    ResourceExhausted {
        /// The exhausted resource (`"facts"` or `"rounds"`).
        resource: &'static str,
        /// The configured limit.
        limit: u64,
        /// Consumption when the solver gave up (`> limit`).
        consumed: u64,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::UnsafeRule { variable, head } => {
                write!(f, "unsafe rule for `{head}`: variable `{variable}` is not bound by a positive literal")
            }
            SolveError::NotStratifiable { predicate } => {
                write!(
                    f,
                    "program is not stratifiable: `{predicate}` depends negatively on itself"
                )
            }
            SolveError::ArityMismatch {
                predicate,
                expected,
                found,
            } => {
                write!(
                    f,
                    "predicate `{predicate}` used with arity {found}, expected {expected}"
                )
            }
            SolveError::ResourceExhausted {
                resource,
                limit,
                consumed,
            } => {
                write!(
                    f,
                    "solver {resource} budget exhausted: {consumed}, limit {limit}"
                )
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Resource limits for [`Program::solve_bounded`].  `None` fields are
/// unlimited; the default is fully unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveLimits {
    /// Maximum total tuple count across all relations, checked once per
    /// semi-naive round.
    pub max_facts: Option<u64>,
    /// Maximum number of semi-naive rounds, summed over all strata.
    pub max_rounds: Option<u64>,
}

/// A tuple of constant symbols, in resolved (string) form.
pub type Tuple = Vec<String>;

/// An interned relation: the tuples of one predicate, in insertion order,
/// with a hash set for membership tests and optional join indexes.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Box<[Symbol]>>,
    ids: FxHashMap<Box<[Symbol]>, u32>,
    /// Join indexes keyed by bound-position bitmask: for each mask, a map
    /// from the bound-position values (in position order) to the ids of the
    /// tuples carrying those values.
    indexes: FxHashMap<u64, FxHashMap<Box<[Symbol]>, Vec<u32>>>,
}

impl Relation {
    fn with_arity(arity: usize) -> Relation {
        Relation {
            arity,
            ..Relation::default()
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Iterates over the tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[Symbol]> {
        self.tuples.iter().map(|t| &t[..])
    }

    /// Whether the relation contains the given interned tuple.
    pub fn contains_syms(&self, tuple: &[Symbol]) -> bool {
        self.ids.contains_key(tuple)
    }

    fn key_of(tuple: &[Symbol], mask: u64) -> Box<[Symbol]> {
        tuple
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, s)| *s)
            .collect()
    }

    /// Builds (or keeps) the join index for `mask`, covering all current
    /// tuples; [`Relation::insert`] maintains it afterwards.
    fn ensure_index(&mut self, mask: u64) {
        if self.indexes.contains_key(&mask) {
            return;
        }
        let mut index: FxHashMap<Box<[Symbol]>, Vec<u32>> = FxHashMap::default();
        for (id, tuple) in self.tuples.iter().enumerate() {
            index
                .entry(Self::key_of(tuple, mask))
                .or_default()
                .push(id as u32);
        }
        self.indexes.insert(mask, index);
    }

    fn probe(&self, mask: u64, key: &[Symbol]) -> &[u32] {
        self.indexes
            .get(&mask)
            .expect("join index registered at compile time")
            .get(key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Inserts a tuple; returns `true` if it was new.  All registered
    /// indexes are updated incrementally.
    fn insert(&mut self, tuple: Box<[Symbol]>) -> bool {
        if self.ids.contains_key(&tuple) {
            return false;
        }
        let id = self.tuples.len() as u32;
        for (mask, index) in &mut self.indexes {
            index
                .entry(Self::key_of(&tuple, *mask))
                .or_default()
                .push(id);
        }
        self.ids.insert(tuple.clone(), id);
        self.tuples.push(tuple);
        true
    }
}

/// The least model of a program: one interned relation per predicate, plus
/// the interner that resolves its symbols.
#[derive(Debug, Clone, Default)]
pub struct Model {
    interner: Interner,
    relations: BTreeMap<String, Relation>,
}

impl Model {
    /// The tuples of a predicate, resolved to strings (empty if the
    /// predicate never appears).  Prefer [`Model::relation_ref`] on hot
    /// paths: this accessor allocates a fresh set of fresh strings.
    pub fn relation(&self, predicate: &str) -> BTreeSet<Tuple> {
        self.relation_ref(predicate)
            .map(|rel| {
                rel.iter()
                    .map(|t| t.iter().map(|&s| self.resolve(s).to_string()).collect())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Borrowed view of a predicate's interned relation, or `None` if the
    /// predicate has no tuples.  Resolve symbols with [`Model::resolve`].
    pub fn relation_ref(&self, predicate: &str) -> Option<&Relation> {
        self.relations.get(predicate)
    }

    /// The string behind an interned symbol of this model.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// The symbol of a constant, if it occurs anywhere in the model.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.interner.get(s)
    }

    /// Whether the model contains the given ground atom.
    pub fn contains(&self, predicate: &str, args: &[&str]) -> bool {
        let Some(rel) = self.relations.get(predicate) else {
            return false;
        };
        let Some(tuple) = args
            .iter()
            .map(|s| self.interner.get(s))
            .collect::<Option<Vec<Symbol>>>()
        else {
            return false;
        };
        rel.contains_syms(&tuple)
    }

    /// Names of all predicates with at least one tuple.
    pub fn predicates(&self) -> impl Iterator<Item = &String> {
        self.relations.keys()
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Used by the naive reference evaluator to produce the same model type.
    #[cfg(any(test, feature = "naive"))]
    fn from_string_relations(relations: BTreeMap<String, BTreeSet<Tuple>>) -> Model {
        let mut interner = Interner::new();
        let mut out: BTreeMap<String, Relation> = BTreeMap::new();
        for (pred, tuples) in relations {
            if tuples.is_empty() {
                continue;
            }
            let arity = tuples.iter().next().map_or(0, Vec::len);
            let rel = out
                .entry(pred)
                .or_insert_with(|| Relation::with_arity(arity));
            for tuple in tuples {
                rel.insert(tuple.iter().map(|s| interner.intern(s)).collect());
            }
        }
        Model {
            interner,
            relations: out,
        }
    }
}

impl PartialEq for Model {
    /// Models are equal when they contain the same ground atoms, regardless
    /// of symbol numbering or tuple insertion order.
    fn eq(&self, other: &Model) -> bool {
        if self.relations.len() != other.relations.len() {
            return false;
        }
        self.relations
            .iter()
            .all(|(pred, rel)| match other.relations.get(pred) {
                Some(other_rel) => {
                    rel.len() == other_rel.len()
                        && rel.iter().all(|t| {
                            let resolved: Option<Vec<Symbol>> = t
                                .iter()
                                .map(|&s| other.interner.get(self.resolve(s)))
                                .collect();
                            resolved.is_some_and(|t| other_rel.contains_syms(&t))
                        })
                }
                None => false,
            })
    }
}

impl Eq for Model {}

/// A Datalog/ALFP clause program.
///
/// # Examples
///
/// Facts are asserted with [`Program::fact`], rules built with
/// [`Program::rule`], and [`Program::solve`] computes the least model:
///
/// ```
/// use alfp_solver::{Program, Term};
///
/// let mut p = Program::new();
/// p.fact("person", vec![Term::cst("ada")]);
/// p.fact("person", vec![Term::cst("byron")]);
/// p.fact("parent", vec![Term::cst("ada"), Term::cst("byron")]);
/// // has_parent(X) :- parent(Y, X).
/// p.rule("has_parent", vec![Term::var("X")])
///     .pos("parent", vec![Term::var("Y"), Term::var("X")])
///     .build();
/// // Stratified negation: root(X) :- person(X), !has_parent(X).
/// p.rule("root", vec![Term::var("X")])
///     .pos("person", vec![Term::var("X")])
///     .neg("has_parent", vec![Term::var("X")])
///     .build();
/// let model = p.solve()?;
/// assert!(model.contains("root", &["ada"]));
/// assert!(!model.contains("root", &["byron"]));
/// # Ok::<(), alfp_solver::SolveError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    interner: Interner,
    rules: Vec<Rule>,
    /// Ground facts emitted through the interned fast path, bypassing
    /// string-based [`Term`] construction entirely.
    interned_facts: Vec<(Symbol, Box<[Symbol]>)>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a constant or predicate name for use with
    /// [`Program::fact_interned`].
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Adds a ground fact through the interned fast path.  `pred` and all
    /// argument symbols must come from [`Program::intern`] on this program.
    pub fn fact_interned(&mut self, pred: Symbol, args: Vec<Symbol>) -> &mut Self {
        self.interned_facts.push((pred, args.into()));
        self
    }

    /// Adds a ground fact.  Non-constant arguments are rejected at solve time
    /// by the safety check.
    pub fn fact(&mut self, predicate: impl Into<String>, args: Vec<Term>) -> &mut Self {
        self.rules.push(Rule {
            head_predicate: predicate.into(),
            head_args: args,
            body: Vec::new(),
        });
        self
    }

    /// Starts building a rule with the given head.
    pub fn rule(&mut self, predicate: impl Into<String>, args: Vec<Term>) -> RuleBuilder<'_> {
        RuleBuilder {
            program: self,
            rule: Rule {
                head_predicate: predicate.into(),
                head_args: args,
                body: Vec::new(),
            },
        }
    }

    /// Adds an already-constructed rule.
    pub fn add_rule(&mut self, rule: Rule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// The string-level rules of the program (facts added through
    /// [`Program::fact_interned`] are not materialised as rules).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of clauses (rules plus facts, interned or not).
    pub fn len(&self) -> usize {
        self.rules.len() + self.interned_facts.len()
    }

    /// Whether the program has no clauses.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.interned_facts.is_empty()
    }

    /// Computes the least model of the program by stratified semi-naive
    /// evaluation.
    ///
    /// Per stratum the engine maintains, for every predicate of the stratum,
    /// the contiguous id range of tuples added in the previous round (the
    /// *delta*).  Round 0 evaluates every rule of the stratum against the
    /// full relations; each later round re-evaluates each recursive rule
    /// once per positive body literal of the stratum, with that literal
    /// restricted to the delta and the remaining literals joined against
    /// the full (current) relations via the precompiled hash indexes.
    ///
    /// Invariants relied on:
    ///
    /// * relations are append-only, so a round's delta is exactly an id
    ///   range and tuples derived mid-round land in the *next* round's
    ///   delta;
    /// * every tuple derivable from at least one new tuple is re-derived,
    ///   because each body-literal position takes its turn as the delta
    ///   literal (joining the other positions against relations at least as
    ///   large as in the previous round);
    /// * negated literals only mention predicates of strictly earlier
    ///   strata (enforced by stratification), which are complete, so
    ///   negation-as-failure is sound and the per-stratum iteration is
    ///   monotone and terminates.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if a rule is unsafe, a predicate is used with
    /// inconsistent arities, or the program cannot be stratified.
    pub fn solve(&self) -> Result<Model, SolveError> {
        self.solve_bounded(&SolveLimits::default())
    }

    /// [`Program::solve`] under explicit resource limits: the evaluation
    /// stops with [`SolveError::ResourceExhausted`] once the total tuple
    /// count or the summed semi-naive round count exceeds its budget.  Both
    /// counters are deterministic functions of the program, so the same
    /// program and limits always exhaust (or converge) identically.
    ///
    /// # Errors
    ///
    /// The conditions of [`Program::solve`], plus
    /// [`SolveError::ResourceExhausted`].
    pub fn solve_bounded(&self, limits: &SolveLimits) -> Result<Model, SolveError> {
        let arities = self.check_arities()?;
        self.check_safety()?;
        let strata = self.stratify()?;
        let mut engine = Engine::compile(self, &arities);
        let mut rounds: u64 = 0;
        for stratum in &strata {
            engine.run_stratum(stratum, limits, &mut rounds)?;
        }
        Ok(engine.into_model())
    }

    /// Computes the least model with the naive reference evaluator (full
    /// re-derivation each round over string bindings).  Kept as the oracle
    /// for differential testing of the semi-naive engine and for
    /// before/after benchmarking; enable the `naive` feature to use it
    /// outside this crate's tests.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Program::solve`].
    #[cfg(any(test, feature = "naive"))]
    pub fn solve_naive(&self) -> Result<Model, SolveError> {
        self.check_arities()?;
        self.check_safety()?;
        let strata = self.stratify()?;
        Ok(naive::solve(self, &strata))
    }

    fn check_arities(&self) -> Result<BTreeMap<String, usize>, SolveError> {
        let mut arities: BTreeMap<String, usize> = BTreeMap::new();
        let mut note = |pred: &str, n: usize| -> Result<(), SolveError> {
            match arities.get(pred) {
                Some(&expected) if expected != n => Err(SolveError::ArityMismatch {
                    predicate: pred.to_string(),
                    expected,
                    found: n,
                }),
                _ => {
                    arities.insert(pred.to_string(), n);
                    Ok(())
                }
            }
        };
        for rule in &self.rules {
            note(&rule.head_predicate, rule.head_args.len())?;
            for lit in &rule.body {
                note(&lit.predicate, lit.args.len())?;
            }
        }
        for (pred, args) in &self.interned_facts {
            note(self.interner.resolve(*pred), args.len())?;
        }
        Ok(arities)
    }

    fn check_safety(&self) -> Result<(), SolveError> {
        for rule in &self.rules {
            let mut bound: BTreeSet<&str> = BTreeSet::new();
            for lit in rule.body.iter().filter(|l| !l.negated) {
                for arg in &lit.args {
                    if let Term::Var(v) = arg {
                        bound.insert(v);
                    }
                }
            }
            let mut need: Vec<&str> = Vec::new();
            for arg in &rule.head_args {
                if let Term::Var(v) = arg {
                    need.push(v);
                }
            }
            for lit in rule.body.iter().filter(|l| l.negated) {
                for arg in &lit.args {
                    if let Term::Var(v) = arg {
                        need.push(v);
                    }
                }
            }
            for v in need {
                if !bound.contains(v) {
                    return Err(SolveError::UnsafeRule {
                        variable: v.to_string(),
                        head: rule.head_predicate.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Computes a stratification: an ordered partition of the predicates such
    /// that negation only refers to earlier strata.
    fn stratify(&self) -> Result<Vec<BTreeSet<String>>, SolveError> {
        let mut preds: BTreeSet<String> = BTreeSet::new();
        for r in &self.rules {
            preds.insert(r.head_predicate.clone());
            for l in &r.body {
                preds.insert(l.predicate.clone());
            }
        }
        for (pred, _) in &self.interned_facts {
            preds.insert(self.interner.resolve(*pred).to_string());
        }
        // stratum[p] computed by fixed-point: stratum(head) >= stratum(pos body),
        // stratum(head) >= stratum(neg body) + 1.
        let mut stratum: BTreeMap<String, usize> = preds.iter().map(|p| (p.clone(), 0)).collect();
        let max_rounds = preds.len() + 1;
        for round in 0..=max_rounds {
            let mut changed = false;
            for r in &self.rules {
                let head = stratum[&r.head_predicate];
                let mut need = head;
                for l in &r.body {
                    let s = stratum[&l.predicate];
                    need = need.max(if l.negated { s + 1 } else { s });
                }
                if need > head {
                    stratum.insert(r.head_predicate.clone(), need);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            if round == max_rounds {
                // A stratum exceeding the number of predicates implies a
                // negative cycle.
                let worst = stratum
                    .iter()
                    .max_by_key(|(_, s)| **s)
                    .map(|(p, _)| p.clone());
                return Err(SolveError::NotStratifiable {
                    predicate: worst.unwrap_or_default(),
                });
            }
        }
        if stratum.values().any(|&s| s > preds.len()) {
            let worst = stratum
                .iter()
                .max_by_key(|(_, s)| **s)
                .map(|(p, _)| p.clone());
            return Err(SolveError::NotStratifiable {
                predicate: worst.unwrap_or_default(),
            });
        }
        let max = stratum.values().copied().max().unwrap_or(0);
        let mut out: Vec<BTreeSet<String>> = vec![BTreeSet::new(); max + 1];
        for (p, s) in stratum {
            out[s].insert(p);
        }
        Ok(out.into_iter().filter(|s| !s.is_empty()).collect())
    }
}

/// Builder for a single rule.
#[derive(Debug)]
pub struct RuleBuilder<'a> {
    program: &'a mut Program,
    rule: Rule,
}

impl RuleBuilder<'_> {
    /// Adds a positive body literal.
    pub fn pos(mut self, predicate: impl Into<String>, args: Vec<Term>) -> Self {
        self.rule.body.push(Literal {
            predicate: predicate.into(),
            args,
            negated: false,
        });
        self
    }

    /// Adds a negated body literal.
    pub fn neg(mut self, predicate: impl Into<String>, args: Vec<Term>) -> Self {
        self.rule.body.push(Literal {
            predicate: predicate.into(),
            args,
            negated: true,
        });
        self
    }

    /// Finishes the rule and adds it to the program.
    pub fn build(self) {
        self.program.rules.push(self.rule);
    }
}

// ---------------------------------------------------------------------------
// Compiled representation and the semi-naive engine.
// ---------------------------------------------------------------------------

/// A head or body argument after variable numbering.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Const(Symbol),
    Var(u32),
}

#[derive(Debug, Clone)]
struct CompiledLit {
    pred: Symbol,
    negated: bool,
    args: Vec<Slot>,
    /// Bitmask of argument positions known to be bound (a constant, or a
    /// variable bound by an earlier positive literal) when this literal is
    /// evaluated in body order.
    bound_mask: u64,
}

#[derive(Debug, Clone)]
struct CompiledRule {
    head_pred: Symbol,
    head: Vec<Slot>,
    body: Vec<CompiledLit>,
    num_vars: usize,
    /// Per positive-body-literal join plans for semi-naive rounds: for each
    /// original position `pos`, the body reordered to start with that
    /// literal (followed by the others in original order) with bound masks
    /// recomputed for the new order.  Leading with the delta literal means
    /// the (small) delta drives the join and every other literal can probe
    /// an index keyed on the delta's bindings, instead of re-scanning the
    /// delta once per binding of the literals in front of it.
    variants: Vec<(usize, Vec<CompiledLit>)>,
}

/// The bitmask with every argument position of an `arity`-wide literal set
/// (saturating at 64 positions — wider literals never use mask shortcuts).
fn full_mask(arity: usize) -> u64 {
    match arity {
        0 => 0,
        1..=63 => (1 << arity) - 1,
        _ => u64::MAX,
    }
}

/// Per-round delta ranges: predicate → `[start, end)` tuple-id range added
/// in the previous round.
type DeltaRanges = FxHashMap<Symbol, (usize, usize)>;

/// Tuples derived by a rule evaluation but not yet inserted into the store,
/// deduplicated by a hash set so emitting `k` tuples costs `O(k)` instead of
/// a quadratic scan.
#[derive(Debug, Default)]
struct Pending {
    tuples: Vec<(Symbol, Box<[Symbol]>)>,
    seen: FxHashSet<(Symbol, Box<[Symbol]>)>,
}

impl Pending {
    /// Records a derived head tuple unless already pending.
    fn push(&mut self, pred: Symbol, tuple: Box<[Symbol]>) {
        if self.seen.insert((pred, tuple.clone())) {
            self.tuples.push((pred, tuple));
        }
    }

    fn drain(&mut self) -> impl Iterator<Item = (Symbol, Box<[Symbol]>)> + '_ {
        self.seen.clear();
        self.tuples.drain(..)
    }
}

struct Engine {
    interner: Interner,
    rels: FxHashMap<Symbol, Relation>,
    rules: Vec<CompiledRule>,
    facts: Vec<(Symbol, Box<[Symbol]>)>,
}

impl Engine {
    fn compile(program: &Program, arities: &BTreeMap<String, usize>) -> Engine {
        let mut interner = program.interner.clone();
        let mut rels: FxHashMap<Symbol, Relation> = FxHashMap::default();
        for (pred, &arity) in arities {
            let sym = interner.intern(pred);
            rels.insert(sym, Relation::with_arity(arity));
        }

        let mut facts: Vec<(Symbol, Box<[Symbol]>)> = program.interned_facts.clone();
        let mut rules: Vec<CompiledRule> = Vec::new();
        for rule in &program.rules {
            if rule.body.is_empty() {
                // Ground fact (safety guarantees no head variables).
                let pred = interner.intern(&rule.head_predicate);
                let tuple: Box<[Symbol]> = rule
                    .head_args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => interner.intern(c),
                        Term::Var(_) => unreachable!("unsafe fact passed the safety check"),
                    })
                    .collect();
                facts.push((pred, tuple));
                continue;
            }

            // Variable numbering in order of first occurrence across the
            // body then the head (the head only uses bound variables).
            let mut var_ids: Vec<(String, u32)> = Vec::new();
            let id_of = |name: &str, var_ids: &mut Vec<(String, u32)>| -> u32 {
                if let Some((_, id)) = var_ids.iter().find(|(n, _)| n == name) {
                    return *id;
                }
                let id = var_ids.len() as u32;
                var_ids.push((name.to_string(), id));
                id
            };

            // Slot every literal first (constants interned, variables
            // numbered), independent of evaluation order.
            let slotted: Vec<(Symbol, bool, Vec<Slot>)> = rule
                .body
                .iter()
                .map(|lit| {
                    let pred = interner.intern(&lit.predicate);
                    let args: Vec<Slot> = lit
                        .args
                        .iter()
                        .map(|term| match term {
                            Term::Const(c) => Slot::Const(interner.intern(c)),
                            Term::Var(v) => Slot::Var(id_of(v, &mut var_ids)),
                        })
                        .collect();
                    (pred, lit.negated, args)
                })
                .collect();

            // Computes the bound masks for evaluating the literals in the
            // given order.
            let mask_pass = |order: &[usize]| -> Vec<CompiledLit> {
                let mut bound_vars: FxHashSet<u32> = FxHashSet::default();
                order
                    .iter()
                    .map(|&i| {
                        let (pred, negated, ref args) = slotted[i];
                        // Masks are u64 bitsets; literals wider than 64
                        // positions keep an empty mask and fall back to the
                        // scan-and-match path, which checks every position.
                        let mut bound_mask = 0u64;
                        for (pos, slot) in args.iter().enumerate().take(64) {
                            match slot {
                                Slot::Const(_) => bound_mask |= 1 << pos,
                                Slot::Var(id) => {
                                    if bound_vars.contains(id) {
                                        bound_mask |= 1 << pos;
                                    }
                                }
                            }
                        }
                        if args.len() > 64 {
                            bound_mask = 0;
                        }
                        if !negated {
                            for slot in args {
                                if let Slot::Var(id) = slot {
                                    bound_vars.insert(*id);
                                }
                            }
                        }
                        CompiledLit {
                            pred,
                            negated,
                            args: args.clone(),
                            bound_mask,
                        }
                    })
                    .collect()
            };

            let identity: Vec<usize> = (0..slotted.len()).collect();
            let body = mask_pass(&identity);
            // A reordered plan per positive literal, for when that literal
            // drives a semi-naive round as the delta.  Rotating a positive
            // literal to the front never breaks safety: negated literals
            // keep every positive literal that precedes them.
            let variants: Vec<(usize, Vec<CompiledLit>)> = (0..slotted.len())
                .filter(|&pos| !slotted[pos].1)
                .map(|pos| {
                    let mut order = vec![pos];
                    order.extend((0..slotted.len()).filter(|&i| i != pos));
                    (pos, mask_pass(&order))
                })
                .collect();

            let head_pred = interner.intern(&rule.head_predicate);
            let head: Vec<Slot> = rule
                .head_args
                .iter()
                .map(|t| match t {
                    Term::Const(c) => Slot::Const(interner.intern(c)),
                    Term::Var(v) => Slot::Var(id_of(v, &mut var_ids)),
                })
                .collect();

            rules.push(CompiledRule {
                head_pred,
                head,
                body,
                num_vars: var_ids.len(),
                variants,
            });
        }

        // Register every join index any plan will probe, so inserts keep
        // them current from the start.
        for rule in &rules {
            let plans = std::iter::once(&rule.body).chain(rule.variants.iter().map(|(_, b)| b));
            for lit in plans.flatten().filter(|l| !l.negated) {
                if lit.bound_mask != 0 && lit.bound_mask != full_mask(lit.args.len()) {
                    if let Some(rel) = rels.get_mut(&lit.pred) {
                        rel.ensure_index(lit.bound_mask);
                    }
                }
            }
        }

        Engine {
            interner,
            rels,
            rules,
            facts,
        }
    }

    fn run_stratum(
        &mut self,
        stratum: &BTreeSet<String>,
        limits: &SolveLimits,
        rounds: &mut u64,
    ) -> Result<(), SolveError> {
        let preds: FxHashSet<Symbol> = stratum
            .iter()
            .filter_map(|p| self.interner.get(p))
            .collect();

        // Facts of this stratum's predicates.
        for (pred, tuple) in &self.facts {
            if preds.contains(pred) {
                if let Some(rel) = self.rels.get_mut(pred) {
                    rel.insert(tuple.clone());
                }
            }
        }

        let rule_ids: Vec<usize> = (0..self.rules.len())
            .filter(|&i| preds.contains(&self.rules[i].head_pred))
            .collect();
        // The delta-driven plans of each rule: its variants whose leading
        // (delta) literal is over a predicate of this stratum.
        let recursive: Vec<Vec<usize>> = rule_ids
            .iter()
            .map(|&i| {
                self.rules[i]
                    .variants
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, body))| preds.contains(&body[0].pred))
                    .map(|(v, _)| v)
                    .collect()
            })
            .collect();

        let mut bind: Vec<Option<Symbol>> = Vec::new();
        let mut pending = Pending::default();

        // Round 0: full evaluation of the non-recursive rules only.  Rules
        // with a same-stratum delta plan are covered entirely by the delta
        // rounds: each of their derivations needs at least one tuple of a
        // stratum predicate, and every such tuple (including the facts
        // inserted above) passes through a delta range exactly once because
        // `marks` starts at 0.
        for (k, &i) in rule_ids.iter().enumerate() {
            if !recursive[k].is_empty() {
                continue;
            }
            let rule = &self.rules[i];
            bind.clear();
            bind.resize(rule.num_vars, None);
            eval_rule(rule, &rule.body, None, &self.rels, &mut bind, &mut pending);
            for (pred, tuple) in pending.drain() {
                if let Some(rel) = self.rels.get_mut(&pred) {
                    rel.insert(tuple);
                }
            }
        }

        // Semi-naive rounds over contiguous delta ranges.
        let mut marks: FxHashMap<Symbol, usize> = preds.iter().map(|&p| (p, 0)).collect();
        loop {
            if let Some(max) = limits.max_facts {
                let total: u64 = self.rels.values().map(|r| r.len() as u64).sum();
                if total > max {
                    return Err(SolveError::ResourceExhausted {
                        resource: "facts",
                        limit: max,
                        consumed: total,
                    });
                }
            }
            let mut ranges: DeltaRanges = DeltaRanges::default();
            let mut any = false;
            for &p in &preds {
                let len = self.rels.get(&p).map_or(0, Relation::len);
                let start = marks[&p];
                if len > start {
                    any = true;
                }
                ranges.insert(p, (start, len));
            }
            if !any {
                break;
            }
            *rounds += 1;
            if let Some(max) = limits.max_rounds {
                if *rounds > max {
                    return Err(SolveError::ResourceExhausted {
                        resource: "rounds",
                        limit: max,
                        consumed: *rounds,
                    });
                }
            }
            for (&p, &(_, end)) in &ranges {
                marks.insert(p, end);
            }

            for (k, &i) in rule_ids.iter().enumerate() {
                let rule = &self.rules[i];
                for &v in &recursive[k] {
                    let body = &rule.variants[v].1;
                    let (start, end) = ranges[&body[0].pred];
                    if start == end {
                        continue;
                    }
                    bind.clear();
                    bind.resize(rule.num_vars, None);
                    eval_rule(
                        rule,
                        body,
                        Some(&ranges),
                        &self.rels,
                        &mut bind,
                        &mut pending,
                    );
                    for (pred, tuple) in pending.drain() {
                        if let Some(rel) = self.rels.get_mut(&pred) {
                            rel.insert(tuple);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn into_model(self) -> Model {
        let relations: BTreeMap<String, Relation> = self
            .rels
            .into_iter()
            .filter(|(_, rel)| !rel.is_empty())
            .map(|(sym, rel)| (self.interner.resolve(sym).to_string(), rel))
            .collect();
        Model {
            interner: self.interner,
            relations,
        }
    }
}

/// Evaluates one rule over the given body plan, appending newly derivable
/// head tuples (not yet in the store and not yet pending) to `pending`.
/// With `delta = Some(ranges)` the leading literal of the plan only ranges
/// over the tuples in its predicate's delta id range.
fn eval_rule(
    rule: &CompiledRule,
    body: &[CompiledLit],
    delta: Option<&DeltaRanges>,
    rels: &FxHashMap<Symbol, Relation>,
    bind: &mut Vec<Option<Symbol>>,
    pending: &mut Pending,
) {
    let mut trail: Vec<u32> = Vec::new();
    join(rule, body, 0, delta, rels, bind, &mut trail, pending);
}

#[allow(clippy::too_many_arguments)]
fn join(
    rule: &CompiledRule,
    body: &[CompiledLit],
    idx: usize,
    delta: Option<&DeltaRanges>,
    rels: &FxHashMap<Symbol, Relation>,
    bind: &mut Vec<Option<Symbol>>,
    trail: &mut Vec<u32>,
    pending: &mut Pending,
) {
    if idx == body.len() {
        let tuple: Box<[Symbol]> = rule
            .head
            .iter()
            .map(|slot| match slot {
                Slot::Const(c) => *c,
                Slot::Var(v) => bind[*v as usize].expect("head variable bound (safety)"),
            })
            .collect();
        let exists = rels
            .get(&rule.head_pred)
            .is_some_and(|r| r.contains_syms(&tuple));
        if !exists {
            pending.push(rule.head_pred, tuple);
        }
        return;
    }

    let lit = &body[idx];
    let Some(rel) = rels.get(&lit.pred) else {
        if lit.negated {
            join(rule, body, idx + 1, delta, rels, bind, trail, pending);
        }
        return;
    };

    if lit.negated {
        // All variables are bound (safety); check absence in the (complete)
        // relation of an earlier stratum.
        let tuple: Vec<Symbol> = lit
            .args
            .iter()
            .map(|slot| match slot {
                Slot::Const(c) => *c,
                Slot::Var(v) => bind[*v as usize].expect("negated variable bound (safety)"),
            })
            .collect();
        if !rel.contains_syms(&tuple) {
            join(rule, body, idx + 1, delta, rels, bind, trail, pending);
        }
        return;
    }

    let full = full_mask(lit.args.len());
    let is_delta = delta.is_some() && idx == 0;

    let descend = |tuple: &[Symbol],
                   bind: &mut Vec<Option<Symbol>>,
                   trail: &mut Vec<u32>,
                   pending: &mut Pending| {
        let depth = trail.len();
        if match_tuple(&lit.args, tuple, bind, trail) {
            join(rule, body, idx + 1, delta, rels, bind, trail, pending);
        }
        while trail.len() > depth {
            let v = trail.pop().expect("trail entry");
            bind[v as usize] = None;
        }
    };

    if is_delta {
        // Restrict this occurrence to the tuples added in the last round.
        let (start, end) = delta.expect("delta ranges present")[&lit.pred];
        for tuple in &rel.tuples[start..end] {
            descend(tuple, bind, trail, pending);
        }
    } else if lit.bound_mask == full && !lit.args.is_empty() {
        // Fully bound: a membership probe, no iteration.
        let tuple: Vec<Symbol> = lit
            .args
            .iter()
            .map(|slot| match slot {
                Slot::Const(c) => *c,
                Slot::Var(v) => bind[*v as usize].expect("bound position"),
            })
            .collect();
        if rel.contains_syms(&tuple) {
            join(rule, body, idx + 1, delta, rels, bind, trail, pending);
        }
    } else if lit.bound_mask == 0 {
        for tuple in &rel.tuples {
            descend(tuple, bind, trail, pending);
        }
    } else {
        // Probe the hash index on the bound positions.
        let key: Vec<Symbol> = lit
            .args
            .iter()
            .enumerate()
            .filter(|(i, _)| lit.bound_mask & (1 << i) != 0)
            .map(|(_, slot)| match slot {
                Slot::Const(c) => *c,
                Slot::Var(v) => bind[*v as usize].expect("bound position"),
            })
            .collect();
        for &id in rel.probe(lit.bound_mask, &key) {
            descend(&rel.tuples[id as usize], bind, trail, pending);
        }
    }
}

/// Matches `tuple` against the literal's argument slots, binding any unbound
/// variables (recorded on `trail` for unwinding).  Returns `false` on a
/// constant or binding mismatch.
fn match_tuple(
    args: &[Slot],
    tuple: &[Symbol],
    bind: &mut [Option<Symbol>],
    trail: &mut Vec<u32>,
) -> bool {
    debug_assert_eq!(args.len(), tuple.len());
    for (slot, &value) in args.iter().zip(tuple) {
        match slot {
            Slot::Const(c) => {
                if *c != value {
                    return false;
                }
            }
            Slot::Var(v) => match bind[*v as usize] {
                Some(existing) if existing != value => return false,
                Some(_) => {}
                None => {
                    bind[*v as usize] = Some(value);
                    trail.push(*v);
                }
            },
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_facts(p: &mut Program, edges: &[(&str, &str)]) {
        for (a, b) in edges {
            p.fact("edge", vec![Term::cst(*a), Term::cst(*b)]);
        }
    }

    fn path_rules(p: &mut Program) {
        p.rule("path", vec![Term::var("X"), Term::var("Y")])
            .pos("edge", vec![Term::var("X"), Term::var("Y")])
            .build();
        p.rule("path", vec![Term::var("X"), Term::var("Z")])
            .pos("path", vec![Term::var("X"), Term::var("Y")])
            .pos("edge", vec![Term::var("Y"), Term::var("Z")])
            .build();
    }

    #[test]
    fn transitive_closure() {
        let mut p = Program::new();
        edge_facts(&mut p, &[("a", "b"), ("b", "c"), ("c", "d")]);
        path_rules(&mut p);
        let m = p.solve().unwrap();
        assert!(m.contains("path", &["a", "d"]));
        assert_eq!(m.relation("path").len(), 6);
        assert_eq!(m.relation("edge").len(), 3);
    }

    #[test]
    fn bounded_solve_exhausts_deterministically() {
        let chain: Vec<(String, String)> = (0..40)
            .map(|i| (format!("n{i}"), format!("n{}", i + 1)))
            .collect();
        let mut p = Program::new();
        for (a, b) in &chain {
            p.fact("edge", vec![Term::cst(a.clone()), Term::cst(b.clone())]);
        }
        path_rules(&mut p);
        // Generous limits converge to the same model as the unbounded solve.
        let loose = SolveLimits {
            max_facts: Some(1_000_000),
            max_rounds: Some(1_000_000),
        };
        assert_eq!(
            p.solve_bounded(&loose).unwrap().relation("path"),
            p.solve().unwrap().relation("path")
        );
        // A tight round budget exhausts, and always at the same point.
        let tight = SolveLimits {
            max_rounds: Some(3),
            ..Default::default()
        };
        let e1 = p.solve_bounded(&tight).unwrap_err();
        let e2 = p.solve_bounded(&tight).unwrap_err();
        assert_eq!(e1, e2);
        assert!(matches!(
            e1,
            SolveError::ResourceExhausted {
                resource: "rounds",
                limit: 3,
                consumed: 4,
            }
        ));
        assert!(e1.to_string().contains("budget exhausted"));
        // A tight fact budget exhausts too (40 edges alone exceed 10 facts).
        let few_facts = SolveLimits {
            max_facts: Some(10),
            ..Default::default()
        };
        assert!(matches!(
            p.solve_bounded(&few_facts),
            Err(SolveError::ResourceExhausted {
                resource: "facts",
                ..
            })
        ));
    }

    #[test]
    fn cycles_terminate() {
        let mut p = Program::new();
        edge_facts(&mut p, &[("a", "b"), ("b", "a")]);
        path_rules(&mut p);
        let m = p.solve().unwrap();
        assert!(m.contains("path", &["a", "a"]));
        assert_eq!(m.relation("path").len(), 4);
    }

    #[test]
    fn constants_in_rule_heads_and_bodies() {
        let mut p = Program::new();
        edge_facts(&mut p, &[("a", "b"), ("b", "c")]);
        p.rule("from_a", vec![Term::var("Y")])
            .pos("edge", vec![Term::cst("a"), Term::var("Y")])
            .build();
        let m = p.solve().unwrap();
        assert_eq!(
            m.relation("from_a"),
            BTreeSet::from([vec!["b".to_string()]])
        );
    }

    #[test]
    fn stratified_negation() {
        // unreachable(X) :- node(X), not path(a, X).
        let mut p = Program::new();
        edge_facts(&mut p, &[("a", "b"), ("c", "d")]);
        path_rules(&mut p);
        for n in ["a", "b", "c", "d"] {
            p.fact("node", vec![Term::cst(n)]);
        }
        p.rule("unreachable", vec![Term::var("X")])
            .pos("node", vec![Term::var("X")])
            .neg("path", vec![Term::cst("a"), Term::var("X")])
            .build();
        let m = p.solve().unwrap();
        assert!(m.contains("unreachable", &["c"]));
        assert!(m.contains("unreachable", &["d"]));
        assert!(m.contains("unreachable", &["a"])); // no self loop on a
        assert!(!m.contains("unreachable", &["b"]));
    }

    #[test]
    fn interned_fast_path_matches_string_facts() {
        let mut p1 = Program::new();
        edge_facts(&mut p1, &[("a", "b"), ("b", "c"), ("c", "d")]);
        path_rules(&mut p1);

        let mut p2 = Program::new();
        let edge = p2.intern("edge");
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            let (a, b) = (p2.intern(a), p2.intern(b));
            p2.fact_interned(edge, vec![a, b]);
        }
        path_rules(&mut p2);

        assert_eq!(p2.len(), p1.len());
        assert_eq!(p1.solve().unwrap(), p2.solve().unwrap());
    }

    #[test]
    fn relation_ref_exposes_interned_tuples() {
        let mut p = Program::new();
        edge_facts(&mut p, &[("a", "b")]);
        let m = p.solve().unwrap();
        assert!(m.relation_ref("missing").is_none());
        let rel = m.relation_ref("edge").unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.arity(), 2);
        let tuple: Vec<&str> = rel
            .iter()
            .next()
            .unwrap()
            .iter()
            .map(|&s| m.resolve(s))
            .collect();
        assert_eq!(tuple, vec!["a", "b"]);
        let (a, b) = (m.lookup("a").unwrap(), m.lookup("b").unwrap());
        assert!(rel.contains_syms(&[a, b]));
        assert!(!rel.contains_syms(&[b, a]));
    }

    #[test]
    fn unsafe_rule_rejected() {
        let mut p = Program::new();
        p.rule("bad", vec![Term::var("X")]).build();
        assert!(matches!(p.solve(), Err(SolveError::UnsafeRule { .. })));

        let mut p2 = Program::new();
        p2.fact("node", vec![Term::cst("a")]);
        p2.rule("bad", vec![Term::cst("a")])
            .neg("node", vec![Term::var("Y")])
            .build();
        assert!(matches!(p2.solve(), Err(SolveError::UnsafeRule { .. })));
    }

    #[test]
    fn non_stratifiable_program_rejected() {
        // p(X) :- node(X), not q(X).  q(X) :- node(X), not p(X).
        let mut p = Program::new();
        p.fact("node", vec![Term::cst("a")]);
        p.rule("p", vec![Term::var("X")])
            .pos("node", vec![Term::var("X")])
            .neg("q", vec![Term::var("X")])
            .build();
        p.rule("q", vec![Term::var("X")])
            .pos("node", vec![Term::var("X")])
            .neg("p", vec![Term::var("X")])
            .build();
        assert!(matches!(p.solve(), Err(SolveError::NotStratifiable { .. })));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut p = Program::new();
        p.fact("r", vec![Term::cst("a")]);
        p.fact("r", vec![Term::cst("a"), Term::cst("b")]);
        assert!(matches!(p.solve(), Err(SolveError::ArityMismatch { .. })));
    }

    #[test]
    fn empty_program_has_empty_model() {
        let p = Program::new();
        assert!(p.is_empty());
        let m = p.solve().unwrap();
        assert_eq!(m.tuple_count(), 0);
    }

    #[test]
    fn model_queries() {
        let mut p = Program::new();
        edge_facts(&mut p, &[("a", "b")]);
        let m = p.solve().unwrap();
        assert_eq!(m.predicates().collect::<Vec<_>>(), vec!["edge"]);
        assert!(!m.contains("missing", &["a"]));
        assert!(!m.contains("edge", &["a", "zzz"]));
        assert_eq!(m.tuple_count(), 1);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Term::cst("a").to_string(), "a");
        assert_eq!(Term::var("X").to_string(), "?X");
        let e = SolveError::ArityMismatch {
            predicate: "p".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("arity"));
    }

    // -----------------------------------------------------------------
    // Differential testing: the semi-naive engine must agree with the
    // naive reference evaluator on random stratified programs.
    // -----------------------------------------------------------------

    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            // splitmix64
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound
        }

        fn flag(&mut self) -> bool {
            self.next() & 1 == 1
        }
    }

    /// A random stratified program over a fixed schema:
    /// EDB `edge/2`, `mark/1`; IDB `path/2` and `hull/1` (positive,
    /// recursive), `iso/1` (negation stratum), `core/1` (second negation
    /// stratum).
    fn random_program(seed: u64) -> Program {
        let mut rng = Rng(seed);
        let consts: Vec<String> = (0..6).map(|i| format!("c{i}")).collect();
        let c = |rng: &mut Rng, consts: &[String]| -> Term {
            Term::cst(consts[rng.below(consts.len() as u64) as usize].clone())
        };

        let mut p = Program::new();
        for _ in 0..(3 + rng.below(18)) {
            let (a, b) = (c(&mut rng, &consts), c(&mut rng, &consts));
            p.fact("edge", vec![a, b]);
        }
        for _ in 0..(1 + rng.below(4)) {
            let a = c(&mut rng, &consts);
            p.fact("mark", vec![a]);
        }

        // Positive stratum: always seed path, then a random rule mix.
        p.rule("path", vec![Term::var("X"), Term::var("Y")])
            .pos("edge", vec![Term::var("X"), Term::var("Y")])
            .build();
        if rng.flag() {
            p.rule("path", vec![Term::var("X"), Term::var("Z")])
                .pos("path", vec![Term::var("X"), Term::var("Y")])
                .pos("edge", vec![Term::var("Y"), Term::var("Z")])
                .build();
        }
        if rng.flag() {
            p.rule("path", vec![Term::var("X"), Term::var("Z")])
                .pos("edge", vec![Term::var("X"), Term::var("Y")])
                .pos("path", vec![Term::var("Y"), Term::var("Z")])
                .build();
        }
        if rng.flag() {
            // Mutual recursion through a second predicate.
            p.rule("hull", vec![Term::var("Y")])
                .pos("mark", vec![Term::var("X")])
                .pos("path", vec![Term::var("X"), Term::var("Y")])
                .build();
            p.rule("path", vec![Term::var("X"), Term::var("X")])
                .pos("hull", vec![Term::var("X")])
                .pos("edge", vec![Term::var("X"), Term::var("Y")])
                .build();
        } else {
            p.rule("hull", vec![Term::var("X")])
                .pos("mark", vec![Term::var("X")])
                .build();
        }
        if rng.flag() {
            // Constants in bodies and heads.
            p.rule("path", vec![Term::cst("c0"), Term::var("Y")])
                .pos("edge", vec![Term::cst("c1"), Term::var("Y")])
                .build();
        }

        // Negation stratum.
        p.rule("iso", vec![Term::var("X")])
            .pos("mark", vec![Term::var("X")])
            .neg("path", vec![Term::var("X"), Term::var("X")])
            .build();
        if rng.flag() {
            p.rule("iso", vec![Term::var("Y")])
                .pos("edge", vec![Term::var("X"), Term::var("Y")])
                .neg("hull", vec![Term::var("Y")])
                .build();
        }

        // Second negation stratum.
        if rng.flag() {
            p.rule("core", vec![Term::var("X")])
                .pos("hull", vec![Term::var("X")])
                .neg("iso", vec![Term::var("X")])
                .build();
        }

        p
    }

    #[test]
    fn semi_naive_agrees_with_naive_on_random_programs() {
        for seed in 0..120u64 {
            let p = random_program(seed);
            let fast = p
                .solve()
                .unwrap_or_else(|e| panic!("seed {seed}: solve failed: {e}"));
            let slow = p
                .solve_naive()
                .unwrap_or_else(|e| panic!("seed {seed}: naive failed: {e}"));
            assert_eq!(
                fast, slow,
                "seed {seed}: semi-naive and naive models differ\nprogram: {p:?}"
            );
        }
    }

    #[test]
    fn semi_naive_agrees_with_naive_on_interned_facts() {
        for seed in 200..230u64 {
            let mut p = random_program(seed);
            // Route extra facts through the interned fast path.
            let edge = p.intern("edge");
            let mut rng = Rng(seed ^ 0xdead_beef);
            for _ in 0..rng.below(8) {
                let a = p.intern(&format!("c{}", rng.below(6)));
                let b = p.intern(&format!("c{}", rng.below(6)));
                p.fact_interned(edge, vec![a, b]);
            }
            assert_eq!(p.solve().unwrap(), p.solve_naive().unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn fx_hasher_spreads_small_integers() {
        use std::hash::Hash;
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..1000 {
            let mut h = FxHasher::default();
            i.hash(&mut h);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 1000);
    }
}
