//! Property-based tests for the `std_logic` value domain: algebraic
//! properties of the resolution function and of the vector conversions that
//! the simulator relies on.

use proptest::prelude::*;
use vhdl1_sim::{resolve_all, Logic, Value};

fn arb_logic() -> impl Strategy<Value = Logic> {
    prop::sample::select(Logic::ALL.to_vec())
}

proptest! {
    /// The IEEE 1164 resolution function is commutative and associative, so
    /// the resolution of a multiset of drivers is well-defined regardless of
    /// the order the semantics visits the processes in.
    #[test]
    fn resolution_is_commutative_and_associative(
        a in arb_logic(), b in arb_logic(), c in arb_logic()
    ) {
        prop_assert_eq!(a.resolve(b), b.resolve(a));
        prop_assert_eq!(a.resolve(b).resolve(c), a.resolve(b.resolve(c)));
    }

    /// Resolving a driver with itself never changes it (idempotence — except
    /// for the don't-care value, which the IEEE table resolves to 'X'), and
    /// 'U' / 'Z' behave as the annihilator / near-identity of the table.
    #[test]
    fn resolution_identities(a in arb_logic()) {
        if a == Logic::DontCare {
            prop_assert_eq!(a.resolve(a), Logic::X);
        } else {
            prop_assert_eq!(a.resolve(a), a);
        }
        prop_assert_eq!(a.resolve(Logic::U), Logic::U);
        let z_resolved = Logic::Z.resolve(a);
        if a == Logic::Z {
            prop_assert_eq!(z_resolved, Logic::Z);
        } else {
            // Resolving with high impedance keeps the driving value except
            // that weak values stay weak.
            prop_assert_eq!(z_resolved.to_x01(), a.to_x01());
        }
    }

    /// Gate operators agree with their boolean counterparts on defined values
    /// and never return a defined value from an undefined operand pair that
    /// could change the outcome.
    #[test]
    fn gates_match_boolean_logic(a in arb_logic(), b in arb_logic()) {
        if let (Some(x), Some(y)) = (a.to_bool(), b.to_bool()) {
            prop_assert_eq!(a.and(b).to_bool(), Some(x && y));
            prop_assert_eq!(a.or(b).to_bool(), Some(x || y));
            prop_assert_eq!(a.xor(b).to_bool(), Some(x ^ y));
            prop_assert_eq!(a.not().to_bool(), Some(!x));
        }
    }

    /// Unsigned round-trips through vectors of any width up to 64 bits.
    #[test]
    fn unsigned_roundtrip(n in 0u64..u64::MAX, width in 1usize..=64) {
        let masked = if width == 64 { n as u128 } else { (n as u128) & ((1u128 << width) - 1) };
        let v = Value::from_unsigned(masked, width);
        prop_assert_eq!(v.width(), width);
        prop_assert_eq!(v.to_unsigned(), Some(masked));
    }

    /// Resizing preserves the numeric value when widening and truncates
    /// modulo 2^width when narrowing.
    #[test]
    fn resize_semantics(n in 0u32..u32::MAX, width in 1usize..=48) {
        let v = Value::from_unsigned(n as u128, 32);
        let resized = v.resized(width);
        let expected = if width >= 32 {
            n as u128
        } else {
            (n as u128) & ((1u128 << width) - 1)
        };
        prop_assert_eq!(resized.to_unsigned(), Some(expected));
    }

    /// `resolve_all` equals a pairwise left fold (the multiset view of the
    /// paper's resolution function f_s).
    #[test]
    fn resolve_all_matches_fold(values in prop::collection::vec(arb_logic(), 1..6)) {
        let folded = values.iter().copied().reduce(Logic::resolve);
        prop_assert_eq!(resolve_all(values.iter().copied()), folded);
    }
}
