//! Compilation of an elaborated [`Design`] into the dense simulator core.
//!
//! The reference simulator interprets the AST directly: every activation
//! re-clones the process body, every name is looked up in a string-keyed
//! ordered map, and every value is a freshly allocated vector.  This module
//! instead compiles each process **once** into a flat array of instructions
//! over interned resources:
//!
//! * signals are the dense `u32` ids assigned at elaboration
//!   ([`vhdl1_syntax::SignalNumbering`] — the index into `Design::signals`),
//! * process variables get per-process dense ids the same way,
//! * vector literals are pre-packed [`PackedValue`] constants,
//! * slices are pre-resolved to `(start, len, direction)` element windows
//!   (out-of-range slices are rejected here, at compile time, with their
//!   source position),
//! * control flow becomes branch/jump targets instead of a continuation
//!   stack of cloned sub-trees,
//! * every `wait` statement's sensitivity list becomes an **interned signal
//!   bitset**, so wakeup checks at synchronisation are word scans.
//!
//! Execution of the compiled form lives in [`crate::simulator`].

use crate::error::SimError;
use crate::eval::{eval, slice_offsets, NameEnv};
use crate::packed::{apply_binary_packed, PackedValue};
use crate::values::{Logic, Value};
use std::collections::HashMap;
use vhdl1_syntax::{
    Design, Expr, Ident, SignalKind, SignalNumbering, Slice, Span, Stmt, Type, UnOp,
};

/// A pre-resolved slice: a contiguous element window of the stored value.
///
/// `start` is the element offset of the *first* selected element in slice
/// order; `descending` walks the window leftwards (a slice written against
/// the declaration direction).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CSlice {
    pub(crate) start: u32,
    pub(crate) len: u32,
    pub(crate) descending: bool,
}

/// A compiled expression over interned resources.
#[derive(Debug, Clone)]
pub(crate) enum CExpr {
    /// A pre-packed literal.
    Const(PackedValue),
    /// The present value of a signal.
    Sig(u32),
    /// A slice of the present value of a signal.
    SigSlice(u32, CSlice),
    /// The value of a process variable.
    Var(u32),
    /// A slice of a process variable.
    VarSlice(u32, CSlice),
    /// Element-wise negation.
    Not(Box<CExpr>),
    /// A binary operator (reference semantics of Table 1).
    Binary(vhdl1_syntax::BinOp, Box<CExpr>, Box<CExpr>),
}

/// One instruction of a compiled process body.
#[derive(Debug, Clone)]
pub(crate) enum Instr {
    /// `null`.
    Nop,
    /// `x := e`, with the variable's width applied.
    VarAssign {
        /// Dense variable id.
        var: u32,
        /// Optional pre-resolved slice of the target.
        slice: Option<CSlice>,
        /// Right-hand side.
        expr: CExpr,
    },
    /// `s <= e`: updates the process's active-value slot for the signal.
    SigAssign {
        /// Index into the process's driven-signal slots.
        slot: u32,
        /// Optional pre-resolved slice of the target.
        slice: Option<CSlice>,
        /// Right-hand side.
        expr: CExpr,
    },
    /// Falls through when the condition is `'1'`, jumps to `target`
    /// otherwise (the else/exit edge of `if`/`while`).
    BranchIfFalse {
        /// The compiled condition.
        cond: CExpr,
        /// Jump target when the condition is not true.
        target: u32,
        /// Source position of the condition (strict-mode diagnostics).
        span: Span,
    },
    /// Unconditional jump (loop back-edges, if-join edges).
    Jump(u32),
    /// Suspension point: the process waits on the interned sensitivity set
    /// `sens` until the guard holds (`None` = the default `'1'`).
    Wait {
        /// Index into [`CompiledDesign::sens_sets`].
        sens: u32,
        /// The compiled `until` guard, unless it is the `'1'` literal.
        until: Option<CExpr>,
        /// Source position of the guard (strict-mode diagnostics).
        span: Span,
    },
}

/// One compiled process.
#[derive(Debug)]
pub(crate) struct CompiledProcess {
    pub(crate) name: Ident,
    pub(crate) var_names: Vec<Ident>,
    pub(crate) var_widths: Vec<u32>,
    pub(crate) var_init: Vec<PackedValue>,
    /// Signal ids this process may drive, in first-assignment order; the
    /// position is the process's active-value *slot* for that signal.
    pub(crate) driven: Vec<u32>,
    pub(crate) code: Vec<Instr>,
}

/// A [`Design`] compiled for the dense simulator: interned signals, packed
/// initial values, flat instruction arrays and interned sensitivity bitsets.
///
/// Compiling is a one-time cost per design; any number of
/// [`crate::Simulator`] instances can be created from a shared compiled
/// design via [`crate::Simulator::from_compiled`].
#[derive(Debug)]
pub struct CompiledDesign {
    pub(crate) sig_names: Vec<Ident>,
    pub(crate) sig_id: HashMap<Ident, u32>,
    pub(crate) sig_widths: Vec<u32>,
    /// Bitset over signal ids: the `in` ports.
    pub(crate) input_bits: Box<[u64]>,
    pub(crate) sig_init: Vec<PackedValue>,
    pub(crate) procs: Vec<CompiledProcess>,
    /// Interned sensitivity sets (bitsets over signal ids).
    pub(crate) sens_sets: Vec<Box<[u64]>>,
    /// `ceil(signal count / 64)`, the word length of every signal bitset.
    pub(crate) sig_word_count: usize,
}

impl CompiledDesign {
    /// Compiles `design`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when an initialiser cannot be evaluated, a
    /// name is unresolvable, or a slice leaves its declared range — carrying
    /// the source position whenever the AST node was parsed from text.
    pub fn compile(design: &Design) -> Result<CompiledDesign, SimError> {
        let numbering = design.signal_numbering();
        let nsignals = design.signals.len();
        let sig_word_count = nsignals.div_ceil(64).max(1);

        let mut sig_names = Vec::with_capacity(nsignals);
        let mut sig_widths = Vec::with_capacity(nsignals);
        let mut sig_types = Vec::with_capacity(nsignals);
        let mut sig_init = Vec::with_capacity(nsignals);
        let mut input_bits = vec![0u64; sig_word_count].into_boxed_slice();
        for (i, sig) in design.signals.iter().enumerate() {
            sig_names.push(sig.name.clone());
            sig_widths.push(sig.ty.width() as u32);
            sig_types.push(sig.ty.clone());
            let init = match &sig.init {
                Some(e) => eval(e, &EmptyEnv)?.resized(sig.ty.width()),
                None => Value::filled(sig.ty.width(), Logic::U),
            };
            sig_init.push(PackedValue::from_value(&init));
            if sig.kind == SignalKind::PortIn {
                input_bits[i / 64] |= 1u64 << (i % 64);
            }
        }
        let sig_id: HashMap<Ident, u32> = sig_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();

        let mut sens_pool = SensPool::default();
        let mut procs = Vec::with_capacity(design.processes.len());
        for p in &design.processes {
            let mut var_names = Vec::with_capacity(p.variables.len());
            let mut var_widths = Vec::with_capacity(p.variables.len());
            let mut var_types = Vec::with_capacity(p.variables.len());
            let mut var_init = Vec::with_capacity(p.variables.len());
            for v in &p.variables {
                let init = match &v.init {
                    Some(e) => eval(e, &EmptyEnv)?.resized(v.ty.width()),
                    None => Value::filled(v.ty.width(), Logic::U),
                };
                var_names.push(v.name.clone());
                var_widths.push(v.ty.width() as u32);
                var_types.push(v.ty.clone());
                var_init.push(PackedValue::from_value(&init));
            }
            let mut ctx = ProcCompiler {
                numbering: &numbering,
                sig_types: &sig_types,
                var_ids: var_names
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (n.clone(), i as u32))
                    .collect(),
                var_types: &var_types,
                driven: Vec::new(),
                slot_of: HashMap::new(),
                code: Vec::new(),
                sens_pool: &mut sens_pool,
                sig_word_count,
            };
            ctx.compile_stmt(&p.body)?;
            if ctx.code.is_empty() {
                ctx.code.push(Instr::Nop);
            }
            procs.push(CompiledProcess {
                name: p.name.clone(),
                var_names,
                var_widths,
                var_init,
                driven: ctx.driven,
                code: ctx.code,
            });
        }

        Ok(CompiledDesign {
            sig_names,
            sig_id,
            sig_widths,
            input_bits,
            sig_init,
            procs,
            sens_sets: sens_pool.sets,
            sig_word_count,
        })
    }

    /// Number of signals of the design.
    pub fn signal_count(&self) -> usize {
        self.sig_names.len()
    }

    /// Number of processes of the design.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }
}

/// Interner for sensitivity bitsets: identical `wait on` sets share one
/// stored bitset.
#[derive(Default)]
struct SensPool {
    ids: HashMap<Box<[u64]>, u32>,
    sets: Vec<Box<[u64]>>,
}

impl SensPool {
    fn intern(&mut self, set: Box<[u64]>) -> u32 {
        if let Some(&id) = self.ids.get(&set) {
            return id;
        }
        let id = self.sets.len() as u32;
        self.sets.push(set.clone());
        self.ids.insert(set, id);
        id
    }
}

struct ProcCompiler<'a> {
    numbering: &'a SignalNumbering,
    sig_types: &'a [Type],
    var_ids: HashMap<Ident, u32>,
    var_types: &'a [Type],
    driven: Vec<u32>,
    slot_of: HashMap<u32, u32>,
    code: Vec<Instr>,
    sens_pool: &'a mut SensPool,
    sig_word_count: usize,
}

impl ProcCompiler<'_> {
    fn compile_stmt(&mut self, stmt: &Stmt) -> Result<(), SimError> {
        match stmt {
            Stmt::Null { .. } => self.code.push(Instr::Nop),
            Stmt::Seq(a, b) => {
                self.compile_stmt(a)?;
                self.compile_stmt(b)?;
            }
            Stmt::VarAssign { target, expr, .. } => {
                let expr = self.compile_expr(expr)?;
                let var =
                    *self
                        .var_ids
                        .get(&target.name)
                        .ok_or_else(|| SimError::UndefinedName {
                            name: target.name.clone(),
                            span: target.span,
                        })?;
                let slice = match &target.slice {
                    None => None,
                    Some(sl) => Some(
                        compile_slice(&target.name, &self.var_types[var as usize], sl)
                            .map_err(|e| e.with_span(target.span))?,
                    ),
                };
                self.code.push(Instr::VarAssign { var, slice, expr });
            }
            Stmt::SignalAssign { target, expr, .. } => {
                let expr = self.compile_expr(expr)?;
                let sig =
                    self.numbering
                        .id(&target.name)
                        .ok_or_else(|| SimError::UndefinedName {
                            name: target.name.clone(),
                            span: target.span,
                        })?;
                let slice = match &target.slice {
                    None => None,
                    Some(sl) => Some(
                        compile_slice(&target.name, &self.sig_types[sig as usize], sl)
                            .map_err(|e| e.with_span(target.span))?,
                    ),
                };
                let slot = match self.slot_of.get(&sig) {
                    Some(&s) => s,
                    None => {
                        let s = self.driven.len() as u32;
                        self.driven.push(sig);
                        self.slot_of.insert(sig, s);
                        s
                    }
                };
                self.code.push(Instr::SigAssign { slot, slice, expr });
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let ccond = self.compile_expr(cond)?;
                let branch_at = self.code.len();
                self.code.push(Instr::BranchIfFalse {
                    cond: ccond,
                    target: 0,
                    span: expr_span(cond),
                });
                self.compile_stmt(then_branch)?;
                let jump_at = self.code.len();
                self.code.push(Instr::Jump(0));
                let else_start = self.code.len() as u32;
                self.patch_branch(branch_at, else_start);
                self.compile_stmt(else_branch)?;
                let join = self.code.len() as u32;
                self.code[jump_at] = Instr::Jump(join);
            }
            Stmt::While { cond, body, .. } => {
                let loop_start = self.code.len() as u32;
                let ccond = self.compile_expr(cond)?;
                let branch_at = self.code.len();
                self.code.push(Instr::BranchIfFalse {
                    cond: ccond,
                    target: 0,
                    span: expr_span(cond),
                });
                self.compile_stmt(body)?;
                self.code.push(Instr::Jump(loop_start));
                let exit = self.code.len() as u32;
                self.patch_branch(branch_at, exit);
            }
            Stmt::Wait { on, until, .. } => {
                let mut bits = vec![0u64; self.sig_word_count].into_boxed_slice();
                for name in on {
                    // Names that are not signals can never trigger a wakeup
                    // (the reference simulator matches them against the
                    // changed-signal set, where they never occur).
                    if let Some(id) = self.numbering.id(name) {
                        bits[id as usize / 64] |= 1u64 << (id as usize % 64);
                    }
                }
                let sens = self.sens_pool.intern(bits);
                let until_c = if until.is_true_literal() {
                    None
                } else {
                    Some(self.compile_expr(until)?)
                };
                self.code.push(Instr::Wait {
                    sens,
                    until: until_c,
                    span: expr_span(until),
                });
            }
        }
        Ok(())
    }

    fn patch_branch(&mut self, at: usize, to: u32) {
        if let Instr::BranchIfFalse { target, .. } = &mut self.code[at] {
            *target = to;
        }
    }

    fn compile_expr(&self, e: &Expr) -> Result<CExpr, SimError> {
        Ok(match e {
            Expr::Logic(c) => {
                let v = Value::logic(*c).ok_or_else(|| SimError::UndefinedName {
                    name: c.to_string(),
                    span: Span::NONE,
                })?;
                CExpr::Const(PackedValue::from_value(&v))
            }
            Expr::Vector(s) => {
                let v = Value::vector(s).ok_or_else(|| SimError::UndefinedName {
                    name: s.clone(),
                    span: Span::NONE,
                })?;
                CExpr::Const(PackedValue::from_value(&v))
            }
            Expr::Int(n) => CExpr::Const(PackedValue::from_unsigned(*n as u128, 64)),
            Expr::Name { name, slice, span } => {
                // Variables shadow signals, like the reference evaluator's
                // environment lookup order.
                if let Some(&var) = self.var_ids.get(name) {
                    match slice {
                        None => CExpr::Var(var),
                        Some(sl) => CExpr::VarSlice(
                            var,
                            compile_slice(name, &self.var_types[var as usize], sl)
                                .map_err(|e| e.with_span(*span))?,
                        ),
                    }
                } else if let Some(sig) = self.numbering.id(name) {
                    match slice {
                        None => CExpr::Sig(sig),
                        Some(sl) => CExpr::SigSlice(
                            sig,
                            compile_slice(name, &self.sig_types[sig as usize], sl)
                                .map_err(|e| e.with_span(*span))?,
                        ),
                    }
                } else {
                    return Err(SimError::UndefinedName {
                        name: name.clone(),
                        span: *span,
                    });
                }
            }
            Expr::Unary {
                op: UnOp::Not,
                expr,
            } => CExpr::Not(Box::new(self.compile_expr(expr)?)),
            Expr::Binary { op, lhs, rhs } => CExpr::Binary(
                *op,
                Box::new(self.compile_expr(lhs)?),
                Box::new(self.compile_expr(rhs)?),
            ),
        })
    }
}

/// Resolves a source slice against the declared type into a contiguous
/// element window, validating the bounds (the validation of
/// [`crate::eval::slice_offsets`], hoisted to compile time).
fn compile_slice(name: &str, ty: &Type, slice: &Slice) -> Result<CSlice, SimError> {
    let offsets = slice_offsets(name, ty, slice)?;
    // A null slice (e.g. `(0 downto 1)`, written against the range
    // direction) selects no elements; the reference evaluator yields an
    // empty offset list, which reads as an empty value and writes nothing.
    let Some(&start) = offsets.first() else {
        return Ok(CSlice {
            start: 0,
            len: 0,
            descending: false,
        });
    };
    let descending = offsets.len() > 1 && offsets[1] < offsets[0];
    Ok(CSlice {
        start: start as u32,
        len: offsets.len() as u32,
        descending,
    })
}

/// The source position of the first named reference in `e`, if any — the
/// best position available for condition diagnostics.
fn expr_span(e: &Expr) -> Span {
    match e {
        Expr::Name { span, .. } => *span,
        Expr::Unary { expr, .. } => expr_span(expr),
        Expr::Binary { lhs, rhs, .. } => {
            let l = expr_span(lhs);
            if l.pos().is_some() {
                l
            } else {
                expr_span(rhs)
            }
        }
        Expr::Logic(_) | Expr::Vector(_) | Expr::Int(_) => Span::NONE,
    }
}

/// Evaluates a compiled expression against the flat stores.  Compiled
/// expressions cannot fail at runtime: names and slices were resolved and
/// bounds-checked at compile time.
pub(crate) fn eval_cexpr(e: &CExpr, vars: &[PackedValue], present: &[PackedValue]) -> PackedValue {
    match e {
        CExpr::Const(v) => v.clone(),
        CExpr::Sig(id) => present[*id as usize].clone(),
        CExpr::SigSlice(id, sl) => {
            present[*id as usize].extract_slice(sl.start as usize, sl.len as usize, sl.descending)
        }
        CExpr::Var(id) => vars[*id as usize].clone(),
        CExpr::VarSlice(id, sl) => {
            vars[*id as usize].extract_slice(sl.start as usize, sl.len as usize, sl.descending)
        }
        CExpr::Not(inner) => eval_cexpr(inner, vars, present).not(),
        CExpr::Binary(op, lhs, rhs) => apply_binary_packed(
            *op,
            &eval_cexpr(lhs, vars, present),
            &eval_cexpr(rhs, vars, present),
        ),
    }
}

struct EmptyEnv;

impl NameEnv for EmptyEnv {
    fn value_of(&self, _name: &str) -> Option<Value> {
        None
    }
    fn type_of(&self, _name: &str) -> Option<Type> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vhdl1_syntax::frontend;

    #[test]
    fn compiles_signals_processes_and_sensitivity_sets() {
        let d = frontend(
            "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic_vector(3 downto 0) := \"1010\";
             begin
               p1 : process begin t <= t; wait on a; end process p1;
               p2 : process begin b <= a; wait on a; end process p2;
             end rtl;",
        )
        .unwrap();
        let c = CompiledDesign::compile(&d).unwrap();
        assert_eq!(c.signal_count(), 3);
        assert_eq!(c.process_count(), 2);
        assert_eq!(c.sig_id["a"], 0);
        assert_eq!(c.sig_id["t"], 2);
        assert_eq!(c.sig_widths[2], 4);
        // `in` port bit set for a (id 0) only.
        assert_eq!(c.input_bits[0], 0b001);
        // Both processes wait on the same set: it is interned once.
        assert_eq!(c.sens_sets.len(), 1);
        assert_eq!(&*c.sens_sets[0], &[0b001u64][..]);
        assert_eq!(c.sig_init[2].to_value(), Value::vector("1010").unwrap());
    }

    #[test]
    fn null_slices_compile_to_empty_windows() {
        // `(0 downto 1)` against a `downto` range selects no elements; the
        // reference evaluator returns an empty offset list and the dense
        // compiler must not panic on it.
        let d = frontend(
            "entity e is port(a : in std_logic_vector(3 downto 0);
                              b : out std_logic_vector(3 downto 0)); end e;
             architecture rtl of e is begin
               p : process begin
                 b(0 downto 1) <= a(0 downto 1);
                 wait on a;
               end process;
             end rtl;",
        )
        .unwrap();
        let c = CompiledDesign::compile(&d).expect("null slices are legal");
        let has_empty_slice = c.procs[0].code.iter().any(|i| {
            matches!(
                i,
                Instr::SigAssign {
                    slice: Some(CSlice { len: 0, .. }),
                    ..
                }
            )
        });
        assert!(has_empty_slice, "{:?}", c.procs[0].code);
    }

    #[test]
    fn out_of_range_slices_fail_at_compile_time_with_positions() {
        let d = frontend(
            "entity e is port(a : in std_logic_vector(3 downto 0); b : out std_logic); end e;
architecture rtl of e is begin
  p : process begin
    b <= a(9 downto 8);
    wait on a;
  end process;
end rtl;",
        )
        .unwrap();
        let err = CompiledDesign::compile(&d).unwrap_err();
        assert!(matches!(err, SimError::InvalidSlice { .. }), "{err:?}");
        let pos = err.pos().expect("parsed slice errors carry a position");
        assert_eq!(pos.line, 4, "{err}");
        assert!(err.to_string().contains("at 4:"), "{err}");
    }

    #[test]
    fn branch_targets_form_well_bounded_code() {
        let d = frontend(
            "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is begin
               p : process
                 variable i : std_logic_vector(3 downto 0) := \"0000\";
               begin
                 i := \"0000\";
                 while i < 3 loop
                   i := i + 1;
                 end loop;
                 if a = '1' then b <= '1'; else b <= '0'; end if;
                 wait on a;
               end process;
             end rtl;",
        )
        .unwrap();
        let c = CompiledDesign::compile(&d).unwrap();
        let code = &c.procs[0].code;
        let n = code.len() as u32;
        for instr in code {
            match instr {
                Instr::Jump(t) => assert!(*t <= n),
                Instr::BranchIfFalse { target, .. } => assert!(*target <= n),
                _ => {}
            }
        }
    }
}
