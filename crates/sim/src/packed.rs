//! Nibble-packed `std_logic` values for the dense simulator core.
//!
//! The reference value domain ([`crate::values::Value`]) stores every vector
//! as a heap-allocated `Vec<Logic>`; each simulator step clones, resizes and
//! rebuilds those vectors, and for a fully unrolled AES-128 that allocation
//! churn dominates the run time.  [`PackedValue`] stores the same nine-valued
//! elements as 4-bit codes packed into `u64` words — sixteen elements per
//! word — with a **small-value inlining** fast path: values up to sixteen
//! elements (every scalar and every byte-wide vector of the AES workload)
//! live in a single inline word and never touch the heap.
//!
//! All operators mirror the reference semantics bit for bit; the table
//! fidelity tests at the bottom pin the packed lookup tables to the
//! [`Logic`] methods, and the `simref` differential tests pin whole-design
//! behaviour.

use crate::values::{Logic, Value};
use std::fmt;

// 4-bit codes, in the standard order of [`Logic::ALL`] (`Logic::code`).
const C_X: u8 = 1;
const C_0: u8 = 2;
const C_1: u8 = 3;

/// Normalises a code to the `X01` subtype (mirrors [`Logic::to_x01`]).
const fn x01(c: u8) -> u8 {
    match c {
        2 | 6 => C_0,
        3 | 7 => C_1,
        _ => C_X,
    }
}

const fn and_code(a: u8, b: u8) -> u8 {
    let (a, b) = (x01(a), x01(b));
    if a == C_0 || b == C_0 {
        C_0
    } else if a == C_1 && b == C_1 {
        C_1
    } else {
        C_X
    }
}

const fn or_code(a: u8, b: u8) -> u8 {
    let (a, b) = (x01(a), x01(b));
    if a == C_1 || b == C_1 {
        C_1
    } else if a == C_0 && b == C_0 {
        C_0
    } else {
        C_X
    }
}

const fn xor_code(a: u8, b: u8) -> u8 {
    let (a, b) = (x01(a), x01(b));
    if a == C_X || b == C_X {
        C_X
    } else if a == b {
        C_0
    } else {
        C_1
    }
}

const fn not_code(c: u8) -> u8 {
    match x01(c) {
        C_0 => C_1,
        C_1 => C_0,
        _ => C_X,
    }
}

/// The IEEE 1164 resolution table in code space (mirrors [`Logic::resolve`]).
const fn resolve_code(a: u8, b: u8) -> u8 {
    const T: [[u8; 9]; 9] = [
        // U  X  0  1  Z  W  L  H  -
        [0, 0, 0, 0, 0, 0, 0, 0, 0], // U
        [0, 1, 1, 1, 1, 1, 1, 1, 1], // X
        [0, 1, 2, 1, 2, 2, 2, 2, 1], // 0
        [0, 1, 1, 3, 3, 3, 3, 3, 1], // 1
        [0, 1, 2, 3, 4, 5, 6, 7, 1], // Z
        [0, 1, 2, 3, 5, 5, 5, 5, 1], // W
        [0, 1, 2, 3, 6, 5, 6, 5, 1], // L
        [0, 1, 2, 3, 7, 5, 5, 7, 1], // H
        [0, 1, 1, 1, 1, 1, 1, 1, 1], // -
    ];
    T[a as usize][b as usize]
}

const fn nand_code(a: u8, b: u8) -> u8 {
    not_code(and_code(a, b))
}
const fn nor_code(a: u8, b: u8) -> u8 {
    not_code(or_code(a, b))
}
const fn xnor_code(a: u8, b: u8) -> u8 {
    not_code(xor_code(a, b))
}

/// Builds a 256-entry binary lookup table indexed by `(a << 4) | b`.
macro_rules! lut2 {
    ($f:ident) => {{
        let mut t = [0u8; 256];
        let mut a = 0usize;
        while a < 9 {
            let mut b = 0usize;
            while b < 9 {
                t[(a << 4) | b] = $f(a as u8, b as u8);
                b += 1;
            }
            a += 1;
        }
        t
    }};
}

static RESOLVE_LUT: [u8; 256] = lut2!(resolve_code);
static AND_LUT: [u8; 256] = lut2!(and_code);
static OR_LUT: [u8; 256] = lut2!(or_code);
static XOR_LUT: [u8; 256] = lut2!(xor_code);
static NAND_LUT: [u8; 256] = lut2!(nand_code);
static NOR_LUT: [u8; 256] = lut2!(nor_code);
static XNOR_LUT: [u8; 256] = lut2!(xnor_code);

static NOT_LUT: [u8; 16] = {
    let mut t = [0u8; 16];
    let mut c = 0usize;
    while c < 9 {
        t[c] = not_code(c as u8);
        c += 1;
    }
    t
};

/// Elements per packed word (4 bits each).
const PER_WORD: usize = 16;

fn word_count(width: usize) -> usize {
    width.div_ceil(PER_WORD)
}

/// Mask selecting the low `n` nibbles of a word (`n <= 16`).
fn nibble_mask(n: usize) -> u64 {
    if n >= PER_WORD {
        !0
    } else {
        (1u64 << (4 * n)) - 1
    }
}

/// Mask for the used nibbles of the *last* word of a `width`-element value.
fn last_word_mask(width: usize) -> u64 {
    let rem = width % PER_WORD;
    if rem == 0 {
        !0
    } else {
        nibble_mask(rem)
    }
}

fn map2_word(lut: &[u8; 256], a: u64, b: u64, n: usize) -> u64 {
    let mut out = 0u64;
    for i in 0..n.min(PER_WORD) {
        let x = ((a >> (4 * i)) & 0xF) as usize;
        let y = ((b >> (4 * i)) & 0xF) as usize;
        out |= u64::from(lut[(x << 4) | y]) << (4 * i);
    }
    out
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Up to sixteen elements packed into one word — no heap allocation.
    Inline(u64),
    /// Wider values: `ceil(width / 16)` words.
    Heap(Box<[u64]>),
}

/// A `std_logic` scalar or vector in packed form.
///
/// Element `0` is the *leftmost* element (exactly like the reference
/// [`Value`]); element `i` occupies nibble `i % 16` (low to high) of word
/// `i / 16`.  Unused high nibbles are always zero, so derived equality and
/// hashing are canonical.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PackedValue {
    width: u32,
    repr: Repr,
}

impl PackedValue {
    /// A value of `width` elements, all set to `fill`.
    pub fn filled(width: usize, fill: Logic) -> PackedValue {
        let broadcast = 0x1111_1111_1111_1111u64 * u64::from(fill.code());
        if width <= PER_WORD {
            PackedValue {
                width: width as u32,
                repr: Repr::Inline(broadcast & nibble_mask(width)),
            }
        } else {
            let mut words = vec![broadcast; word_count(width)].into_boxed_slice();
            *words.last_mut().expect("width > 0") &= last_word_mask(width);
            PackedValue {
                width: width as u32,
                repr: Repr::Heap(words),
            }
        }
    }

    /// The packed form of a reference [`Value`].
    pub fn from_value(v: &Value) -> PackedValue {
        match v {
            Value::Logic(l) => PackedValue {
                width: 1,
                repr: Repr::Inline(u64::from(l.code())),
            },
            Value::Vector(bits) => {
                let mut out = PackedValue::filled(bits.len(), Logic::U);
                for (i, b) in bits.iter().enumerate() {
                    out.set(i, b.code());
                }
                out
            }
        }
    }

    /// The reference [`Value`] form (scalar for width 1, vector otherwise).
    pub fn to_value(&self) -> Value {
        if self.width == 1 {
            Value::Logic(Logic::from_code(self.get(0)))
        } else {
            Value::Vector(
                (0..self.width())
                    .map(|i| Logic::from_code(self.get(i)))
                    .collect(),
            )
        }
    }

    /// Mirrors [`Value::from_unsigned`]: the leftmost element is the most
    /// significant bit.
    pub fn from_unsigned(n: u128, width: usize) -> PackedValue {
        let mut out = PackedValue::filled(width, Logic::Zero);
        for j in 0..width {
            let bit_index = width - 1 - j;
            let bit = if bit_index < 128 {
                (n >> bit_index) & 1 == 1
            } else {
                false
            };
            if bit {
                out.set(j, C_1);
            }
        }
        out
    }

    /// Number of elements.
    pub fn width(&self) -> usize {
        self.width as usize
    }

    fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => std::slice::from_ref(w),
            Repr::Heap(ws) => ws,
        }
    }

    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Inline(w) => std::slice::from_mut(w),
            Repr::Heap(ws) => ws,
        }
    }

    /// The 4-bit code of element `i` (0 = leftmost).
    pub fn get(&self, i: usize) -> u8 {
        debug_assert!(i < self.width());
        ((self.words()[i / PER_WORD] >> (4 * (i % PER_WORD))) & 0xF) as u8
    }

    /// Overwrites element `i` with `code`.
    pub fn set(&mut self, i: usize, code: u8) {
        debug_assert!(i < self.width());
        let word = &mut self.words_mut()[i / PER_WORD];
        let shift = 4 * (i % PER_WORD);
        *word = (*word & !(0xFu64 << shift)) | (u64::from(code) << shift);
    }

    /// Copies `other` into `self` without reallocating when the widths match.
    pub fn copy_from(&mut self, other: &PackedValue) {
        if self.width == other.width {
            match (&mut self.repr, &other.repr) {
                (Repr::Inline(a), Repr::Inline(b)) => *a = *b,
                (Repr::Heap(a), Repr::Heap(b)) => a.copy_from_slice(b),
                _ => self.repr = other.repr.clone(),
            }
        } else {
            *self = other.clone();
        }
    }

    /// Mirrors [`Value::to_unsigned`]: `Some` iff every element is a defined
    /// zero or one (weak levels count as defined).
    pub fn to_unsigned(&self) -> Option<u128> {
        let mut acc: u128 = 0;
        for i in 0..self.width() {
            let c = self.get(i);
            if c & 2 == 0 {
                return None;
            }
            acc = (acc << 1) | u128::from(c & 1);
        }
        Some(acc)
    }

    /// Mirrors [`Value::to_bool`]: the boolean of a width-1 value.
    pub fn to_bool(&self) -> Option<bool> {
        if self.width != 1 {
            return None;
        }
        match self.get(0) {
            3 | 7 => Some(true),
            2 | 6 => Some(false),
            _ => None,
        }
    }

    /// Mirrors [`Value::resized`]: truncates or zero-extends on the left
    /// (most significant side); an empty result becomes a single `'0'`.
    pub fn resized(&self, width: usize) -> PackedValue {
        if width == self.width() && width > 0 {
            return self.clone();
        }
        let out_w = width.max(1);
        let mut out = PackedValue::filled(out_w, Logic::Zero);
        if width > 0 {
            let cur = self.width();
            if cur >= width {
                let drop = cur - width;
                for j in 0..width {
                    out.set(j, self.get(j + drop));
                }
            } else {
                let pad = width - cur;
                for j in 0..cur {
                    out.set(pad + j, self.get(j));
                }
            }
        }
        out
    }

    /// Mirrors [`Value::resolve_with`]: element-wise IEEE 1164 resolution;
    /// width mismatches degrade to all-`'X'` of the larger width.
    pub fn resolve_with(&self, other: &PackedValue) -> PackedValue {
        let mut out = self.clone();
        out.resolve_assign(other);
        out
    }

    /// In-place [`PackedValue::resolve_with`] (the resolution fold of the
    /// synchronisation step).
    pub fn resolve_assign(&mut self, other: &PackedValue) {
        if self.width != other.width {
            *self = PackedValue::filled(self.width().max(other.width()), Logic::X);
            return;
        }
        let mut remaining = self.width();
        let o = other.words();
        for (i, w) in self.words_mut().iter_mut().enumerate() {
            *w = map2_word(&RESOLVE_LUT, *w, o[i], remaining);
            remaining = remaining.saturating_sub(PER_WORD);
        }
    }

    /// Element-wise IEEE 1164 `not` (mirrors the reference unary operator).
    pub fn not(&self) -> PackedValue {
        let mut out = self.clone();
        let mut remaining = out.width();
        for w in out.words_mut() {
            let mut nw = 0u64;
            for i in 0..remaining.min(PER_WORD) {
                let c = ((*w >> (4 * i)) & 0xF) as usize;
                nw |= u64::from(NOT_LUT[c]) << (4 * i);
            }
            *w = nw;
            remaining = remaining.saturating_sub(PER_WORD);
        }
        out
    }

    /// Extracts `len` elements starting at element offset `start`, walking
    /// right (`descending: false`) or left (`descending: true`).
    pub fn extract_slice(&self, start: usize, len: usize, descending: bool) -> PackedValue {
        let mut out = PackedValue::filled(len, Logic::U);
        for j in 0..len {
            let src = if descending { start - j } else { start + j };
            out.set(j, self.get(src));
        }
        out
    }

    /// Overwrites the sliced positions with `src` (resized to the slice
    /// width), mirroring [`crate::eval::update_slice`].
    pub fn write_slice(&mut self, start: usize, len: usize, descending: bool, src: &PackedValue) {
        let resized = src.resized(len);
        for j in 0..len {
            let dst = if descending { start - j } else { start + j };
            self.set(dst, resized.get(j));
        }
    }

    /// Applies a binary gate operator element-wise over equal widths
    /// (callers resize first), using the packed lookup tables.
    fn gate(&self, other: &PackedValue, lut: &[u8; 256]) -> PackedValue {
        debug_assert_eq!(self.width, other.width);
        let mut out = self.clone();
        let mut remaining = out.width();
        let o = other.words();
        for (i, w) in out.words_mut().iter_mut().enumerate() {
            *w = map2_word(lut, *w, o[i], remaining);
            remaining = remaining.saturating_sub(PER_WORD);
        }
        out
    }

    /// Concatenation: the elements of `self` followed by those of `other`.
    pub fn concat(&self, other: &PackedValue) -> PackedValue {
        let (wa, wb) = (self.width(), other.width());
        let mut out = PackedValue::filled(wa + wb, Logic::U);
        for i in 0..wa {
            out.set(i, self.get(i));
        }
        for i in 0..wb {
            out.set(wa + i, other.get(i));
        }
        out
    }
}

impl fmt::Debug for PackedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackedValue(\"")?;
        for i in 0..self.width() {
            write!(f, "{}", Logic::from_code(self.get(i)).to_char())?;
        }
        write!(f, "\")")
    }
}

/// Applies a binary operator with exactly the semantics of
/// [`crate::eval::apply_binary`], over packed operands.
pub fn apply_binary_packed(
    op: vhdl1_syntax::BinOp,
    a: &PackedValue,
    b: &PackedValue,
) -> PackedValue {
    use vhdl1_syntax::BinOp;
    match op {
        BinOp::Concat => a.concat(b),
        BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Nand | BinOp::Nor | BinOp::Xnor => {
            let width = a.width().max(b.width());
            let (ra, rb) = (a.resized(width), b.resized(width));
            let lut = match op {
                BinOp::And => &AND_LUT,
                BinOp::Or => &OR_LUT,
                BinOp::Xor => &XOR_LUT,
                BinOp::Nand => &NAND_LUT,
                BinOp::Nor => &NOR_LUT,
                BinOp::Xnor => &XNOR_LUT,
                _ => unreachable!(),
            };
            ra.gate(&rb, lut)
        }
        BinOp::Eq | BinOp::Neq => {
            let width = a.width().max(b.width());
            let (ra, rb) = (a.resized(width), b.resized(width));
            let mut result = Some(true);
            for i in 0..width {
                let (x, y) = (ra.get(i), rb.get(i));
                if x & 2 == 0 || y & 2 == 0 {
                    result = None;
                    break;
                }
                if x & 1 != y & 1 {
                    result = Some(false);
                    break;
                }
            }
            let code = match result {
                Some(eq) => {
                    let truth = if op == BinOp::Eq { eq } else { !eq };
                    if truth {
                        C_1
                    } else {
                        C_0
                    }
                }
                None => C_X,
            };
            PackedValue {
                width: 1,
                repr: Repr::Inline(u64::from(code)),
            }
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let code = match (a.to_unsigned(), b.to_unsigned()) {
                (Some(x), Some(y)) => {
                    let truth = match op {
                        BinOp::Lt => x < y,
                        BinOp::Le => x <= y,
                        BinOp::Gt => x > y,
                        BinOp::Ge => x >= y,
                        _ => unreachable!(),
                    };
                    if truth {
                        C_1
                    } else {
                        C_0
                    }
                }
                _ => C_X,
            };
            PackedValue {
                width: 1,
                repr: Repr::Inline(u64::from(code)),
            }
        }
        BinOp::Add | BinOp::Sub => {
            let width = a.width().max(b.width());
            match (a.to_unsigned(), b.to_unsigned()) {
                (Some(x), Some(y)) => {
                    let mask: u128 = if width >= 128 {
                        u128::MAX
                    } else {
                        (1u128 << width) - 1
                    };
                    let result = if op == BinOp::Add {
                        x.wrapping_add(y) & mask
                    } else {
                        x.wrapping_sub(y) & mask
                    };
                    PackedValue::from_unsigned(result, width)
                }
                _ => PackedValue::filled(width, Logic::X),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::apply_binary;
    use vhdl1_syntax::BinOp;

    #[test]
    fn code_tables_match_the_reference_logic_methods() {
        for a in Logic::ALL {
            for b in Logic::ALL {
                let (ca, cb) = (a.code(), b.code());
                assert_eq!(resolve_code(ca, cb), a.resolve(b).code(), "{a} resolve {b}");
                assert_eq!(and_code(ca, cb), a.and(b).code(), "{a} and {b}");
                assert_eq!(or_code(ca, cb), a.or(b).code(), "{a} or {b}");
                assert_eq!(xor_code(ca, cb), a.xor(b).code(), "{a} xor {b}");
                assert_eq!(nand_code(ca, cb), a.and(b).not().code());
                assert_eq!(nor_code(ca, cb), a.or(b).not().code());
                assert_eq!(xnor_code(ca, cb), a.xor(b).not().code());
            }
            assert_eq!(not_code(a.code()), a.not().code(), "not {a}");
            assert_eq!(x01(a.code()), a.to_x01().code(), "x01 {a}");
        }
    }

    /// A deterministic spread of values covering scalars, inline vectors,
    /// word boundaries and multi-word heap vectors with all nine codes.
    fn samples() -> Vec<Value> {
        let mut out = vec![
            Value::Logic(Logic::U),
            Value::Logic(Logic::One),
            Value::Logic(Logic::Z),
            Value::vector("01").unwrap(),
            Value::vector("UX01ZWLH-").unwrap(),
            Value::vector("0101101001011010").unwrap(), // exactly one word
            Value::vector("10101010101010101").unwrap(), // one past the word
        ];
        // A 130-element vector cycling through all nine codes.
        let long: String = (0..130)
            .map(|i| Logic::ALL[i % 9].to_char())
            .collect::<String>();
        out.push(Value::vector(&long).unwrap());
        // Pseudo-random defined vectors of assorted widths.
        let mut state = 0x9e3779b97f4a7c15u64;
        for width in [3usize, 8, 15, 16, 17, 64] {
            let s: String = (0..width)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if state >> 63 == 1 {
                        '1'
                    } else {
                        '0'
                    }
                })
                .collect();
            out.push(Value::vector(&s).unwrap());
        }
        out
    }

    #[test]
    fn value_roundtrip_is_exact() {
        for v in samples() {
            let p = PackedValue::from_value(&v);
            assert_eq!(p.to_value(), v, "{v}");
            assert_eq!(p.width(), v.width());
            assert_eq!(p.to_unsigned(), v.to_unsigned(), "{v}");
            assert_eq!(p.to_bool(), v.to_bool(), "{v}");
        }
    }

    #[test]
    fn resized_matches_reference() {
        for v in samples() {
            for w in [1usize, 2, 7, 8, 16, 17, 31, 130] {
                let p = PackedValue::from_value(&v).resized(w);
                assert_eq!(p.to_value(), v.resized(w), "{v} resized {w}");
            }
        }
    }

    #[test]
    fn from_unsigned_matches_reference() {
        for n in [0u128, 1, 5, 0xFF, 0xDEAD_BEEF, u128::MAX] {
            for w in [1usize, 4, 8, 16, 17, 64, 128] {
                assert_eq!(
                    PackedValue::from_unsigned(n, w).to_value(),
                    Value::from_unsigned(n, w)
                );
            }
        }
    }

    #[test]
    fn binary_operators_match_reference_semantics() {
        let ops = [
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Nand,
            BinOp::Nor,
            BinOp::Xnor,
            BinOp::Eq,
            BinOp::Neq,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::Add,
            BinOp::Sub,
            BinOp::Concat,
        ];
        let vs = samples();
        for a in &vs {
            for b in &vs {
                let (pa, pb) = (PackedValue::from_value(a), PackedValue::from_value(b));
                for op in ops {
                    let reference = apply_binary(op, a, b);
                    let packed = apply_binary_packed(op, &pa, &pb);
                    assert_eq!(packed.to_value(), reference, "{a} {op} {b}");
                }
            }
        }
    }

    #[test]
    fn not_and_resolution_match_reference() {
        let vs = samples();
        for a in &vs {
            let pa = PackedValue::from_value(a);
            let reference = Value::from_bits(a.bits().into_iter().map(Logic::not).collect());
            assert_eq!(pa.not().to_value(), reference, "not {a}");
            for b in &vs {
                let pb = PackedValue::from_value(b);
                assert_eq!(
                    pa.resolve_with(&pb).to_value(),
                    a.resolve_with(b),
                    "{a} resolve {b}"
                );
            }
        }
    }

    #[test]
    fn slices_extract_and_write() {
        let v = PackedValue::from_value(&Value::vector("11010010").unwrap());
        // Ascending extraction of elements 2..6.
        assert_eq!(
            v.extract_slice(2, 4, false).to_value(),
            Value::vector("0100").unwrap()
        );
        // Descending extraction of elements 5..2.
        assert_eq!(
            v.extract_slice(5, 4, true).to_value(),
            Value::vector("0010").unwrap()
        );
        let mut w = PackedValue::filled(8, Logic::Zero);
        w.write_slice(
            1,
            3,
            false,
            &PackedValue::from_value(&Value::vector("111").unwrap()),
        );
        assert_eq!(w.to_value(), Value::vector("01110000").unwrap());
        let mut w = PackedValue::filled(8, Logic::Zero);
        w.write_slice(
            6,
            3,
            true,
            &PackedValue::from_value(&Value::vector("111").unwrap()),
        );
        assert_eq!(w.to_value(), Value::vector("00001110").unwrap());
    }

    #[test]
    fn inline_and_heap_representations_are_canonical() {
        // Same content must compare equal regardless of construction route.
        let a = PackedValue::from_value(&Value::vector("0101").unwrap());
        let mut b = PackedValue::filled(4, Logic::Zero);
        b.set(1, C_1);
        b.set(3, C_1);
        assert_eq!(a, b);
        // Gate results keep padding nibbles zeroed (Eq/Hash canonical).
        let x = PackedValue::from_value(&Value::vector("10101").unwrap());
        let y = apply_binary_packed(BinOp::Xor, &x, &x);
        assert_eq!(y, PackedValue::filled(5, Logic::Zero));
        let mut copy = PackedValue::filled(5, Logic::X);
        copy.copy_from(&y);
        assert_eq!(copy, y);
    }
}
