//! Evaluation of VHDL1 expressions (Table 1).
//!
//! Expressions are evaluated against an environment providing the current
//! value and the declared type of every visible name; the declared type is
//! needed to translate slice indices into element offsets, since vectors are
//! stored in declaration order.

use crate::error::SimError;
use crate::values::{Logic, Value};
use vhdl1_syntax::{BinOp, Expr, RangeDir, Slice, Span, Type, UnOp};

/// The lookup environment of the evaluator.
pub trait NameEnv {
    /// Current value of a visible name.
    fn value_of(&self, name: &str) -> Option<Value>;
    /// Declared type of a visible name.
    fn type_of(&self, name: &str) -> Option<Type>;
}

/// Translates a slice of a declared type into element offsets (in the order
/// written in the slice).
///
/// # Errors
///
/// Returns [`SimError::InvalidSlice`] if the slice leaves the declared range.
pub fn slice_offsets(name: &str, ty: &Type, slice: &Slice) -> Result<Vec<usize>, SimError> {
    let offset = |index: i64| -> Result<usize, SimError> {
        let off = match ty {
            Type::StdLogic => {
                if index == 0 {
                    0
                } else {
                    return Err(SimError::InvalidSlice {
                        name: name.to_string(),
                        span: Span::NONE,
                    });
                }
            }
            Type::StdLogicVector {
                dir: RangeDir::Downto,
                left,
                right,
            } => {
                if index > *left || index < *right {
                    return Err(SimError::InvalidSlice {
                        name: name.to_string(),
                        span: Span::NONE,
                    });
                }
                (left - index) as usize
            }
            Type::StdLogicVector {
                dir: RangeDir::To,
                left,
                right,
            } => {
                if index < *left || index > *right {
                    return Err(SimError::InvalidSlice {
                        name: name.to_string(),
                        span: Span::NONE,
                    });
                }
                (index - left) as usize
            }
        };
        Ok(off)
    };
    let mut out = Vec::with_capacity(slice.width());
    let indices: Vec<i64> = match slice.dir {
        RangeDir::Downto => (slice.right..=slice.left).rev().collect(),
        RangeDir::To => (slice.left..=slice.right).collect(),
    };
    for i in indices {
        out.push(offset(i)?);
    }
    Ok(out)
}

/// Extracts the slice of a value according to the declared type of its name.
pub fn slice_value(name: &str, value: &Value, ty: &Type, slice: &Slice) -> Result<Value, SimError> {
    let offsets = slice_offsets(name, ty, slice)?;
    let bits = value.bits();
    let mut out = Vec::with_capacity(offsets.len());
    for off in offsets {
        out.push(*bits.get(off).ok_or_else(|| SimError::InvalidSlice {
            name: name.to_string(),
            span: Span::NONE,
        })?);
    }
    Ok(Value::from_bits(out))
}

/// Returns `value` with the sliced positions overwritten by `new` (resized to
/// the slice width).
pub fn update_slice(
    name: &str,
    value: &Value,
    ty: &Type,
    slice: &Slice,
    new: &Value,
) -> Result<Value, SimError> {
    let offsets = slice_offsets(name, ty, slice)?;
    let mut bits = value.bits();
    let new_bits = new.resized(offsets.len()).bits();
    for (off, nb) in offsets.into_iter().zip(new_bits) {
        if off >= bits.len() {
            return Err(SimError::InvalidSlice {
                name: name.to_string(),
                span: Span::NONE,
            });
        }
        bits[off] = nb;
    }
    Ok(Value::from_bits(bits))
}

/// Evaluates an expression in the given environment.
///
/// # Errors
///
/// Returns [`SimError::UndefinedName`] for unknown names and
/// [`SimError::InvalidSlice`] for out-of-range slices.
pub fn eval(expr: &Expr, env: &dyn NameEnv) -> Result<Value, SimError> {
    match expr {
        Expr::Logic(c) => Value::logic(*c).ok_or_else(|| SimError::UndefinedName {
            name: c.to_string(),
            span: Span::NONE,
        }),
        Expr::Vector(s) => Value::vector(s).ok_or_else(|| SimError::UndefinedName {
            name: s.clone(),
            span: Span::NONE,
        }),
        Expr::Int(n) => Ok(Value::from_unsigned(*n as u128, 64)),
        Expr::Name { name, slice, span } => {
            let value = env.value_of(name).ok_or_else(|| SimError::UndefinedName {
                name: name.clone(),
                span: *span,
            })?;
            match slice {
                None => Ok(value),
                Some(sl) => {
                    let ty = env.type_of(name).ok_or_else(|| SimError::UndefinedName {
                        name: name.clone(),
                        span: *span,
                    })?;
                    slice_value(name, &value, &ty, sl).map_err(|e| e.with_span(*span))
                }
            }
        }
        Expr::Unary {
            op: UnOp::Not,
            expr,
        } => {
            let v = eval(expr, env)?;
            Ok(Value::from_bits(
                v.bits().into_iter().map(Logic::not).collect(),
            ))
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = eval(lhs, env)?;
            let b = eval(rhs, env)?;
            Ok(apply_binary(*op, &a, &b))
        }
    }
}

/// Applies a binary operator to two values.
pub fn apply_binary(op: BinOp, a: &Value, b: &Value) -> Value {
    match op {
        BinOp::Concat => {
            let mut bits = a.bits();
            bits.extend(b.bits());
            Value::from_bits(bits)
        }
        BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Nand | BinOp::Nor | BinOp::Xnor => {
            let width = a.width().max(b.width());
            let (a, b) = (a.resized(width), b.resized(width));
            let bits = a
                .bits()
                .into_iter()
                .zip(b.bits())
                .map(|(x, y)| match op {
                    BinOp::And => x.and(y),
                    BinOp::Or => x.or(y),
                    BinOp::Xor => x.xor(y),
                    BinOp::Nand => x.and(y).not(),
                    BinOp::Nor => x.or(y).not(),
                    BinOp::Xnor => x.xor(y).not(),
                    _ => unreachable!(),
                })
                .collect();
            Value::from_bits(bits)
        }
        BinOp::Eq | BinOp::Neq => {
            let width = a.width().max(b.width());
            let (a, b) = (a.resized(width), b.resized(width));
            let mut result = Some(true);
            for (x, y) in a.bits().into_iter().zip(b.bits()) {
                match (x.to_bool(), y.to_bool()) {
                    (Some(p), Some(q)) => {
                        if p != q {
                            result = Some(false);
                            break;
                        }
                    }
                    _ => {
                        result = None;
                        break;
                    }
                }
            }
            match result {
                Some(eq) => {
                    let truth = if op == BinOp::Eq { eq } else { !eq };
                    Value::Logic(Logic::from_bool(truth))
                }
                None => Value::Logic(Logic::X),
            }
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match (a.to_unsigned(), b.to_unsigned()) {
            (Some(x), Some(y)) => {
                let truth = match op {
                    BinOp::Lt => x < y,
                    BinOp::Le => x <= y,
                    BinOp::Gt => x > y,
                    BinOp::Ge => x >= y,
                    _ => unreachable!(),
                };
                Value::Logic(Logic::from_bool(truth))
            }
            _ => Value::Logic(Logic::X),
        },
        BinOp::Add | BinOp::Sub => {
            let width = a.width().max(b.width());
            match (a.to_unsigned(), b.to_unsigned()) {
                (Some(x), Some(y)) => {
                    let mask: u128 = if width >= 128 {
                        u128::MAX
                    } else {
                        (1u128 << width) - 1
                    };
                    let result = if op == BinOp::Add {
                        x.wrapping_add(y) & mask
                    } else {
                        x.wrapping_sub(y) & mask
                    };
                    Value::from_unsigned(result, width)
                }
                _ => Value::filled(width, Logic::X),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vhdl1_syntax::parse_expression;

    struct MapEnv {
        values: BTreeMap<String, Value>,
        types: BTreeMap<String, Type>,
    }

    impl NameEnv for MapEnv {
        fn value_of(&self, name: &str) -> Option<Value> {
            self.values.get(name).cloned()
        }
        fn type_of(&self, name: &str) -> Option<Type> {
            self.types.get(name).cloned()
        }
    }

    fn env() -> MapEnv {
        let mut values = BTreeMap::new();
        let mut types = BTreeMap::new();
        values.insert("a".to_string(), Value::logic('1').unwrap());
        types.insert("a".to_string(), Type::StdLogic);
        values.insert("b".to_string(), Value::logic('0').unwrap());
        types.insert("b".to_string(), Type::StdLogic);
        values.insert("v".to_string(), Value::vector("11010010").unwrap());
        types.insert("v".to_string(), Type::vector_downto(7, 0));
        values.insert("w".to_string(), Value::vector("0011").unwrap());
        types.insert("w".to_string(), Type::vector_to(0, 3));
        MapEnv { values, types }
    }

    fn run(src: &str) -> Value {
        eval(&parse_expression(src).unwrap(), &env()).unwrap()
    }

    #[test]
    fn literals_and_names() {
        assert_eq!(run("'1'"), Value::logic('1').unwrap());
        assert_eq!(run("\"0101\""), Value::vector("0101").unwrap());
        assert_eq!(run("a"), Value::logic('1').unwrap());
        assert_eq!(run("7"), Value::from_unsigned(7, 64));
    }

    #[test]
    fn logical_operations() {
        assert_eq!(run("a and b"), Value::logic('0').unwrap());
        assert_eq!(run("a or b"), Value::logic('1').unwrap());
        assert_eq!(run("a xor a"), Value::logic('0').unwrap());
        assert_eq!(run("not b"), Value::logic('1').unwrap());
        assert_eq!(run("a nand a"), Value::logic('0').unwrap());
    }

    #[test]
    fn downto_slicing() {
        // v = "11010010" declared (7 downto 0): index 7 is the leftmost bit.
        assert_eq!(run("v(7 downto 4)"), Value::vector("1101").unwrap());
        assert_eq!(run("v(3 downto 0)"), Value::vector("0010").unwrap());
        assert_eq!(run("v(0 downto 0)"), Value::logic('0').unwrap());
    }

    #[test]
    fn to_slicing() {
        // w = "0011" declared (0 to 3): index 0 is the leftmost bit.
        assert_eq!(run("w(0 to 1)"), Value::vector("00").unwrap());
        assert_eq!(run("w(2 to 3)"), Value::vector("11").unwrap());
    }

    #[test]
    fn out_of_range_slice_errors() {
        let e = eval(&parse_expression("v(9 downto 8)").unwrap(), &env());
        assert_eq!(
            e,
            Err(SimError::InvalidSlice {
                name: "v".into(),
                span: Span::NONE,
            })
        );
    }

    #[test]
    fn undefined_name_errors() {
        let e = eval(&parse_expression("ghost").unwrap(), &env());
        assert_eq!(
            e,
            Err(SimError::UndefinedName {
                name: "ghost".into(),
                span: Span::NONE,
            })
        );
    }

    #[test]
    fn relational_operations() {
        assert_eq!(run("v = v"), Value::logic('1').unwrap());
        assert_eq!(run("v /= v"), Value::logic('0').unwrap());
        assert_eq!(run("a = '1'"), Value::logic('1').unwrap());
        // v = 0xD2 = 210
        assert_eq!(run("v > 100"), Value::logic('1').unwrap());
        assert_eq!(run("v < 100"), Value::logic('0').unwrap());
        assert_eq!(run("v >= 210"), Value::logic('1').unwrap());
        assert_eq!(run("v <= 209"), Value::logic('0').unwrap());
    }

    #[test]
    fn comparisons_with_undefined_bits_yield_x() {
        let mut e = env();
        e.values
            .insert("u".to_string(), Value::vector("0X").unwrap());
        e.types.insert("u".to_string(), Type::vector_downto(1, 0));
        let v = eval(&parse_expression("u = \"00\"").unwrap(), &e).unwrap();
        assert_eq!(v, Value::Logic(Logic::X));
        let v = eval(&parse_expression("u < \"10\"").unwrap(), &e).unwrap();
        assert_eq!(v, Value::Logic(Logic::X));
    }

    #[test]
    fn arithmetic_is_modular_in_width() {
        assert_eq!(run("\"1111\" + \"0001\""), Value::vector("0000").unwrap());
        assert_eq!(run("\"0000\" - \"0001\""), Value::vector("1111").unwrap());
        assert_eq!(run("\"0101\" + 1"), Value::from_unsigned(6, 64));
    }

    #[test]
    fn concatenation() {
        assert_eq!(run("a & b"), Value::vector("10").unwrap());
        assert_eq!(
            run("v(7 downto 4) & \"0000\""),
            Value::vector("11010000").unwrap()
        );
    }

    #[test]
    fn update_slice_overwrites_selected_range() {
        let ty = Type::vector_downto(7, 0);
        let v = Value::vector("00000000").unwrap();
        let updated = update_slice(
            "v",
            &v,
            &ty,
            &Slice::downto(7, 4),
            &Value::vector("1010").unwrap(),
        )
        .unwrap();
        assert_eq!(updated.to_literal(), "10100000");
        let ty_to = Type::vector_to(0, 3);
        let w = Value::vector("0000").unwrap();
        let updated = update_slice(
            "w",
            &w,
            &ty_to,
            &Slice::to(1, 2),
            &Value::vector("11").unwrap(),
        )
        .unwrap();
        assert_eq!(updated.to_literal(), "0110");
    }
}
