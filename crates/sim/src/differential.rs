//! Differential tests: the dense core against the `simref` oracle.
//!
//! Every design is executed by both simulators under identical input
//! schedules; quiescent signal states, process variable states and delta
//! counts must agree exactly.  Inputs cover defined bit patterns and the
//! exotic levels (`Z`, `W`, `L`, `H`, `X`, `-`) so the packed resolution
//! and gate tables are exercised end to end.

use crate::simref::RefSimulator;
use crate::simulator::Simulator;
use crate::values::Value;
use vhdl1_corpus::{generate, CorpusSpec, Rng};
use vhdl1_syntax::{frontend, Design};

/// Runs both simulators through `rounds` drive/settle cycles and asserts
/// equal observable state after every settle.
fn assert_differential(design: &Design, label: &str, seed: u64, rounds: usize) {
    let mut dense = Simulator::new(design)
        .unwrap_or_else(|e| panic!("{label}: dense simulator construction failed: {e}"));
    let mut oracle = RefSimulator::new(design)
        .unwrap_or_else(|e| panic!("{label}: oracle construction failed: {e}"));
    let mut rng = Rng::new(seed);

    assert_states_equal(design, &dense, &oracle, label, "initial");
    for round in 0..=rounds {
        let dense_deltas = dense
            .run_until_quiescent(10_000)
            .unwrap_or_else(|e| panic!("{label} round {round}: dense error: {e}"));
        let oracle_deltas = oracle
            .run_until_quiescent(10_000)
            .unwrap_or_else(|e| panic!("{label} round {round}: oracle error: {e}"));
        assert_eq!(
            dense_deltas, oracle_deltas,
            "{label} round {round}: delta counts diverge"
        );
        assert_states_equal(design, &dense, &oracle, label, "settled");
        if round == rounds {
            break;
        }
        for input in design.input_signals() {
            let width = design.signal(&input).expect("input exists").ty.width();
            let value = random_value(&mut rng, width);
            dense.drive_input(&input, value.clone()).unwrap();
            oracle.drive_input(&input, value).unwrap();
        }
    }
    assert_eq!(dense.delta_count(), oracle.delta_count(), "{label}");
}

/// A random value of the given width: mostly defined bits, sometimes the
/// full nine-valued alphabet.
fn random_value(rng: &mut Rng, width: usize) -> Value {
    let exotic = rng.chance(1, 4);
    let alphabet: &[char] = if exotic {
        &['0', '1', 'X', 'Z', 'W', 'L', 'H', 'U', '-']
    } else {
        &['0', '1']
    };
    let s: String = (0..width).map(|_| *rng.pick(alphabet)).collect();
    Value::vector(&s).expect("alphabet is valid")
}

fn assert_states_equal(
    design: &Design,
    dense: &Simulator,
    oracle: &RefSimulator,
    label: &str,
    phase: &str,
) {
    for sig in &design.signals {
        assert_eq!(
            dense.signal(&sig.name),
            oracle.signal(&sig.name).cloned(),
            "{label} ({phase}): signal `{}` diverges",
            sig.name
        );
    }
    for proc in &design.processes {
        for var in &proc.variables {
            assert_eq!(
                dense.variable(&proc.name, &var.name),
                oracle.variable(&proc.name, &var.name).cloned(),
                "{label} ({phase}): variable `{}`.`{}` diverges",
                proc.name,
                var.name
            );
        }
    }
}

#[test]
fn dense_matches_oracle_on_seeded_corpus_designs() {
    for seed in [7u64, 11, 42] {
        for d in generate(&CorpusSpec::new(seed, 12)) {
            let design = frontend(&d.source)
                .unwrap_or_else(|e| panic!("corpus design {} parses: {e}", d.name));
            assert_differential(&design, &d.name, seed ^ 0xd1f7, 3);
        }
    }
}

/// A small random-program generator: well-formed single- and multi-process
/// designs over assorted widths with assignments, slices, conditionals and
/// the full operator set.  Bounded by construction (no loops, waits on
/// input ports only), so every design quiesces.
fn random_design_source(rng: &mut Rng) -> String {
    use std::fmt::Write as _;
    let widths = [1usize, 4, 8, 17];
    let n_in = rng.range(2, 4) as usize;
    let n_out = rng.range(1, 3) as usize;
    let n_int = rng.below(3) as usize;

    let ty = |w: usize| {
        if w == 1 {
            "std_logic".to_string()
        } else {
            format!("std_logic_vector({} downto 0)", w - 1)
        }
    };
    let mut ins: Vec<(String, usize)> = Vec::new();
    let mut outs: Vec<(String, usize)> = Vec::new();
    let mut ints: Vec<(String, usize)> = Vec::new();
    for i in 0..n_in {
        ins.push((format!("i{i}"), *rng.pick(&widths)));
    }
    for i in 0..n_out {
        outs.push((format!("o{i}"), *rng.pick(&widths)));
    }
    for i in 0..n_int {
        ints.push((format!("s{i}"), *rng.pick(&widths)));
    }

    let mut src = String::new();
    let ports: Vec<String> = ins
        .iter()
        .map(|(n, w)| format!("{n} : in {}", ty(*w)))
        .chain(outs.iter().map(|(n, w)| format!("{n} : out {}", ty(*w))))
        .collect();
    let _ = writeln!(src, "entity e is port({}); end e;", ports.join("; "));
    let _ = writeln!(src, "architecture rtl of e is");
    for (n, w) in &ints {
        let _ = writeln!(src, "  signal {n} : {};", ty(*w));
    }
    let _ = writeln!(src, "begin");

    let n_procs = rng.range(1, 3) as usize;
    // Every process may drive any output or internal signal, so multi-driver
    // resolution conflicts arise naturally across processes.
    let mut drivable: Vec<(String, usize)> = outs.iter().chain(ints.iter()).cloned().collect();
    for p in 0..n_procs {
        let n_vars = rng.below(3) as usize;
        let vars: Vec<(String, usize)> = (0..n_vars)
            .map(|i| (format!("v{p}_{i}"), *rng.pick(&widths)))
            .collect();
        let _ = writeln!(src, "  p{p} : process");
        for (n, w) in &vars {
            let init = if rng.chance(1, 2) {
                format!(" := \"{}\"", "0".repeat(*w))
            } else {
                String::new()
            };
            let _ = writeln!(src, "    variable {n} : {}{init};", ty(*w));
        }
        let _ = writeln!(src, "  begin");
        // Readable names: inputs, internal signals, own variables.
        let mut readable: Vec<(String, usize)> = ins.iter().chain(ints.iter()).cloned().collect();
        readable.extend(vars.iter().cloned());
        let n_stmts = rng.range(2, 6) as usize;
        for _ in 0..n_stmts {
            random_stmt(rng, &mut src, "    ", &readable, &vars, &mut drivable, 0);
        }
        let wait_on: Vec<String> = ins.iter().map(|(n, _)| n.clone()).collect();
        let _ = writeln!(src, "    wait on {};", wait_on.join(", "));
        let _ = writeln!(src, "  end process p{p};");
    }
    let _ = writeln!(src, "end rtl;");
    src
}

fn random_stmt(
    rng: &mut Rng,
    src: &mut String,
    indent: &str,
    readable: &[(String, usize)],
    vars: &[(String, usize)],
    drivable: &mut Vec<(String, usize)>,
    depth: usize,
) {
    use std::fmt::Write as _;
    let choice = rng.below(if depth < 1 { 4 } else { 3 });
    match choice {
        // Variable assignment (possibly sliced).
        0 if !vars.is_empty() => {
            let (name, width) = rng.pick(vars).clone();
            if width > 1 && rng.chance(1, 3) {
                let hi = rng.below(width as u64) as usize;
                let lo = rng.below(hi as u64 + 1) as usize;
                let e = random_expr(rng, readable, hi - lo + 1, 0);
                let _ = writeln!(src, "{indent}{name}({hi} downto {lo}) := {e};");
            } else {
                let e = random_expr(rng, readable, width, 0);
                let _ = writeln!(src, "{indent}{name} := {e};");
            }
        }
        // Signal assignment (possibly sliced).
        1 if !drivable.is_empty() => {
            let (name, width) = rng.pick(drivable).clone();
            if width > 1 && rng.chance(1, 3) {
                let hi = rng.below(width as u64) as usize;
                let lo = rng.below(hi as u64 + 1) as usize;
                let e = random_expr(rng, readable, hi - lo + 1, 0);
                let _ = writeln!(src, "{indent}{name}({hi} downto {lo}) <= {e};");
            } else {
                let e = random_expr(rng, readable, width, 0);
                let _ = writeln!(src, "{indent}{name} <= {e};");
            }
        }
        // Conditional with nested statements.
        _ if depth < 1 => {
            let c = random_expr(rng, readable, 1, 0);
            let _ = writeln!(src, "{indent}if {c} = '1' then");
            random_stmt(
                rng,
                src,
                &format!("{indent}  "),
                readable,
                vars,
                drivable,
                depth + 1,
            );
            let _ = writeln!(src, "{indent}else");
            random_stmt(
                rng,
                src,
                &format!("{indent}  "),
                readable,
                vars,
                drivable,
                depth + 1,
            );
            let _ = writeln!(src, "{indent}end if;");
        }
        _ => {
            let _ = writeln!(src, "{indent}null;");
        }
    }
}

fn random_expr(
    rng: &mut Rng,
    readable: &[(String, usize)],
    want_width: usize,
    depth: usize,
) -> String {
    let leaf = depth >= 2 || rng.chance(1, 3);
    if leaf {
        if rng.chance(1, 3) || readable.is_empty() {
            // Literal of the wanted width.
            let s: String = (0..want_width).map(|_| *rng.pick(&['0', '1'])).collect();
            if want_width == 1 {
                format!("'{s}'")
            } else {
                format!("\"{s}\"")
            }
        } else {
            let (name, width) = rng.pick(readable).clone();
            if width > 1 && rng.chance(1, 3) {
                let hi = rng.below(width as u64) as usize;
                let lo = rng.below(hi as u64 + 1) as usize;
                format!("{name}({hi} downto {lo})")
            } else {
                name
            }
        }
    } else {
        let op = *rng.pick(&[
            "and", "or", "xor", "nand", "nor", "xnor", "+", "-", "&", "=", "/=", "<", "<=", ">",
            ">=",
        ]);
        let lhs = random_expr(rng, readable, want_width, depth + 1);
        let rhs = random_expr(rng, readable, want_width, depth + 1);
        format!("({lhs} {op} {rhs})")
    }
}

#[test]
fn dense_matches_oracle_on_random_small_processes() {
    let rng = Rng::new(0x5eed_2026);
    let mut accepted = 0usize;
    let mut attempts = 0usize;
    while accepted < 48 && attempts < 400 {
        attempts += 1;
        let gen_rng = &mut rng.derive(attempts as u64);
        let source = random_design_source(gen_rng);
        // The generator aims for well-formed designs; skip the rare reject
        // (e.g. a relational chain the grammar parenthesises differently).
        let Ok(design) = frontend(&source) else {
            continue;
        };
        accepted += 1;
        assert_differential(&design, &format!("random #{attempts}\n{source}"), 99, 4);
    }
    assert!(
        accepted >= 32,
        "generator must produce mostly valid designs ({accepted}/{attempts})"
    );
}

#[test]
fn dense_simulation_is_deterministic() {
    let d = &generate(&CorpusSpec::new(21, 4))[2];
    let design = frontend(&d.source).unwrap();
    let run = || {
        let mut sim = Simulator::new(&design).unwrap();
        sim.run_until_quiescent(10_000).unwrap();
        for (i, input) in design.input_signals().iter().enumerate() {
            sim.drive_input_unsigned(input, (i as u128).wrapping_mul(0x9e37) & 0xFF)
                .unwrap();
        }
        sim.run_until_quiescent(10_000).unwrap();
        let states: Vec<String> = design
            .signals
            .iter()
            .map(|s| format!("{}={}", s.name, sim.signal(&s.name).unwrap().to_literal()))
            .collect();
        (sim.delta_count(), states)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same design must replay byte-identically");
}

#[test]
fn null_slices_match_oracle() {
    // Null slices (written against the range direction) select nothing:
    // reads are empty values, writes are no-ops.  The parser accepts them,
    // so both engines must agree instead of crashing.
    let src = "entity e is port(a : in std_logic_vector(3 downto 0);
                                b : out std_logic_vector(3 downto 0)); end e;
         architecture rtl of e is begin
           p : process
             variable v : std_logic_vector(3 downto 0) := \"0000\";
           begin
             v(0 downto 1) := a(0 downto 1);
             b(0 downto 1) <= v(0 downto 1);
             b(3 downto 2) <= a(3 downto 2);
             wait on a;
           end process p;
         end rtl;";
    let design = frontend(src).unwrap();
    assert_differential(&design, "null_slice", 13, 3);
}

#[test]
fn multi_driver_resolution_matches_oracle() {
    // Two processes fighting over one signal with weak/strong levels.
    let src = "entity e is port(a : in std_logic; b : out std_logic_vector(3 downto 0)); end e;
         architecture rtl of e is
           signal t : std_logic_vector(3 downto 0);
         begin
           p1 : process begin t <= \"1Z0H\"; wait on a; end process p1;
           p2 : process begin t <= \"ZZLL\"; wait on a; end process p2;
           p3 : process begin b <= t; wait on t; end process p3;
         end rtl;";
    let design = frontend(src).unwrap();
    assert_differential(&design, "multi_driver", 5, 3);
}
