//! The reference simulator — the pre-dense tree-walking implementation,
//! preserved as a differential oracle.
//!
//! [`RefSimulator`] interprets the AST directly with string-keyed ordered
//! maps and reference [`Value`]s, exactly as the original implementation of
//! the Section 3.2 semantics did.  It is compiled for tests and behind the
//! `simref` feature, and exists so randomized differential tests can pin
//! the dense core of [`crate::simulator`] against it: same quiescent signal
//! states, same delta counts (see the `differential` test module).

use crate::error::SimError;
use crate::eval::{eval, update_slice, NameEnv};
use crate::simulator::{DeltaReport, SimOptions};
use crate::values::{Logic, Value};
use std::collections::{BTreeMap, BTreeSet};
use vhdl1_syntax::{Design, Expr, Ident, SignalKind, Span, Stmt, Target, Type};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    /// The process has work to do before its next wait.
    Running,
    /// The process is suspended at a wait statement.
    Waiting { on: Vec<Ident>, until: Expr },
}

#[derive(Debug, Clone)]
struct ProcState {
    name: Ident,
    /// The process body, re-entered whenever the continuation stack drains
    /// (`null; while '1' do ss`, Section 3.2).
    body: Stmt,
    vars: BTreeMap<Ident, Value>,
    var_types: BTreeMap<Ident, Type>,
    /// Active values driven by this process (`ϕ_i s 1`).
    active: BTreeMap<Ident, Value>,
    /// Continuation stack: statements still to execute, topmost last.
    stack: Vec<Stmt>,
    status: Status,
}

struct ProcEnv<'a> {
    vars: &'a BTreeMap<Ident, Value>,
    var_types: &'a BTreeMap<Ident, Type>,
    present: &'a BTreeMap<Ident, Value>,
    signal_types: &'a BTreeMap<Ident, Type>,
}

impl NameEnv for ProcEnv<'_> {
    fn value_of(&self, name: &str) -> Option<Value> {
        self.vars
            .get(name)
            .cloned()
            .or_else(|| self.present.get(name).cloned())
    }
    fn type_of(&self, name: &str) -> Option<Type> {
        self.var_types
            .get(name)
            .cloned()
            .or_else(|| self.signal_types.get(name).cloned())
    }
}

/// The reference simulator instance for one elaborated design.
#[derive(Debug, Clone)]
pub struct RefSimulator {
    signal_types: BTreeMap<Ident, Type>,
    input_ports: BTreeSet<Ident>,
    present: BTreeMap<Ident, Value>,
    env_drivers: BTreeMap<Ident, Value>,
    procs: Vec<ProcState>,
    options: SimOptions,
    deltas: u64,
}

impl RefSimulator {
    /// Creates a reference simulator with default options.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if an initialiser expression cannot be
    /// evaluated.
    pub fn new(design: &Design) -> Result<RefSimulator, SimError> {
        RefSimulator::with_options(design, SimOptions::default())
    }

    /// Creates a reference simulator with explicit options.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if an initialiser expression cannot be
    /// evaluated.
    pub fn with_options(design: &Design, options: SimOptions) -> Result<RefSimulator, SimError> {
        let mut signal_types = BTreeMap::new();
        let mut present = BTreeMap::new();
        let mut input_ports = BTreeSet::new();
        let empty_env = EmptyEnv;
        for sig in &design.signals {
            signal_types.insert(sig.name.clone(), sig.ty.clone());
            let init = match &sig.init {
                Some(e) => eval(e, &empty_env)?.resized(sig.ty.width()),
                None => Value::filled(sig.ty.width(), Logic::U),
            };
            present.insert(sig.name.clone(), init);
            if sig.kind == SignalKind::PortIn {
                input_ports.insert(sig.name.clone());
            }
        }
        let mut procs = Vec::new();
        for p in &design.processes {
            let mut vars = BTreeMap::new();
            let mut var_types = BTreeMap::new();
            for v in &p.variables {
                let init = match &v.init {
                    Some(e) => eval(e, &empty_env)?.resized(v.ty.width()),
                    None => Value::filled(v.ty.width(), Logic::U),
                };
                vars.insert(v.name.clone(), init);
                var_types.insert(v.name.clone(), v.ty.clone());
            }
            procs.push(ProcState {
                name: p.name.clone(),
                body: p.body.clone(),
                vars,
                var_types,
                active: BTreeMap::new(),
                stack: vec![p.body.clone()],
                status: Status::Running,
            });
        }
        Ok(RefSimulator {
            signal_types,
            input_ports,
            present,
            env_drivers: BTreeMap::new(),
            procs,
            options,
            deltas: 0,
        })
    }

    /// Number of delta cycles performed so far.
    pub fn delta_count(&self) -> u64 {
        self.deltas
    }

    /// The present value of a signal.
    pub fn signal(&self, name: &str) -> Option<&Value> {
        self.present.get(name)
    }

    /// The current value of a local variable of a process.
    pub fn variable(&self, process: &str, name: &str) -> Option<&Value> {
        self.procs
            .iter()
            .find(|p| p.name == process)
            .and_then(|p| p.vars.get(name))
    }

    /// Drives an input port from the environment; the value takes effect at
    /// the next synchronisation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UndefinedName`] if `name` is not an `in` port.
    pub fn drive_input(&mut self, name: &str, value: Value) -> Result<(), SimError> {
        if !self.input_ports.contains(name) {
            return Err(SimError::UndefinedName {
                name: name.to_string(),
                span: Span::NONE,
            });
        }
        let width = self.signal_types[name].width();
        self.env_drivers
            .insert(name.to_string(), value.resized(width));
        Ok(())
    }

    /// Drives an input port with the unsigned value `n`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UndefinedName`] if `name` is not an `in` port.
    pub fn drive_input_unsigned(&mut self, name: &str, n: u128) -> Result<(), SimError> {
        let width = self.signal_types.get(name).map(Type::width).unwrap_or(1);
        self.drive_input(name, Value::from_unsigned(n, width))
    }

    /// Runs every non-waiting process until it suspends, then performs one
    /// synchronisation.  Returns `None` if the design is quiescent.
    ///
    /// # Errors
    ///
    /// Propagates execution errors (step limits, undefined names, strict
    /// condition failures).
    pub fn delta_step(&mut self) -> Result<Option<DeltaReport>, SimError> {
        for idx in 0..self.procs.len() {
            self.run_process_to_wait(idx)?;
        }
        let any_active =
            !self.env_drivers.is_empty() || self.procs.iter().any(|p| !p.active.is_empty());
        if !any_active {
            return Ok(None);
        }

        // Resolution: combine all drivers of each signal.
        let mut drivers: BTreeMap<Ident, Vec<Value>> = BTreeMap::new();
        for (s, v) in std::mem::take(&mut self.env_drivers) {
            drivers.entry(s).or_default().push(v);
        }
        for p in &mut self.procs {
            for (s, v) in std::mem::take(&mut p.active) {
                drivers.entry(s).or_default().push(v);
            }
        }
        let mut changed = BTreeSet::new();
        for (s, values) in drivers {
            let resolved = values
                .into_iter()
                .reduce(|a, b| a.resolve_with(&b))
                .expect("driver list is never empty");
            let old = self.present.get(&s).cloned();
            if old.as_ref() != Some(&resolved) {
                changed.insert(s.clone());
            }
            self.present.insert(s, resolved);
        }

        // Resume processes whose wait condition is satisfied.
        let mut resumed = Vec::new();
        for p in &mut self.procs {
            if let Status::Waiting { on, until } = &p.status {
                let triggered = on.iter().any(|s| changed.contains(s));
                if !triggered {
                    continue;
                }
                let env = ProcEnv {
                    vars: &p.vars,
                    var_types: &p.var_types,
                    present: &self.present,
                    signal_types: &self.signal_types,
                };
                let cond = eval(until, &env)?;
                let proceed = match cond.to_bool() {
                    Some(b) => b,
                    None if self.options.strict_conditions => {
                        return Err(SimError::NonBooleanCondition {
                            process: p.name.clone(),
                            value: cond,
                            span: Span::NONE,
                        })
                    }
                    None => false,
                };
                if proceed {
                    p.status = Status::Running;
                    resumed.push(p.name.clone());
                }
            }
        }
        self.deltas += 1;
        Ok(Some(DeltaReport { changed, resumed }))
    }

    /// Repeats [`RefSimulator::delta_step`] until the design is quiescent or
    /// `max_deltas` cycles have elapsed.  Returns the number of delta cycles
    /// performed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DeltaLimitExceeded`] if quiescence is not reached,
    /// or any execution error from the processes.
    pub fn run_until_quiescent(&mut self, max_deltas: u64) -> Result<u64, SimError> {
        let mut count = 0;
        loop {
            match self.delta_step()? {
                Some(_) => {
                    count += 1;
                    if count > max_deltas {
                        return Err(SimError::DeltaLimitExceeded { limit: max_deltas });
                    }
                }
                None => return Ok(count),
            }
        }
    }

    fn run_process_to_wait(&mut self, idx: usize) -> Result<(), SimError> {
        let mut steps = 0usize;
        loop {
            let p = &mut self.procs[idx];
            if !matches!(p.status, Status::Running) {
                return Ok(());
            }
            let stmt = match p.stack.pop() {
                Some(stmt) => stmt,
                None => {
                    // The process body is repeated indefinitely (Section 3.2).
                    let body = p.body.clone();
                    p.stack.push(body);
                    continue;
                }
            };
            steps += 1;
            if steps > self.options.max_steps_per_activation {
                return Err(SimError::StepLimitExceeded {
                    process: p.name.clone(),
                    limit: self.options.max_steps_per_activation,
                });
            }
            match stmt {
                Stmt::Null { .. } => {}
                Stmt::Seq(a, b) => {
                    p.stack.push(*b);
                    p.stack.push(*a);
                }
                Stmt::VarAssign { target, expr, .. } => {
                    let env = ProcEnv {
                        vars: &p.vars,
                        var_types: &p.var_types,
                        present: &self.present,
                        signal_types: &self.signal_types,
                    };
                    let value = eval(&expr, &env)?;
                    assign_target(&target, value, &mut p.vars, &p.var_types)?;
                }
                Stmt::SignalAssign { target, expr, .. } => {
                    let env = ProcEnv {
                        vars: &p.vars,
                        var_types: &p.var_types,
                        present: &self.present,
                        signal_types: &self.signal_types,
                    };
                    let value = eval(&expr, &env)?;
                    let ty = self.signal_types.get(&target.name).ok_or_else(|| {
                        SimError::UndefinedName {
                            name: target.name.clone(),
                            span: target.span,
                        }
                    })?;
                    let new = match &target.slice {
                        None => value.resized(ty.width()),
                        Some(sl) => {
                            // Slice assignments update only part of the active
                            // value; start from the pending active value if
                            // any, otherwise from the present value.
                            let base = p
                                .active
                                .get(&target.name)
                                .or_else(|| self.present.get(&target.name))
                                .cloned()
                                .unwrap_or_else(|| Value::filled(ty.width(), Logic::U));
                            update_slice(&target.name, &base, ty, sl, &value)
                                .map_err(|e| e.with_span(target.span))?
                        }
                    };
                    p.active.insert(target.name.clone(), new);
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    ..
                } => {
                    let env = ProcEnv {
                        vars: &p.vars,
                        var_types: &p.var_types,
                        present: &self.present,
                        signal_types: &self.signal_types,
                    };
                    let c = eval(&cond, &env)?;
                    let taken = match c.to_bool() {
                        Some(b) => b,
                        None if self.options.strict_conditions => {
                            return Err(SimError::NonBooleanCondition {
                                process: p.name.clone(),
                                value: c,
                                span: Span::NONE,
                            })
                        }
                        None => false,
                    };
                    p.stack
                        .push(if taken { *then_branch } else { *else_branch });
                }
                Stmt::While { cond, body, label } => {
                    let env = ProcEnv {
                        vars: &p.vars,
                        var_types: &p.var_types,
                        present: &self.present,
                        signal_types: &self.signal_types,
                    };
                    let c = eval(&cond, &env)?;
                    let taken = match c.to_bool() {
                        Some(b) => b,
                        None if self.options.strict_conditions => {
                            return Err(SimError::NonBooleanCondition {
                                process: p.name.clone(),
                                value: c,
                                span: Span::NONE,
                            })
                        }
                        None => false,
                    };
                    if taken {
                        p.stack.push(Stmt::While {
                            cond,
                            body: body.clone(),
                            label,
                        });
                        p.stack.push(*body);
                    }
                }
                Stmt::Wait { on, until, .. } => {
                    p.status = Status::Waiting { on, until };
                    return Ok(());
                }
            }
        }
    }
}

fn assign_target(
    target: &Target,
    value: Value,
    vars: &mut BTreeMap<Ident, Value>,
    var_types: &BTreeMap<Ident, Type>,
) -> Result<(), SimError> {
    let ty = var_types
        .get(&target.name)
        .ok_or_else(|| SimError::UndefinedName {
            name: target.name.clone(),
            span: target.span,
        })?;
    let new = match &target.slice {
        None => value.resized(ty.width()),
        Some(sl) => {
            let base = vars
                .get(&target.name)
                .cloned()
                .unwrap_or_else(|| Value::filled(ty.width(), Logic::U));
            update_slice(&target.name, &base, ty, sl, &value)
                .map_err(|e| e.with_span(target.span))?
        }
    };
    vars.insert(target.name.clone(), new);
    Ok(())
}

struct EmptyEnv;

impl NameEnv for EmptyEnv {
    fn value_of(&self, _name: &str) -> Option<Value> {
        None
    }
    fn type_of(&self, _name: &str) -> Option<Type> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vhdl1_syntax::frontend;

    const COPY: &str = "entity e is port(a : in std_logic; b : out std_logic); end e;
         architecture rtl of e is begin
           p : process begin b <= a; wait on a; end process p;
         end rtl;";

    #[test]
    fn oracle_still_simulates_the_basics() {
        let mut s = RefSimulator::new(&frontend(COPY).unwrap()).unwrap();
        assert_eq!(s.signal("b"), Some(&Value::Logic(Logic::U)));
        s.run_until_quiescent(10).unwrap();
        s.drive_input("a", Value::logic('1').unwrap()).unwrap();
        s.run_until_quiescent(10).unwrap();
        assert_eq!(s.signal("b"), Some(&Value::logic('1').unwrap()));
        assert!(s.drive_input("b", Value::logic('1').unwrap()).is_err());
        assert_eq!(s.run_until_quiescent(10).unwrap(), 0);
        assert!(s.delta_count() >= 1);
        assert_eq!(s.variable("p", "ghost"), None);
    }
}
