//! Errors reported by the simulator.

use crate::values::Value;
use std::fmt;

/// An error raised while evaluating expressions or executing a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A name was referenced that is neither a signal nor a local variable of
    /// the executing process.
    UndefinedName {
        /// The unknown name.
        name: String,
    },
    /// A slice referenced indices outside the declared range of a name.
    InvalidSlice {
        /// The sliced name.
        name: String,
    },
    /// A branch or wait condition did not evaluate to a defined boolean and
    /// strict-condition mode is enabled.
    NonBooleanCondition {
        /// The process that evaluated the condition.
        process: String,
        /// The offending value.
        value: Value,
    },
    /// A process executed more steps than allowed without reaching a wait
    /// statement (almost certainly a combinational loop or a missing wait).
    StepLimitExceeded {
        /// The runaway process.
        process: String,
        /// The configured limit.
        limit: usize,
    },
    /// The design did not reach quiescence within the configured number of
    /// delta cycles.
    DeltaLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UndefinedName { name } => write!(f, "undefined name `{name}`"),
            SimError::InvalidSlice { name } => write!(f, "slice out of range on `{name}`"),
            SimError::NonBooleanCondition { process, value } => {
                write!(
                    f,
                    "condition in process `{process}` evaluated to {value}, not a boolean"
                )
            }
            SimError::StepLimitExceeded { process, limit } => {
                write!(
                    f,
                    "process `{process}` exceeded {limit} steps without reaching a wait"
                )
            }
            SimError::DeltaLimitExceeded { limit } => {
                write!(f, "design did not stabilise within {limit} delta cycles")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::UndefinedName { name: "x".into() }.to_string(),
            "undefined name `x`"
        );
        assert!(SimError::StepLimitExceeded {
            process: "p".into(),
            limit: 10
        }
        .to_string()
        .contains("10 steps"));
        assert!(SimError::DeltaLimitExceeded { limit: 5 }
            .to_string()
            .contains("5 delta"));
    }
}
