//! Errors reported by the simulator.

use crate::values::Value;
use std::fmt;
use vhdl1_syntax::{Pos, Span};

/// An error raised while evaluating expressions or executing a design.
///
/// Errors that can be attributed to a source location carry a
/// [`Span`] — filled in whenever the offending AST node was produced by the
/// parser (programmatically built designs degrade to position-less errors).
/// Like everywhere else in the workspace, spans are invisible to `==`, so
/// tests may compare errors without constructing positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A name was referenced that is neither a signal nor a local variable of
    /// the executing process.
    UndefinedName {
        /// The unknown name.
        name: String,
        /// Source position of the reference, if known.
        span: Span,
    },
    /// A slice referenced indices outside the declared range of a name.
    InvalidSlice {
        /// The sliced name.
        name: String,
        /// Source position of the slice, if known.
        span: Span,
    },
    /// A branch or wait condition did not evaluate to a defined boolean and
    /// strict-condition mode is enabled.
    NonBooleanCondition {
        /// The process that evaluated the condition.
        process: String,
        /// The offending value.
        value: Value,
        /// Source position of the condition, if known.
        span: Span,
    },
    /// A process executed more steps than allowed without reaching a wait
    /// statement (almost certainly a combinational loop or a missing wait).
    StepLimitExceeded {
        /// The runaway process.
        process: String,
        /// The configured limit.
        limit: usize,
    },
    /// The design did not reach quiescence within the configured number of
    /// delta cycles.
    DeltaLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// The run as a whole executed more statement steps than the configured
    /// total budget ([`crate::SimOptions::max_total_steps`]), summed over all
    /// processes and delta cycles.
    TotalStepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// [`crate::Simulator::preset_input`] was called after simulation had
    /// already started: initial port values only exist before the first
    /// delta cycle (use `drive_input` afterwards).
    PresetAfterStart {
        /// The port whose preset was rejected.
        name: String,
    },
}

impl SimError {
    /// The source position of the error, when the failing construct was
    /// parsed from text (rather than built programmatically).
    pub fn pos(&self) -> Option<Pos> {
        match self {
            SimError::UndefinedName { span, .. }
            | SimError::InvalidSlice { span, .. }
            | SimError::NonBooleanCondition { span, .. } => span.pos(),
            SimError::StepLimitExceeded { .. }
            | SimError::DeltaLimitExceeded { .. }
            | SimError::TotalStepLimitExceeded { .. }
            | SimError::PresetAfterStart { .. } => None,
        }
    }

    /// `(line, column)` of the failure, if known.
    pub fn line_col(&self) -> Option<(u32, u32)> {
        self.pos().map(|p| (p.line, p.col))
    }

    /// Attaches `span` to the error when it supports one and does not carry
    /// a position yet; otherwise returns the error unchanged.
    pub fn with_span(mut self, new: Span) -> SimError {
        if new.pos().is_none() {
            return self;
        }
        match &mut self {
            SimError::UndefinedName { span, .. }
            | SimError::InvalidSlice { span, .. }
            | SimError::NonBooleanCondition { span, .. } => {
                if span.pos().is_none() {
                    *span = new;
                }
            }
            SimError::StepLimitExceeded { .. }
            | SimError::DeltaLimitExceeded { .. }
            | SimError::TotalStepLimitExceeded { .. }
            | SimError::PresetAfterStart { .. } => {}
        }
        self
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UndefinedName { name, .. } => write!(f, "undefined name `{name}`")?,
            SimError::InvalidSlice { name, .. } => write!(f, "slice out of range on `{name}`")?,
            SimError::NonBooleanCondition { process, value, .. } => {
                write!(
                    f,
                    "condition in process `{process}` evaluated to {value}, not a boolean"
                )?;
            }
            SimError::StepLimitExceeded { process, limit } => {
                write!(
                    f,
                    "process `{process}` exceeded {limit} steps without reaching a wait"
                )?;
            }
            SimError::DeltaLimitExceeded { limit } => {
                write!(f, "design did not stabilise within {limit} delta cycles")?;
            }
            SimError::TotalStepLimitExceeded { limit } => {
                write!(
                    f,
                    "run exceeded the total budget of {limit} statement steps"
                )?;
            }
            SimError::PresetAfterStart { name } => {
                write!(
                    f,
                    "cannot preset input `{name}` after simulation has started"
                )?;
            }
        }
        if let Some(pos) = self.pos() {
            write!(f, " at {pos}")?;
        }
        Ok(())
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::UndefinedName {
                name: "x".into(),
                span: Span::NONE,
            }
            .to_string(),
            "undefined name `x`"
        );
        assert!(SimError::StepLimitExceeded {
            process: "p".into(),
            limit: 10
        }
        .to_string()
        .contains("10 steps"));
        assert!(SimError::DeltaLimitExceeded { limit: 5 }
            .to_string()
            .contains("5 delta"));
    }

    #[test]
    fn positions_render_and_compare_invisibly() {
        let pos = Pos { line: 3, col: 7 };
        let with = SimError::InvalidSlice {
            name: "v".into(),
            span: Span::at(pos),
        };
        assert_eq!(with.to_string(), "slice out of range on `v` at 3:7");
        assert_eq!(with.pos(), Some(pos));
        assert_eq!(with.line_col(), Some((3, 7)));
        // Spans never distinguish errors.
        let without = SimError::InvalidSlice {
            name: "v".into(),
            span: Span::NONE,
        };
        assert_eq!(with, without);
        // `with_span` fills only missing positions.
        let filled = without.with_span(Span::at(pos));
        assert_eq!(filled.pos(), Some(pos));
        let kept = filled.with_span(Span::at(Pos { line: 9, col: 9 }));
        assert_eq!(kept.pos(), Some(pos));
        assert_eq!(
            SimError::DeltaLimitExceeded { limit: 1 }
                .with_span(Span::at(pos))
                .pos(),
            None
        );
    }
}
