//! # `vhdl1-sim` — structural operational semantics for VHDL1
//!
//! An executable implementation of Section 3 of *Information Flow Analysis
//! for VHDL* (Tolstrup, Nielson & Nielson, PaCT 2005):
//!
//! * the nine-valued `std_logic` domain, vectors and the resolution function
//!   ([`values`]), plus the nibble-packed dense form used by the execution
//!   core ([`packed`]),
//! * the expression semantics of Table 1 ([`mod@eval`]),
//! * the statement and concurrent-statement semantics of Tables 2 and 3 —
//!   processes execute until their synchronisation points, where active
//!   values are resolved into new present values over delta cycles
//!   ([`simulator`]).
//!
//! The simulator plays the role ModelSim plays in the paper: it validates
//! that the VHDL1 workloads (notably the generated AES-128 implementation in
//! `aes-vhdl`) compute the right values.
//!
//! Designs are [`compile`]d once into flat instruction arrays over interned
//! `u32` signal/variable ids with packed `u64` values; the previous
//! tree-walking implementation survives as the `simref` differential
//! oracle (compiled for tests and behind the `simref` feature, like the
//! `setref` solver of `vhdl1-dataflow`).
//!
//! ```
//! use vhdl1_sim::{Simulator, Value};
//!
//! let design = vhdl1_syntax::frontend(
//!     "entity e is port(a : in std_logic; b : out std_logic); end e;
//!      architecture rtl of e is begin
//!        p : process begin b <= not a; wait on a; end process p;
//!      end rtl;")?;
//! let mut sim = Simulator::new(&design)?;
//! sim.run_until_quiescent(10)?;
//! sim.drive_input("a", Value::logic('0').unwrap())?;
//! sim.run_until_quiescent(10)?;
//! assert_eq!(sim.signal("b"), Some(Value::logic('1').unwrap()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod error;
pub mod eval;
pub mod packed;
pub mod simulator;
pub mod values;

#[cfg(any(test, feature = "simref"))]
pub mod simref;

#[cfg(test)]
mod differential;

pub use compile::CompiledDesign;
pub use error::SimError;
pub use eval::{apply_binary, eval, slice_value, update_slice, NameEnv};
pub use packed::{apply_binary_packed, PackedValue};
pub use simulator::{DeltaReport, SimOptions, Simulator};
pub use values::{resolve_all, Logic, Value};
