//! Execution of elaborated designs: the concurrent semantics of Section 3.2,
//! on the dense interned core.
//!
//! Each process runs by itself until it reaches a `wait` statement; when all
//! processes are suspended, a synchronisation (delta cycle) takes place: the
//! active values driven by the processes (and by the environment) are
//! combined with the resolution function, become the new present values, and
//! processes whose wait conditions are satisfied resume.
//!
//! The engine executes the compiled form of [`crate::compile`]: present
//! values live in a flat `u32`-indexed store of [`PackedValue`]s, active
//! values in per-process driver slots (a dense event queue drained at every
//! synchronisation), changed signals in a bitset, and wakeup is a word scan
//! of that bitset against each suspended process's interned sensitivity set.
//! The previous tree-walking simulator is preserved bit-for-bit as the
//! `simref` differential oracle (the `simref` module, feature/test gated).

use crate::compile::{eval_cexpr, CompiledDesign, Instr};
use crate::error::SimError;
use crate::packed::PackedValue;
use crate::values::Value;
use std::collections::BTreeSet;
use std::sync::Arc;
use vhdl1_syntax::{Design, Ident};

/// Configuration of the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Maximum number of elementary steps a process may execute between two
    /// wait statements before [`SimError::StepLimitExceeded`] is raised.
    pub max_steps_per_activation: usize,
    /// Raise an error when a branch condition is not a defined boolean
    /// (otherwise the else branch is taken).
    pub strict_conditions: bool,
    /// Maximum number of elementary steps the whole run may execute, summed
    /// over all processes and delta cycles, before
    /// [`SimError::TotalStepLimitExceeded`] is raised.  `None` (the default)
    /// leaves the run bounded only by the per-activation and delta limits.
    pub max_total_steps: Option<u64>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_steps_per_activation: 1_000_000,
            strict_conditions: false,
            max_total_steps: None,
        }
    }
}

/// A report of one synchronisation (delta cycle).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeltaReport {
    /// Signals whose present value changed during the synchronisation.
    pub changed: BTreeSet<Ident>,
    /// Processes that resumed execution.
    pub resumed: Vec<Ident>,
}

/// Per-process runtime state: variables, active-value slots (the process's
/// part of the event queue) and the program counter.
#[derive(Debug, Clone)]
struct ProcRt {
    vars: Vec<PackedValue>,
    /// Active values per driven-signal slot, drained at synchronisation.
    active: Vec<Option<PackedValue>>,
    /// Slots set during the current activation, in assignment order.
    touched: Vec<u32>,
    /// Next instruction to execute.
    pc: u32,
    /// `Some(i)` when suspended at the `Wait` instruction at index `i`.
    waiting: Option<u32>,
}

/// A simulator instance for one elaborated design.
#[derive(Clone)]
pub struct Simulator {
    design: Arc<CompiledDesign>,
    options: SimOptions,
    /// Present value of every signal, indexed by dense signal id.
    present: Vec<PackedValue>,
    /// Environment drivers (inputs), indexed by signal id.
    env: Vec<Option<PackedValue>>,
    env_touched: Vec<u32>,
    procs: Vec<ProcRt>,
    /// Resolution scratch: pending resolved value per signal id.
    pending: Vec<Option<PackedValue>>,
    /// Signals driven in the current synchronisation, in first-driver order.
    driven_list: Vec<u32>,
    /// Bitset of signals whose present value changed last synchronisation.
    changed_bits: Box<[u64]>,
    deltas: u64,
    /// Elementary steps executed by the whole run so far (all processes, all
    /// delta cycles) — checked against [`SimOptions::max_total_steps`].
    total_steps: u64,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("signals", &self.design.signal_count())
            .field("processes", &self.design.process_count())
            .field("deltas", &self.deltas)
            .finish()
    }
}

impl Simulator {
    /// Creates a simulator with default options.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the design does not compile (unresolvable
    /// name, out-of-range slice, unevaluable initialiser).
    pub fn new(design: &Design) -> Result<Simulator, SimError> {
        Simulator::with_options(design, SimOptions::default())
    }

    /// Creates a simulator with explicit options.
    ///
    /// # Errors
    ///
    /// See [`Simulator::new`].
    pub fn with_options(design: &Design, options: SimOptions) -> Result<Simulator, SimError> {
        Ok(Simulator::from_compiled(
            Arc::new(CompiledDesign::compile(design)?),
            options,
        ))
    }

    /// Creates a simulator over an already compiled design, sharing the
    /// compiled form (instruction arrays, constants, sensitivity sets)
    /// across instances.
    pub fn from_compiled(design: Arc<CompiledDesign>, options: SimOptions) -> Simulator {
        let nsignals = design.sig_names.len();
        let procs = design
            .procs
            .iter()
            .map(|p| ProcRt {
                vars: p.var_init.clone(),
                active: vec![None; p.driven.len()],
                touched: Vec::new(),
                pc: 0,
                waiting: None,
            })
            .collect();
        Simulator {
            present: design.sig_init.clone(),
            env: vec![None; nsignals],
            env_touched: Vec::new(),
            procs,
            pending: vec![None; nsignals],
            driven_list: Vec::new(),
            changed_bits: vec![0u64; design.sig_word_count].into_boxed_slice(),
            deltas: 0,
            total_steps: 0,
            design,
            options,
        }
    }

    /// The compiled design this simulator executes.
    pub fn compiled(&self) -> &Arc<CompiledDesign> {
        &self.design
    }

    /// Number of delta cycles performed so far.
    pub fn delta_count(&self) -> u64 {
        self.deltas
    }

    /// Number of elementary statement steps executed so far, summed over all
    /// processes and delta cycles.
    pub fn total_step_count(&self) -> u64 {
        self.total_steps
    }

    /// The present value of a signal.
    pub fn signal(&self, name: &str) -> Option<Value> {
        let id = *self.design.sig_id.get(name)?;
        Some(self.present[id as usize].to_value())
    }

    /// The current value of a local variable of a process.
    pub fn variable(&self, process: &str, name: &str) -> Option<Value> {
        let (pi, cp) = self
            .design
            .procs
            .iter()
            .enumerate()
            .find(|(_, p)| p.name == process)?;
        let vi = cp.var_names.iter().position(|v| v == name)?;
        Some(self.procs[pi].vars[vi].to_value())
    }

    /// Drives an input port from the environment; the value takes effect at
    /// the next synchronisation (like an assignment made by the environment
    /// process `π` of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UndefinedName`] if `name` is not an `in` port.
    pub fn drive_input(&mut self, name: &str, value: Value) -> Result<(), SimError> {
        let id =
            self.design.sig_id.get(name).copied().filter(|&id| {
                self.design.input_bits[id as usize / 64] >> (id as usize % 64) & 1 == 1
            });
        let Some(id) = id else {
            return Err(SimError::UndefinedName {
                name: name.to_string(),
                span: vhdl1_syntax::Span::NONE,
            });
        };
        let width = self.design.sig_widths[id as usize] as usize;
        let packed = PackedValue::from_value(&value).resized(width);
        let slot = &mut self.env[id as usize];
        if slot.is_none() {
            self.env_touched.push(id);
        }
        *slot = Some(packed);
        Ok(())
    }

    /// Sets the *initial* value of an input port, as a VHDL port default
    /// expression would: the value is installed as the signal's present value
    /// directly, so it is visible to the very first run of every process.
    /// This matters for feedback signals (`acc <= acc xor key`): with an
    /// uninitialised (`U`) input, the first process run poisons the feedback
    /// signal with `U` before any [`Simulator::drive_input`] value can commit,
    /// and `U` is absorbing — the signal never recovers.
    ///
    /// No event is generated (processes all run unconditionally in the first
    /// delta cycle anyway).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UndefinedName`] if `name` is not an `in` port, and
    /// [`SimError::PresetAfterStart`] once simulation has started (presets
    /// only exist before the first delta cycle; drive inputs afterwards).
    pub fn preset_input(&mut self, name: &str, value: Value) -> Result<(), SimError> {
        let id =
            self.design.sig_id.get(name).copied().filter(|&id| {
                self.design.input_bits[id as usize / 64] >> (id as usize % 64) & 1 == 1
            });
        let Some(id) = id else {
            return Err(SimError::UndefinedName {
                name: name.to_string(),
                span: vhdl1_syntax::Span::NONE,
            });
        };
        if self.deltas > 0 || self.total_steps > 0 {
            return Err(SimError::PresetAfterStart {
                name: name.to_string(),
            });
        }
        let width = self.design.sig_widths[id as usize] as usize;
        self.present[id as usize] = PackedValue::from_value(&value).resized(width);
        Ok(())
    }

    /// Drives an input port with the unsigned value `n`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UndefinedName`] if `name` is not an `in` port.
    pub fn drive_input_unsigned(&mut self, name: &str, n: u128) -> Result<(), SimError> {
        let width = self
            .design
            .sig_id
            .get(name)
            .map(|&id| self.design.sig_widths[id as usize] as usize)
            .unwrap_or(1);
        self.drive_input(name, Value::from_unsigned(n, width))
    }

    /// Runs every non-waiting process until it suspends, then performs one
    /// synchronisation.  Returns `None` if the design is quiescent (no active
    /// values anywhere), otherwise the report of the delta cycle.
    ///
    /// # Errors
    ///
    /// Propagates execution errors (step limits, strict condition failures).
    pub fn delta_step(&mut self) -> Result<Option<DeltaReport>, SimError> {
        self.delta_step_inner(true)
    }

    /// Repeats [`Simulator::delta_step`] until the design is quiescent or
    /// `max_deltas` cycles have elapsed.  Returns the number of delta cycles
    /// performed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DeltaLimitExceeded`] if quiescence is not reached,
    /// or any execution error from the processes.
    pub fn run_until_quiescent(&mut self, max_deltas: u64) -> Result<u64, SimError> {
        let mut count = 0;
        loop {
            match self.delta_step_inner(false)? {
                Some(_) => {
                    count += 1;
                    if count > max_deltas {
                        return Err(SimError::DeltaLimitExceeded { limit: max_deltas });
                    }
                }
                None => return Ok(count),
            }
        }
    }

    fn delta_step_inner(&mut self, want_report: bool) -> Result<Option<DeltaReport>, SimError> {
        let design = Arc::clone(&self.design);
        for idx in 0..self.procs.len() {
            self.run_process_to_wait(&design, idx)?;
        }
        let any_active =
            !self.env_touched.is_empty() || self.procs.iter().any(|p| !p.touched.is_empty());
        if !any_active {
            return Ok(None);
        }

        // Resolution: fold every driver of each signal (the IEEE resolution
        // function is associative and commutative, so fold order is free).
        for &sig in &self.env_touched {
            let v = self.env[sig as usize].take().expect("touched env slot");
            fold_driver(&mut self.pending, &mut self.driven_list, sig, v);
        }
        self.env_touched.clear();
        for (pi, p) in self.procs.iter_mut().enumerate() {
            for &slot in &p.touched {
                let v = p.active[slot as usize].take().expect("touched slot");
                let sig = design.procs[pi].driven[slot as usize];
                fold_driver(&mut self.pending, &mut self.driven_list, sig, v);
            }
            p.touched.clear();
        }

        // Commit: compare against the present values, record changes.
        let mut report = if want_report {
            Some(DeltaReport::default())
        } else {
            None
        };
        for w in self.changed_bits.iter_mut() {
            *w = 0;
        }
        for &sig in &self.driven_list {
            let resolved = self.pending[sig as usize].take().expect("driven signal");
            let present = &mut self.present[sig as usize];
            if *present != resolved {
                self.changed_bits[sig as usize / 64] |= 1u64 << (sig as usize % 64);
                present.copy_from(&resolved);
                if let Some(r) = &mut report {
                    r.changed.insert(design.sig_names[sig as usize].clone());
                }
            }
        }
        self.driven_list.clear();

        // Resume processes whose wait condition is satisfied: a word scan of
        // the interned sensitivity bitset against the changed bitset.
        for (pi, p) in self.procs.iter_mut().enumerate() {
            let Some(wait_at) = p.waiting else { continue };
            let Instr::Wait { sens, until, span } = &design.procs[pi].code[wait_at as usize] else {
                unreachable!("waiting processes suspend at Wait instructions");
            };
            let sens_bits = &design.sens_sets[*sens as usize];
            let triggered = sens_bits
                .iter()
                .zip(self.changed_bits.iter())
                .any(|(s, c)| s & c != 0);
            if !triggered {
                continue;
            }
            let proceed = match until {
                None => true,
                Some(cond) => {
                    let c = eval_cexpr(cond, &p.vars, &self.present);
                    match c.to_bool() {
                        Some(b) => b,
                        None if self.options.strict_conditions => {
                            return Err(SimError::NonBooleanCondition {
                                process: design.procs[pi].name.clone(),
                                value: c.to_value(),
                                span: *span,
                            })
                        }
                        None => false,
                    }
                }
            };
            if proceed {
                p.waiting = None;
                if let Some(r) = &mut report {
                    r.resumed.push(design.procs[pi].name.clone());
                }
            }
        }
        self.deltas += 1;
        Ok(Some(report.unwrap_or_default()))
    }

    fn run_process_to_wait(&mut self, design: &CompiledDesign, idx: usize) -> Result<(), SimError> {
        let cp = &design.procs[idx];
        let p = &mut self.procs[idx];
        if p.waiting.is_some() {
            return Ok(());
        }
        let code = &cp.code;
        let mut steps = 0usize;
        loop {
            if p.pc as usize >= code.len() {
                // The process body is repeated indefinitely (Section 3.2).
                p.pc = 0;
            }
            steps += 1;
            if steps > self.options.max_steps_per_activation {
                return Err(SimError::StepLimitExceeded {
                    process: cp.name.clone(),
                    limit: self.options.max_steps_per_activation,
                });
            }
            self.total_steps += 1;
            if let Some(max) = self.options.max_total_steps {
                if self.total_steps > max {
                    return Err(SimError::TotalStepLimitExceeded { limit: max });
                }
            }
            match &code[p.pc as usize] {
                Instr::Nop => p.pc += 1,
                Instr::VarAssign { var, slice, expr } => {
                    let val = eval_cexpr(expr, &p.vars, &self.present);
                    let vi = *var as usize;
                    match slice {
                        None => {
                            let w = cp.var_widths[vi] as usize;
                            if val.width() == w {
                                p.vars[vi].copy_from(&val);
                            } else {
                                p.vars[vi] = val.resized(w);
                            }
                        }
                        Some(sl) => p.vars[vi].write_slice(
                            sl.start as usize,
                            sl.len as usize,
                            sl.descending,
                            &val,
                        ),
                    }
                    p.pc += 1;
                }
                Instr::SigAssign { slot, slice, expr } => {
                    let val = eval_cexpr(expr, &p.vars, &self.present);
                    let si = *slot as usize;
                    let sig = cp.driven[si] as usize;
                    match slice {
                        None => {
                            let w = design.sig_widths[sig] as usize;
                            let v = if val.width() == w {
                                val
                            } else {
                                val.resized(w)
                            };
                            if p.active[si].is_none() {
                                p.touched.push(*slot);
                            }
                            p.active[si] = Some(v);
                        }
                        Some(sl) => {
                            // Slice assignments update only part of the
                            // active value; start from the pending active
                            // value if any, otherwise from the present value.
                            if p.active[si].is_none() {
                                p.touched.push(*slot);
                                p.active[si] = Some(self.present[sig].clone());
                            }
                            p.active[si].as_mut().expect("just filled").write_slice(
                                sl.start as usize,
                                sl.len as usize,
                                sl.descending,
                                &val,
                            );
                        }
                    }
                    p.pc += 1;
                }
                Instr::BranchIfFalse { cond, target, span } => {
                    let c = eval_cexpr(cond, &p.vars, &self.present);
                    let taken = match c.to_bool() {
                        Some(b) => b,
                        None if self.options.strict_conditions => {
                            return Err(SimError::NonBooleanCondition {
                                process: cp.name.clone(),
                                value: c.to_value(),
                                span: *span,
                            })
                        }
                        None => false,
                    };
                    p.pc = if taken { p.pc + 1 } else { *target };
                }
                Instr::Jump(t) => p.pc = *t,
                Instr::Wait { .. } => {
                    p.waiting = Some(p.pc);
                    p.pc += 1;
                    return Ok(());
                }
            }
        }
    }
}

fn fold_driver(
    pending: &mut [Option<PackedValue>],
    driven: &mut Vec<u32>,
    sig: u32,
    value: PackedValue,
) {
    match &mut pending[sig as usize] {
        Some(acc) => acc.resolve_assign(&value),
        slot @ None => {
            *slot = Some(value);
            driven.push(sig);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::Logic;
    use vhdl1_syntax::frontend;

    fn sim(src: &str) -> Simulator {
        Simulator::new(&frontend(src).unwrap()).unwrap()
    }

    const COPY: &str = "entity e is port(a : in std_logic; b : out std_logic); end e;
         architecture rtl of e is begin
           p : process begin b <= a; wait on a; end process p;
         end rtl;";

    #[test]
    fn initial_values_are_uninitialised() {
        let s = sim(COPY);
        assert_eq!(s.signal("a"), Some(Value::Logic(Logic::U)));
        assert_eq!(s.signal("b"), Some(Value::Logic(Logic::U)));
        assert_eq!(s.signal("ghost"), None);
    }

    #[test]
    fn preset_is_visible_to_the_first_process_run() {
        // A feedback signal (`acc <= acc xor a`) distinguishes presets from
        // drives: a drive only commits after the first process run, which by
        // then has already poisoned `acc` via the input's initial `U`
        // (`'0' xor U = X`, and undefined values are absorbing, so the
        // signal never recovers).  A preset installs the value before any
        // process runs.
        let feedback = "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal acc : std_logic := '0';
             begin
               p : process begin acc <= acc xor a; b <= acc; wait on a; end process p;
             end rtl;";
        let mut driven = sim(feedback);
        driven.drive_input("a", Value::logic('0').unwrap()).unwrap();
        driven.run_until_quiescent(10).unwrap();
        assert_eq!(driven.signal("acc"), Some(Value::Logic(Logic::X)));

        let mut preset = sim(feedback);
        preset
            .preset_input("a", Value::logic('0').unwrap())
            .unwrap();
        assert_eq!(preset.signal("a"), Some(Value::logic('0').unwrap()));
        preset.run_until_quiescent(10).unwrap();
        assert_eq!(preset.signal("acc"), Some(Value::logic('0').unwrap()));
        // And the preset generated no event of its own: `a` reads back as
        // driven, one settle reached quiescence.
        assert_eq!(preset.run_until_quiescent(10).unwrap(), 0);
    }

    #[test]
    fn preset_is_rejected_once_simulation_starts() {
        let mut s = sim(COPY);
        s.run_until_quiescent(10).unwrap();
        match s.preset_input("a", Value::logic('1').unwrap()) {
            Err(SimError::PresetAfterStart { name }) => assert_eq!(name, "a"),
            other => panic!("expected PresetAfterStart, got {other:?}"),
        }
        // Non-ports are rejected the same way as for `drive_input`.
        match s.preset_input("b", Value::logic('1').unwrap()) {
            Err(SimError::UndefinedName { name, .. }) => assert_eq!(name, "b"),
            other => panic!("expected UndefinedName, got {other:?}"),
        }
    }

    #[test]
    fn input_propagates_to_output_after_delta_cycles() {
        let mut s = sim(COPY);
        // First activation: the process drives b with 'U' and waits on a.
        s.run_until_quiescent(10).unwrap();
        s.drive_input("a", Value::logic('1').unwrap()).unwrap();
        s.run_until_quiescent(10).unwrap();
        assert_eq!(s.signal("a"), Some(Value::logic('1').unwrap()));
        assert_eq!(s.signal("b"), Some(Value::logic('1').unwrap()));
    }

    #[test]
    fn quiescence_is_reported() {
        let mut s = sim(COPY);
        let n = s.run_until_quiescent(10).unwrap();
        assert!(n >= 1);
        // With no new inputs, the design stays quiescent.
        assert_eq!(s.run_until_quiescent(10).unwrap(), 0);
    }

    #[test]
    fn delta_reports_name_changed_signals_and_resumed_processes() {
        let mut s = sim(COPY);
        s.run_until_quiescent(10).unwrap();
        s.drive_input("a", Value::logic('1').unwrap()).unwrap();
        let report = s.delta_step().unwrap().expect("driven input synchronises");
        assert!(report.changed.contains("a"));
        assert_eq!(report.resumed, vec!["p".to_string()]);
    }

    #[test]
    fn driving_a_non_input_errors() {
        let mut s = sim(COPY);
        assert!(s.drive_input("b", Value::logic('1').unwrap()).is_err());
        assert!(s.drive_input("ghost", Value::logic('1').unwrap()).is_err());
    }

    const TWO_STAGE: &str = "entity e is port(a : in std_logic_vector(3 downto 0);
                                              b : out std_logic_vector(3 downto 0)); end e;
         architecture rtl of e is
           signal t : std_logic_vector(3 downto 0);
         begin
           p1 : process begin t <= a xor \"1111\"; wait on a; end process p1;
           p2 : process begin b <= t; wait on t; end process p2;
         end rtl;";

    #[test]
    fn values_flow_through_internal_signals() {
        let mut s = sim(TWO_STAGE);
        s.run_until_quiescent(20).unwrap();
        s.drive_input_unsigned("a", 0b0101).unwrap();
        s.run_until_quiescent(20).unwrap();
        assert_eq!(s.signal("t").unwrap().to_unsigned(), Some(0b1010));
        assert_eq!(s.signal("b").unwrap().to_unsigned(), Some(0b1010));
        assert!(
            s.delta_count() >= 2,
            "propagation needs at least two delta cycles"
        );
    }

    #[test]
    fn variables_and_conditionals_execute() {
        let src = "entity e is port(a : in std_logic_vector(3 downto 0);
                                    b : out std_logic_vector(3 downto 0)); end e;
             architecture rtl of e is begin
               p : process
                 variable v : std_logic_vector(3 downto 0);
               begin
                 if a = \"0011\" then
                   v := \"1111\";
                 else
                   v := \"0000\";
                 end if;
                 b <= v;
                 wait on a;
               end process p;
             end rtl;";
        let mut s = sim(src);
        s.run_until_quiescent(10).unwrap();
        s.drive_input_unsigned("a", 3).unwrap();
        s.run_until_quiescent(10).unwrap();
        assert_eq!(s.signal("b").unwrap().to_unsigned(), Some(15));
        assert_eq!(s.variable("p", "v").unwrap().to_unsigned(), Some(15));
        assert_eq!(s.variable("p", "ghost"), None);
        assert_eq!(s.variable("ghost", "v"), None);
        s.drive_input_unsigned("a", 4).unwrap();
        s.run_until_quiescent(10).unwrap();
        assert_eq!(s.signal("b").unwrap().to_unsigned(), Some(0));
    }

    #[test]
    fn while_loops_with_counters() {
        let src =
            "entity e is port(go : in std_logic; b : out std_logic_vector(7 downto 0)); end e;
             architecture rtl of e is begin
               p : process
                 variable count : std_logic_vector(7 downto 0) := \"00000000\";
                 variable i : std_logic_vector(3 downto 0) := \"0000\";
               begin
                 i := \"0000\";
                 while i < 5 loop
                   count := count + 1;
                   i := i + 1;
                 end loop;
                 b <= count;
                 wait on go;
               end process p;
             end rtl;";
        let mut s = sim(src);
        s.run_until_quiescent(10).unwrap();
        assert_eq!(s.signal("b").unwrap().to_unsigned(), Some(5));
        s.drive_input("go", Value::logic('1').unwrap()).unwrap();
        s.run_until_quiescent(10).unwrap();
        assert_eq!(s.signal("b").unwrap().to_unsigned(), Some(10));
    }

    #[test]
    fn resolution_of_multiple_drivers() {
        let src = "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic;
             begin
               p1 : process begin t <= '1'; wait on a; end process p1;
               p2 : process begin t <= '0'; wait on a; end process p2;
               p3 : process begin b <= t; wait on t; end process p3;
             end rtl;";
        let mut s = sim(src);
        s.run_until_quiescent(10).unwrap();
        assert_eq!(
            s.signal("t"),
            Some(Value::Logic(Logic::X)),
            "conflicting drivers resolve to X"
        );
    }

    #[test]
    fn step_limit_catches_missing_wait() {
        let src = "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is begin
               p : process
                 variable v : std_logic := '0';
               begin
                 while '1' = '1' loop v := not v; end loop;
                 b <= v;
                 wait on a;
               end process p;
             end rtl;";
        let design = frontend(src).unwrap();
        let mut s = Simulator::with_options(
            &design,
            SimOptions {
                max_steps_per_activation: 1000,
                ..SimOptions::default()
            },
        )
        .unwrap();
        assert!(matches!(
            s.run_until_quiescent(10),
            Err(SimError::StepLimitExceeded { .. })
        ));
    }

    #[test]
    fn total_step_budget_bounds_the_whole_run() {
        // A well-behaved design (waits every activation) that nevertheless
        // executes many steps across delta cycles: a two-signal ping-pong
        // would never settle, but even a plain copy chain accumulates steps.
        let design = frontend(TWO_STAGE).unwrap();
        let mut s = Simulator::with_options(
            &design,
            SimOptions {
                max_total_steps: Some(3),
                ..SimOptions::default()
            },
        )
        .unwrap();
        let err = s.run_until_quiescent(20).unwrap_err();
        assert_eq!(err, SimError::TotalStepLimitExceeded { limit: 3 });
        assert!(err.pos().is_none());
        assert!(err.to_string().contains("total budget of 3"));
        // The same run with no total cap completes and reports its count.
        let mut free = Simulator::new(&design).unwrap();
        free.run_until_quiescent(20).unwrap();
        assert!(free.total_step_count() > 3);
    }

    #[test]
    fn slice_assignment_to_signals_and_variables() {
        let src = "entity e is port(a : in std_logic_vector(7 downto 0);
                                    b : out std_logic_vector(7 downto 0)); end e;
             architecture rtl of e is begin
               p : process
                 variable v : std_logic_vector(7 downto 0) := \"00000000\";
               begin
                 v(7 downto 4) := a(3 downto 0);
                 b(3 downto 0) <= v(7 downto 4);
                 b(7 downto 4) <= \"1001\";
                 wait on a;
               end process p;
             end rtl;";
        let mut s = sim(src);
        s.run_until_quiescent(10).unwrap();
        s.drive_input_unsigned("a", 0b0000_0110).unwrap();
        s.run_until_quiescent(10).unwrap();
        assert_eq!(s.signal("b").unwrap().to_literal(), "10010110");
    }

    #[test]
    fn initialised_signals_and_variables() {
        let src = "entity e is port(a : in std_logic); end e;
             architecture rtl of e is
               signal t : std_logic_vector(3 downto 0) := \"1010\";
             begin
               p : process begin null; wait on a; end process p;
             end rtl;";
        let s = sim(src);
        assert_eq!(s.signal("t").unwrap().to_literal(), "1010");
    }

    #[test]
    fn shared_compiled_designs_reproduce_fresh_simulations() {
        let design = frontend(TWO_STAGE).unwrap();
        let compiled = Arc::new(CompiledDesign::compile(&design).unwrap());
        let mut a = Simulator::from_compiled(Arc::clone(&compiled), SimOptions::default());
        let mut b = Simulator::from_compiled(Arc::clone(&compiled), SimOptions::default());
        for s in [&mut a, &mut b] {
            s.run_until_quiescent(20).unwrap();
            s.drive_input_unsigned("a", 0b1100).unwrap();
            s.run_until_quiescent(20).unwrap();
        }
        assert_eq!(a.signal("b"), b.signal("b"));
        assert_eq!(a.delta_count(), b.delta_count());
    }

    #[test]
    fn strict_conditions_error_with_process_attribution() {
        let src = "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is begin
               p : process begin
                 if a = '1' then b <= '1'; else b <= '0'; end if;
                 wait on a;
               end process p;
             end rtl;";
        let design = frontend(src).unwrap();
        let mut s = Simulator::with_options(
            &design,
            SimOptions {
                strict_conditions: true,
                ..SimOptions::default()
            },
        )
        .unwrap();
        // `a` is 'U', so `a = '1'` is 'X' — not a boolean.
        let err = s.run_until_quiescent(10).unwrap_err();
        assert!(err.pos().is_some(), "parsed condition carries its position");
        match err {
            SimError::NonBooleanCondition { process, value, .. } => {
                assert_eq!(process, "p");
                assert_eq!(value, Value::Logic(Logic::X));
            }
            other => panic!("expected NonBooleanCondition, got {other:?}"),
        }
    }
}
