//! The `std_logic` value domain of Section 3 and IEEE 1164.
//!
//! Logical values capture electrical behaviour beyond booleans: unknowns,
//! high impedance, weak drivers and don't-cares.  Signals driven by several
//! processes are combined with the standard resolution function, which the
//! semantics applies to the multiset of active values at each
//! synchronisation point.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single standard-logic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Logic {
    /// `'U'` — uninitialised.
    U,
    /// `'X'` — forcing unknown.
    X,
    /// `'0'` — forcing zero.
    Zero,
    /// `'1'` — forcing one.
    One,
    /// `'Z'` — high impedance.
    Z,
    /// `'W'` — weak unknown.
    W,
    /// `'L'` — weak zero.
    L,
    /// `'H'` — weak one.
    H,
    /// `'-'` — don't care.
    DontCare,
}

impl Logic {
    /// All nine values in standard order.
    pub const ALL: [Logic; 9] = [
        Logic::U,
        Logic::X,
        Logic::Zero,
        Logic::One,
        Logic::Z,
        Logic::W,
        Logic::L,
        Logic::H,
        Logic::DontCare,
    ];

    /// Parses the character form (`'U'`, `'X'`, `'0'`, ...).
    pub fn from_char(c: char) -> Option<Logic> {
        Some(match c.to_ascii_uppercase() {
            'U' => Logic::U,
            'X' => Logic::X,
            '0' => Logic::Zero,
            '1' => Logic::One,
            'Z' => Logic::Z,
            'W' => Logic::W,
            'L' => Logic::L,
            'H' => Logic::H,
            '-' => Logic::DontCare,
            _ => return None,
        })
    }

    /// The character form of the value.
    pub fn to_char(self) -> char {
        match self {
            Logic::U => 'U',
            Logic::X => 'X',
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::Z => 'Z',
            Logic::W => 'W',
            Logic::L => 'L',
            Logic::H => 'H',
            Logic::DontCare => '-',
        }
    }

    /// The boolean interpretation: `'1'`/`'H'` are true, `'0'`/`'L'` are
    /// false, everything else is undetermined.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::One | Logic::H => Some(true),
            Logic::Zero | Logic::L => Some(false),
            _ => None,
        }
    }

    /// Converts a boolean to a forcing logic level.
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    fn strength_index(self) -> usize {
        match self {
            Logic::U => 0,
            Logic::X => 1,
            Logic::Zero => 2,
            Logic::One => 3,
            Logic::Z => 4,
            Logic::W => 5,
            Logic::L => 6,
            Logic::H => 7,
            Logic::DontCare => 8,
        }
    }

    /// The IEEE 1164 resolution of two simultaneously driven values.
    pub fn resolve(self, other: Logic) -> Logic {
        use Logic::{One as I, Zero as O, H, L, U, W, X, Z};
        // resolution_table[a][b] from the std_logic_1164 package.
        const T: [[Logic; 9]; 9] = [
            // U  X  0  1  Z  W  L  H  -
            [U, U, U, U, U, U, U, U, U], // U
            [U, X, X, X, X, X, X, X, X], // X
            [U, X, O, X, O, O, O, O, X], // 0
            [U, X, X, I, I, I, I, I, X], // 1
            [U, X, O, I, Z, W, L, H, X], // Z
            [U, X, O, I, W, W, W, W, X], // W
            [U, X, O, I, L, W, L, W, X], // L
            [U, X, O, I, H, W, W, H, X], // H
            [U, X, X, X, X, X, X, X, X], // -
        ];
        T[self.strength_index()][other.strength_index()]
    }

    /// IEEE 1164 `and`.
    pub fn and(self, other: Logic) -> Logic {
        match (self.to_x01(), other.to_x01()) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// IEEE 1164 `or`.
    pub fn or(self, other: Logic) -> Logic {
        match (self.to_x01(), other.to_x01()) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// IEEE 1164 `xor`.
    pub fn xor(self, other: Logic) -> Logic {
        match (self.to_x01(), other.to_x01()) {
            (Logic::Zero, Logic::Zero) | (Logic::One, Logic::One) => Logic::Zero,
            (Logic::Zero, Logic::One) | (Logic::One, Logic::Zero) => Logic::One,
            _ => Logic::X,
        }
    }

    /// IEEE 1164 `not`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Logic {
        match self.to_x01() {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Normalises to the `X01` subtype used by the gate operators.
    pub fn to_x01(self) -> Logic {
        match self {
            Logic::Zero | Logic::L => Logic::Zero,
            Logic::One | Logic::H => Logic::One,
            _ => Logic::X,
        }
    }

    /// The dense 4-bit code of the value used by the packed representation
    /// of [`crate::packed::PackedValue`] (standard order, `'U'` = 0).
    pub fn code(self) -> u8 {
        self.strength_index() as u8
    }

    /// The inverse of [`Logic::code`].
    ///
    /// # Panics
    ///
    /// Panics when `code` is not one of the nine standard codes (`0..=8`).
    pub fn from_code(code: u8) -> Logic {
        Logic::ALL[code as usize]
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "'{}'", self.to_char())
    }
}

/// Resolves a non-empty multiset of simultaneously driven values (the
/// resolution function `f_s` of Section 3.2).  Returns `None` on an empty
/// input.
pub fn resolve_all<I: IntoIterator<Item = Logic>>(values: I) -> Option<Logic> {
    values.into_iter().reduce(Logic::resolve)
}

/// A runtime value: a single logic level or a vector of them.
///
/// Vectors are stored in *declaration order* (leftmost element first, exactly
/// as written in a string literal), with index mapping supplied by the
/// declared type when slices are taken.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A scalar `std_logic` value.
    Logic(Logic),
    /// A vector of `std_logic` values, leftmost first.
    Vector(Vec<Logic>),
}

impl Value {
    /// A scalar value from a character.
    pub fn logic(c: char) -> Option<Value> {
        Logic::from_char(c).map(Value::Logic)
    }

    /// A vector value from its string literal form (e.g. `"0101"`).
    pub fn vector(s: &str) -> Option<Value> {
        s.chars()
            .map(Logic::from_char)
            .collect::<Option<Vec<_>>>()
            .map(Value::Vector)
    }

    /// A vector of the given width filled with `fill`.
    pub fn filled(width: usize, fill: Logic) -> Value {
        if width == 1 {
            Value::Logic(fill)
        } else {
            Value::Vector(vec![fill; width])
        }
    }

    /// A vector of the given width holding the unsigned value `n`
    /// (leftmost bit is the most significant).
    pub fn from_unsigned(n: u128, width: usize) -> Value {
        let bits: Vec<Logic> = (0..width)
            .rev()
            .map(|i| {
                if (n >> i) & 1 == 1 {
                    Logic::One
                } else {
                    Logic::Zero
                }
            })
            .collect();
        if width == 1 {
            Value::Logic(bits[0])
        } else {
            Value::Vector(bits)
        }
    }

    /// The number of logic elements.
    pub fn width(&self) -> usize {
        match self {
            Value::Logic(_) => 1,
            Value::Vector(v) => v.len(),
        }
    }

    /// The elements of the value, leftmost first.
    pub fn bits(&self) -> Vec<Logic> {
        match self {
            Value::Logic(l) => vec![*l],
            Value::Vector(v) => v.clone(),
        }
    }

    /// Rebuilds a value from bits (scalar when a single bit).
    pub fn from_bits(bits: Vec<Logic>) -> Value {
        if bits.len() == 1 {
            Value::Logic(bits[0])
        } else {
            Value::Vector(bits)
        }
    }

    /// Interprets the value as an unsigned integer if every bit is a defined
    /// zero or one.
    pub fn to_unsigned(&self) -> Option<u128> {
        let mut acc: u128 = 0;
        for b in self.bits() {
            acc = (acc << 1) | u128::from(b.to_bool()?);
        }
        Some(acc)
    }

    /// The scalar boolean interpretation (only for width-1 values).
    pub fn to_bool(&self) -> Option<bool> {
        match self {
            Value::Logic(l) => l.to_bool(),
            Value::Vector(v) if v.len() == 1 => v[0].to_bool(),
            _ => None,
        }
    }

    /// Resizes to `width`, truncating or zero-extending on the left (most
    /// significant side).
    pub fn resized(&self, width: usize) -> Value {
        let bits = self.bits();
        let mut out = if bits.len() >= width {
            bits[bits.len() - width..].to_vec()
        } else {
            let mut v = vec![Logic::Zero; width - bits.len()];
            v.extend(bits);
            v
        };
        if out.is_empty() {
            out.push(Logic::Zero);
        }
        Value::from_bits(out)
    }

    /// The string-literal form of the value (without quotes).
    pub fn to_literal(&self) -> String {
        self.bits().iter().map(|b| b.to_char()).collect()
    }

    /// Element-wise resolution of two values of the same width.
    pub fn resolve_with(&self, other: &Value) -> Value {
        let (a, b) = (self.bits(), other.bits());
        if a.len() != b.len() {
            // Mismatched drivers resolve to unknowns of the larger width.
            return Value::filled(a.len().max(b.len()), Logic::X);
        }
        Value::from_bits(a.iter().zip(&b).map(|(x, y)| x.resolve(*y)).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Logic(l) => write!(f, "{l}"),
            Value::Vector(_) => write!(f, "\"{}\"", self.to_literal()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_roundtrip() {
        for l in Logic::ALL {
            assert_eq!(Logic::from_char(l.to_char()), Some(l));
        }
        assert_eq!(Logic::from_char('q'), None);
    }

    #[test]
    fn resolution_table_properties() {
        // Commutative.
        for a in Logic::ALL {
            for b in Logic::ALL {
                assert_eq!(a.resolve(b), b.resolve(a));
            }
        }
        // 'U' dominates, 'Z' is the identity-ish weak value.
        assert_eq!(Logic::U.resolve(Logic::One), Logic::U);
        assert_eq!(Logic::Z.resolve(Logic::One), Logic::One);
        assert_eq!(Logic::Zero.resolve(Logic::One), Logic::X);
        assert_eq!(Logic::L.resolve(Logic::H), Logic::W);
        assert_eq!(
            resolve_all([Logic::Z, Logic::Z, Logic::One]),
            Some(Logic::One)
        );
        assert_eq!(resolve_all(std::iter::empty::<Logic>()), None);
    }

    #[test]
    fn gate_operations() {
        assert_eq!(Logic::One.and(Logic::H), Logic::One);
        assert_eq!(Logic::Zero.and(Logic::U), Logic::Zero);
        assert_eq!(Logic::One.or(Logic::U), Logic::One);
        assert_eq!(Logic::One.xor(Logic::One), Logic::Zero);
        assert_eq!(Logic::One.xor(Logic::Zero), Logic::One);
        assert_eq!(Logic::X.xor(Logic::One), Logic::X);
        assert_eq!(Logic::L.not(), Logic::One);
        assert_eq!(Logic::U.not(), Logic::X);
    }

    #[test]
    fn value_constructors_and_conversions() {
        let v = Value::vector("0101").unwrap();
        assert_eq!(v.width(), 4);
        assert_eq!(v.to_unsigned(), Some(5));
        assert_eq!(Value::from_unsigned(5, 4), v);
        assert_eq!(v.to_literal(), "0101");
        assert_eq!(Value::logic('1').unwrap().to_bool(), Some(true));
        assert_eq!(Value::logic('Z').unwrap().to_bool(), None);
        assert_eq!(Value::filled(3, Logic::U).to_literal(), "UUU");
        assert!(Value::vector("01q").is_none());
    }

    #[test]
    fn resized_truncates_and_extends() {
        let v = Value::vector("0101").unwrap();
        assert_eq!(v.resized(2).to_literal(), "01");
        assert_eq!(v.resized(6).to_literal(), "000101");
        assert_eq!(v.resized(4), v);
        assert_eq!(Value::Logic(Logic::One).resized(4).to_literal(), "0001");
    }

    #[test]
    fn elementwise_resolution() {
        let a = Value::vector("01Z").unwrap();
        let b = Value::vector("Z1H").unwrap();
        assert_eq!(a.resolve_with(&b).to_literal(), "01H");
        // Mismatched widths degrade to unknowns.
        assert_eq!(
            a.resolve_with(&Value::logic('1').unwrap()).to_literal(),
            "XXX"
        );
    }

    #[test]
    fn unsigned_requires_defined_bits() {
        assert_eq!(Value::vector("0X1").unwrap().to_unsigned(), None);
        assert_eq!(Value::vector("0H1").unwrap().to_unsigned(), Some(3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::logic('1').unwrap().to_string(), "'1'");
        assert_eq!(Value::vector("10").unwrap().to_string(), "\"10\"");
    }
}
