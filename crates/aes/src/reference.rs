//! A from-scratch AES-128 reference implementation (FIPS-197).
//!
//! The reference model serves two purposes: it is the oracle against which
//! the generated VHDL1 implementation is validated with the `vhdl1-sim`
//! simulator, and its per-transformation functions (SubBytes, ShiftRows,
//! MixColumns, AddRoundKey, the key schedule) are exposed so that each
//! generated VHDL1 component can be checked in isolation.

/// The AES S-box.
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The round constants of the AES-128 key schedule.
pub const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// The AES state: 16 bytes in column-major order (`state[r + 4*c]` is the
/// byte in row `r`, column `c`), exactly as FIPS-197 lays out the block.
pub type State = [u8; 16];

/// Multiplication by `x` in GF(2^8) modulo the AES polynomial.
pub fn xtime(b: u8) -> u8 {
    let shifted = b << 1;
    if b & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

/// GF(2^8) multiplication.
pub fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// SubBytes: apply the S-box to every byte of the state.
pub fn sub_bytes(state: &mut State) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// ShiftRows: rotate row `r` left by `r` positions.
pub fn shift_rows(state: &mut State) {
    let old = *state;
    for r in 0..4 {
        for c in 0..4 {
            state[r + 4 * c] = old[r + 4 * ((c + r) % 4)];
        }
    }
}

/// MixColumns: multiply each column by the fixed MDS matrix.
pub fn mix_columns(state: &mut State) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[1 + 4 * c],
            state[2 + 4 * c],
            state[3 + 4 * c],
        ];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[1 + 4 * c] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[2 + 4 * c] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[3 + 4 * c] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

/// AddRoundKey: xor the round key into the state.
pub fn add_round_key(state: &mut State, round_key: &State) {
    for (s, k) in state.iter_mut().zip(round_key) {
        *s ^= k;
    }
}

/// The AES-128 key schedule: expands a 16-byte key into 11 round keys.
///
/// Round keys are returned in transmission (block) order — the concatenation
/// of the words `w[4r] .. w[4r+3]` — so `keys[0]` equals the cipher key;
/// convert with [`block_to_state`] before xoring into a [`State`].
pub fn key_schedule(key: &[u8; 16]) -> [State; 11] {
    // w[i] are 4-byte words, 44 of them.
    let mut w = [[0u8; 4]; 44];
    for (i, chunk) in key.chunks(4).enumerate() {
        w[i].copy_from_slice(chunk);
    }
    for i in 4..44 {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            temp.rotate_left(1);
            for b in temp.iter_mut() {
                *b = SBOX[*b as usize];
            }
            temp[0] ^= RCON[i / 4 - 1];
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ temp[j];
        }
    }
    // Repack words into blocks: round key `round` is w[4*round] .. w[4*round+3].
    let mut keys = [[0u8; 16]; 11];
    for (round, key) in keys.iter_mut().enumerate() {
        for c in 0..4 {
            for r in 0..4 {
                key[4 * c + r] = w[4 * round + c][r];
            }
        }
    }
    keys
}

/// Converts a 16-byte block (as transmitted) into the column-major [`State`].
pub fn block_to_state(block: &[u8; 16]) -> State {
    let mut state = [0u8; 16];
    for c in 0..4 {
        for r in 0..4 {
            state[r + 4 * c] = block[4 * c + r];
        }
    }
    state
}

/// Converts a column-major [`State`] back into a 16-byte block.
pub fn state_to_block(state: &State) -> [u8; 16] {
    let mut block = [0u8; 16];
    for c in 0..4 {
        for r in 0..4 {
            block[4 * c + r] = state[r + 4 * c];
        }
    }
    block
}

/// Encrypts one 16-byte block with AES-128.
pub fn encrypt_block(key: &[u8; 16], plaintext: &[u8; 16]) -> [u8; 16] {
    let keys = key_schedule(key);
    let round_keys: Vec<State> = keys.iter().map(block_to_state).collect();
    let mut state = block_to_state(plaintext);
    add_round_key(&mut state, &round_keys[0]);
    #[allow(clippy::needless_range_loop)]
    for round in 1..10 {
        sub_bytes(&mut state);
        shift_rows(&mut state);
        mix_columns(&mut state);
        add_round_key(&mut state, &round_keys[round]);
    }
    sub_bytes(&mut state);
    shift_rows(&mut state);
    add_round_key(&mut state, &round_keys[10]);
    state_to_block(&state)
}

/// Parses a 32-character hex string into 16 bytes (test helper).
pub fn hex_block(s: &str) -> [u8; 16] {
    assert_eq!(s.len(), 32, "hex block must be 32 characters");
    let mut out = [0u8; 16];
    for (i, byte) in out.iter_mut().enumerate() {
        *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("valid hex");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_appendix_b_vector() {
        let key = hex_block("2b7e151628aed2a6abf7158809cf4f3c");
        let pt = hex_block("3243f6a8885a308d313198a2e0370734");
        let ct = encrypt_block(&key, &pt);
        assert_eq!(ct, hex_block("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let key = hex_block("000102030405060708090a0b0c0d0e0f");
        let pt = hex_block("00112233445566778899aabbccddeeff");
        let ct = encrypt_block(&key, &pt);
        assert_eq!(ct, hex_block("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn shift_rows_leaves_row_zero_and_rotates_others() {
        // state[r + 4c]: fill with r*4 + c so rows are recognisable.
        let mut state = [0u8; 16];
        for r in 0..4 {
            for c in 0..4 {
                state[r + 4 * c] = (r * 4 + c) as u8;
            }
        }
        shift_rows(&mut state);
        for c in 0..4 {
            assert_eq!(state[4 * c], c as u8, "row 0 unchanged");
            assert_eq!(
                state[1 + 4 * c],
                (4 + (c + 1) % 4) as u8,
                "row 1 shifted by 1"
            );
            assert_eq!(
                state[2 + 4 * c],
                (8 + (c + 2) % 4) as u8,
                "row 2 shifted by 2"
            );
            assert_eq!(
                state[3 + 4 * c],
                (12 + (c + 3) % 4) as u8,
                "row 3 shifted by 3"
            );
        }
    }

    #[test]
    fn mix_columns_known_column() {
        // FIPS-197 / Wikipedia example column.
        let mut state = [0u8; 16];
        state[0] = 0xdb;
        state[1] = 0x13;
        state[2] = 0x53;
        state[3] = 0x45;
        mix_columns(&mut state);
        assert_eq!(&state[0..4], &[0x8e, 0x4d, 0xa1, 0xbc]);
    }

    #[test]
    fn gf_arithmetic() {
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(0x57, 0x02), xtime(0x57));
        assert_eq!(gf_mul(0x01, 0xab), 0xab);
    }

    #[test]
    fn key_schedule_first_and_last_round_keys() {
        let key = hex_block("2b7e151628aed2a6abf7158809cf4f3c");
        let keys = key_schedule(&key);
        assert_eq!(keys[0], key);
        // FIPS-197 appendix A.1: w[40..43] = d014f9a8 c9ee2589 e13f0cc8 b6630ca6
        assert_eq!(keys[10], hex_block("d014f9a8c9ee2589e13f0cc8b6630ca6"));
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &b in SBOX.iter() {
            assert!(!seen[b as usize], "duplicate S-box entry {b:#x}");
            seen[b as usize] = true;
        }
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x53], 0xed);
    }

    #[test]
    fn block_state_roundtrip() {
        let block = hex_block("000102030405060708090a0b0c0d0e0f");
        assert_eq!(state_to_block(&block_to_state(&block)), block);
        // Column-major layout: state[1] is the second byte of the first column.
        assert_eq!(block_to_state(&block)[1], 0x01);
        assert_eq!(block_to_state(&block)[4], 0x04);
    }
}
