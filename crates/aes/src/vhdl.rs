//! Generators for VHDL1 implementations of the AES-128 transformations.
//!
//! The NSA test implementation evaluated in the paper is not distributed, so
//! these generators produce an equivalent VHDL1 code base with the property
//! the evaluation hinges on: the state is held in per-byte resources named
//! `a_<row>_<col>` / `s_<i>`, and the transformations route values through a
//! small set of **temporary variables that are reused across rows and
//! columns** (Section 6: "The values flow through temporary variables, which
//! are used for all three rows"), loops unrolled and constants propagated.
//!
//! Every generator returns plain VHDL1 source text; feed it to
//! [`vhdl1_syntax::frontend`] for analysis or to `vhdl1_sim` for validation
//! against the reference model in [`crate::reference`].

use crate::reference::{RCON, SBOX};
use std::fmt::Write as _;

/// Formats a byte as an 8-bit VHDL vector literal.
pub fn bin8(v: u8) -> String {
    format!("\"{v:08b}\"")
}

/// The port/resource name of state byte in row `r`, column `c` with the given
/// prefix (`a_1_2` style, matching the node names of Figure 5).
pub fn byte_name(prefix: &str, row: usize, col: usize) -> String {
    format!("{prefix}_{row}_{col}")
}

fn emit_sbox_chain(out: &mut String, indent: &str, input: &str, output: &str) {
    for (i, &s) in SBOX.iter().enumerate() {
        let kw = if i == 0 { "if" } else { "elsif" };
        let _ = writeln!(out, "{indent}{kw} {input} = {} then", bin8(i as u8));
        let _ = writeln!(out, "{indent}  {output} := {};", bin8(s));
    }
    let _ = writeln!(out, "{indent}end if;");
}

fn port_list(prefix: &str, dir: &str) -> String {
    let mut names = Vec::new();
    for r in 0..4 {
        for c in 0..4 {
            names.push(byte_name(prefix, r, c));
        }
    }
    format!("{} : {dir} std_logic_vector(7 downto 0)", names.join(", "))
}

/// The ShiftRows workload of Figure 5: row 0 is copied unchanged, rows 1–3
/// are rotated left by 1, 2 and 3 positions, all through the same four
/// temporary variables.
pub fn shift_rows_vhdl() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "entity shift_rows is");
    let _ = writeln!(out, "  port(");
    let _ = writeln!(out, "    {};", port_list("a", "in"));
    let _ = writeln!(out, "    {}", port_list("b", "out"));
    let _ = writeln!(out, "  );");
    let _ = writeln!(out, "end shift_rows;");
    let _ = writeln!(out, "architecture rtl of shift_rows is");
    let _ = writeln!(out, "begin");
    let _ = writeln!(out, "  shifter : process");
    for t in 0..4 {
        let _ = writeln!(out, "    variable temp_{t} : std_logic_vector(7 downto 0);");
    }
    let _ = writeln!(out, "  begin");
    // Row 0 passes through untouched (the paper presents only rows 1-3).
    for c in 0..4 {
        let _ = writeln!(
            out,
            "    {} <= {};",
            byte_name("b", 0, c),
            byte_name("a", 0, c)
        );
    }
    // Rows 1-3: load the row into the shared temporaries, then emit rotated.
    for row in 1..4 {
        for c in 0..4 {
            let _ = writeln!(out, "    temp_{c} := {};", byte_name("a", row, c));
        }
        for c in 0..4 {
            let src = (c + row) % 4;
            let _ = writeln!(out, "    {} <= temp_{src};", byte_name("b", row, c));
        }
    }
    let wait_on: Vec<String> = (0..4)
        .flat_map(|r| (0..4).map(move |c| byte_name("a", r, c)))
        .collect();
    let _ = writeln!(out, "    wait on {};", wait_on.join(", "));
    let _ = writeln!(out, "  end process shifter;");
    let _ = writeln!(out, "end rtl;");
    out
}

/// AddRoundKey over `nbytes` state bytes: `b_i <= a_i xor k_i`, routed
/// through one shared temporary.
pub fn add_round_key_vhdl(nbytes: usize) -> String {
    let mut out = String::new();
    let names = |p: &str| {
        (0..nbytes)
            .map(|i| format!("{p}_{i}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(out, "entity add_round_key is");
    let _ = writeln!(out, "  port(");
    let _ = writeln!(out, "    {} : in std_logic_vector(7 downto 0);", names("a"));
    let _ = writeln!(out, "    {} : in std_logic_vector(7 downto 0);", names("k"));
    let _ = writeln!(out, "    {} : out std_logic_vector(7 downto 0)", names("b"));
    let _ = writeln!(out, "  );");
    let _ = writeln!(out, "end add_round_key;");
    let _ = writeln!(out, "architecture rtl of add_round_key is");
    let _ = writeln!(out, "begin");
    let _ = writeln!(out, "  ark : process");
    let _ = writeln!(out, "    variable temp : std_logic_vector(7 downto 0);");
    let _ = writeln!(out, "  begin");
    for i in 0..nbytes {
        let _ = writeln!(out, "    temp := a_{i} xor k_{i};");
        let _ = writeln!(out, "    b_{i} <= temp;");
    }
    let wait_on: Vec<String> = (0..nbytes)
        .flat_map(|i| [format!("a_{i}"), format!("k_{i}")])
        .collect();
    let _ = writeln!(out, "    wait on {};", wait_on.join(", "));
    let _ = writeln!(out, "  end process ark;");
    let _ = writeln!(out, "end rtl;");
    out
}

/// SubBytes over `nbytes` state bytes, each through the full 256-entry S-box
/// lookup chain and a shared temporary variable.
pub fn sub_bytes_vhdl(nbytes: usize) -> String {
    let mut out = String::new();
    let names = |p: &str| {
        (0..nbytes)
            .map(|i| format!("{p}_{i}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(out, "entity sub_bytes is");
    let _ = writeln!(out, "  port(");
    let _ = writeln!(out, "    {} : in std_logic_vector(7 downto 0);", names("a"));
    let _ = writeln!(out, "    {} : out std_logic_vector(7 downto 0)", names("b"));
    let _ = writeln!(out, "  );");
    let _ = writeln!(out, "end sub_bytes;");
    let _ = writeln!(out, "architecture rtl of sub_bytes is");
    let _ = writeln!(out, "begin");
    let _ = writeln!(out, "  subber : process");
    let _ = writeln!(out, "    variable temp : std_logic_vector(7 downto 0);");
    let _ = writeln!(out, "  begin");
    for i in 0..nbytes {
        emit_sbox_chain(&mut out, "    ", &format!("a_{i}"), "temp");
        let _ = writeln!(out, "    b_{i} <= temp;");
    }
    let wait_on: Vec<String> = (0..nbytes).map(|i| format!("a_{i}")).collect();
    let _ = writeln!(out, "    wait on {};", wait_on.join(", "));
    let _ = writeln!(out, "  end process subber;");
    let _ = writeln!(out, "end rtl;");
    out
}

fn emit_xtime(out: &mut String, indent: &str, src: &str, dst: &str) {
    let _ = writeln!(out, "{indent}{dst} := {src}(6 downto 0) & '0';");
    let _ = writeln!(out, "{indent}if {src}(7 downto 7) = '1' then");
    let _ = writeln!(out, "{indent}  {dst} := {dst} xor \"00011011\";");
    let _ = writeln!(out, "{indent}end if;");
}

/// MixColumns over the full 16-byte state (`a_0 .. a_15` in block order),
/// column by column through shared temporaries.
pub fn mix_columns_vhdl() -> String {
    let mut out = String::new();
    let names = |p: &str| {
        (0..16)
            .map(|i| format!("{p}_{i}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(out, "entity mix_columns is");
    let _ = writeln!(out, "  port(");
    let _ = writeln!(out, "    {} : in std_logic_vector(7 downto 0);", names("a"));
    let _ = writeln!(out, "    {} : out std_logic_vector(7 downto 0)", names("b"));
    let _ = writeln!(out, "  );");
    let _ = writeln!(out, "end mix_columns;");
    let _ = writeln!(out, "architecture rtl of mix_columns is");
    let _ = writeln!(out, "begin");
    let _ = writeln!(out, "  mixer : process");
    for v in [
        "c_0", "c_1", "c_2", "c_3", "x_0", "x_1", "x_2", "x_3", "acc",
    ] {
        let _ = writeln!(out, "    variable {v} : std_logic_vector(7 downto 0);");
    }
    let _ = writeln!(out, "  begin");
    for col in 0..4 {
        for r in 0..4 {
            let _ = writeln!(out, "    c_{r} := a_{};", 4 * col + r);
        }
        for r in 0..4 {
            emit_xtime(&mut out, "    ", &format!("c_{r}"), &format!("x_{r}"));
        }
        // Row formulas of the MDS matrix: 2 3 1 1 / 1 2 3 1 / 1 1 2 3 / 3 1 1 2.
        let formulas = [
            "x_0 xor (x_1 xor c_1) xor c_2 xor c_3",
            "c_0 xor x_1 xor (x_2 xor c_2) xor c_3",
            "c_0 xor c_1 xor x_2 xor (x_3 xor c_3)",
            "(x_0 xor c_0) xor c_1 xor c_2 xor x_3",
        ];
        for (r, f) in formulas.iter().enumerate() {
            let _ = writeln!(out, "    acc := {f};");
            let _ = writeln!(out, "    b_{} <= acc;", 4 * col + r);
        }
    }
    let wait_on: Vec<String> = (0..16).map(|i| format!("a_{i}")).collect();
    let _ = writeln!(out, "    wait on {};", wait_on.join(", "));
    let _ = writeln!(out, "  end process mixer;");
    let _ = writeln!(out, "end rtl;");
    out
}

/// One full AES round (SubBytes, ShiftRows, MixColumns, AddRoundKey) over the
/// 16-byte state in block order, fully unrolled.
pub fn aes_round_vhdl() -> String {
    let mut out = String::new();
    let names = |p: &str| {
        (0..16)
            .map(|i| format!("{p}_{i}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(out, "entity aes_round is");
    let _ = writeln!(out, "  port(");
    let _ = writeln!(out, "    {} : in std_logic_vector(7 downto 0);", names("a"));
    let _ = writeln!(out, "    {} : in std_logic_vector(7 downto 0);", names("k"));
    let _ = writeln!(out, "    {} : out std_logic_vector(7 downto 0)", names("b"));
    let _ = writeln!(out, "  );");
    let _ = writeln!(out, "end aes_round;");
    let _ = writeln!(out, "architecture rtl of aes_round is");
    let _ = writeln!(out, "begin");
    let _ = writeln!(out, "  round : process");
    for i in 0..16 {
        let _ = writeln!(out, "    variable s_{i} : std_logic_vector(7 downto 0);");
    }
    for v in [
        "temp", "t_0", "t_1", "t_2", "t_3", "x_0", "x_1", "x_2", "x_3",
    ] {
        let _ = writeln!(out, "    variable {v} : std_logic_vector(7 downto 0);");
    }
    let _ = writeln!(out, "  begin");
    // SubBytes straight from the inputs.
    for i in 0..16 {
        emit_sbox_chain(&mut out, "    ", &format!("a_{i}"), "temp");
        let _ = writeln!(out, "    s_{i} := temp;");
    }
    emit_round_tail(&mut out, true);
    for i in 0..16 {
        let _ = writeln!(out, "    s_{i} := s_{i} xor k_{i};");
        let _ = writeln!(out, "    b_{i} <= s_{i};");
    }
    let wait_on: Vec<String> = (0..16)
        .flat_map(|i| [format!("a_{i}"), format!("k_{i}")])
        .collect();
    let _ = writeln!(out, "    wait on {};", wait_on.join(", "));
    let _ = writeln!(out, "  end process round;");
    let _ = writeln!(out, "end rtl;");
    out
}

/// Emits ShiftRows (+ MixColumns when `mix` is set) over the byte variables
/// `s_0 .. s_15`, using the temporaries `t_*` and `x_*`.
fn emit_round_tail(out: &mut String, mix: bool) {
    // ShiftRows: row r of the state lives at s_{r}, s_{r+4}, s_{r+8}, s_{r+12}.
    for row in 1..4 {
        for c in 0..4 {
            let _ = writeln!(out, "    t_{c} := s_{};", 4 * c + row);
        }
        for c in 0..4 {
            let src = (c + row) % 4;
            let _ = writeln!(out, "    s_{} := t_{src};", 4 * c + row);
        }
    }
    if mix {
        for col in 0..4 {
            for r in 0..4 {
                let _ = writeln!(out, "    t_{r} := s_{};", 4 * col + r);
            }
            for r in 0..4 {
                emit_xtime(out, "    ", &format!("t_{r}"), &format!("x_{r}"));
            }
            let formulas = [
                "x_0 xor (x_1 xor t_1) xor t_2 xor t_3",
                "t_0 xor x_1 xor (x_2 xor t_2) xor t_3",
                "t_0 xor t_1 xor x_2 xor (x_3 xor t_3)",
                "(x_0 xor t_0) xor t_1 xor t_2 xor x_3",
            ];
            for (r, f) in formulas.iter().enumerate() {
                let _ = writeln!(out, "    s_{} := {f};", 4 * col + r);
            }
        }
    }
}

/// The complete AES-128 encryption, fully unrolled (all ten rounds and the
/// key schedule inline), over 16-byte-wide `pt`/`key` inputs exposed as
/// per-byte ports in block order.
pub fn aes128_vhdl() -> String {
    let mut out = String::new();
    let names = |p: &str| {
        (0..16)
            .map(|i| format!("{p}_{i}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(out, "entity aes128 is");
    let _ = writeln!(out, "  port(");
    let _ = writeln!(
        out,
        "    {} : in std_logic_vector(7 downto 0);",
        names("pt")
    );
    let _ = writeln!(
        out,
        "    {} : in std_logic_vector(7 downto 0);",
        names("key")
    );
    let _ = writeln!(
        out,
        "    {} : out std_logic_vector(7 downto 0)",
        names("ct")
    );
    let _ = writeln!(out, "  );");
    let _ = writeln!(out, "end aes128;");
    let _ = writeln!(out, "architecture rtl of aes128 is");
    let _ = writeln!(out, "begin");
    let _ = writeln!(out, "  cipher : process");
    for i in 0..16 {
        let _ = writeln!(out, "    variable s_{i} : std_logic_vector(7 downto 0);");
        let _ = writeln!(out, "    variable rk_{i} : std_logic_vector(7 downto 0);");
    }
    for v in [
        "temp", "t_0", "t_1", "t_2", "t_3", "x_0", "x_1", "x_2", "x_3", "g_0", "g_1", "g_2", "g_3",
    ] {
        let _ = writeln!(out, "    variable {v} : std_logic_vector(7 downto 0);");
    }
    let _ = writeln!(out, "  begin");
    // Load state and initial round key.
    for i in 0..16 {
        let _ = writeln!(out, "    rk_{i} := key_{i};");
        let _ = writeln!(out, "    s_{i} := pt_{i} xor rk_{i};");
    }
    for round in 1..=10 {
        // SubBytes.
        for i in 0..16 {
            emit_sbox_chain(&mut out, "    ", &format!("s_{i}"), "temp");
            let _ = writeln!(out, "    s_{i} := temp;");
        }
        // ShiftRows (+ MixColumns except in the last round).
        emit_round_tail(&mut out, round != 10);
        // Key schedule: rk <- next round key.  The g function uses the last
        // word rk_12..rk_15 rotated by one byte.
        for (j, src) in [13usize, 14, 15, 12].iter().enumerate() {
            emit_sbox_chain(&mut out, "    ", &format!("rk_{src}"), "temp");
            let _ = writeln!(out, "    g_{j} := temp;");
        }
        let _ = writeln!(out, "    g_0 := g_0 xor {};", bin8(RCON[round - 1]));
        for word in 0..4 {
            for j in 0..4 {
                let idx = 4 * word + j;
                if word == 0 {
                    let _ = writeln!(out, "    rk_{idx} := rk_{idx} xor g_{j};");
                } else {
                    let _ = writeln!(
                        out,
                        "    rk_{idx} := rk_{idx} xor rk_{};",
                        4 * (word - 1) + j
                    );
                }
            }
        }
        // AddRoundKey.
        for i in 0..16 {
            let _ = writeln!(out, "    s_{i} := s_{i} xor rk_{i};");
        }
    }
    for i in 0..16 {
        let _ = writeln!(out, "    ct_{i} <= s_{i};");
    }
    let wait_on: Vec<String> = (0..16)
        .flat_map(|i| [format!("pt_{i}"), format!("key_{i}")])
        .collect();
    let _ = writeln!(out, "    wait on {};", wait_on.join(", "));
    let _ = writeln!(out, "  end process cipher;");
    let _ = writeln!(out, "end rtl;");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use vhdl1_sim::{Simulator, Value};
    use vhdl1_syntax::frontend;

    fn drive_bytes(sim: &mut Simulator, prefix: &str, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            sim.drive_input_unsigned(&format!("{prefix}_{i}"), *b as u128)
                .unwrap();
        }
    }

    fn read_bytes(sim: &Simulator, prefix: &str, n: usize) -> Vec<u8> {
        (0..n)
            .map(|i| {
                sim.signal(&format!("{prefix}_{i}"))
                    .unwrap()
                    .to_unsigned()
                    .unwrap() as u8
            })
            .collect()
    }

    #[test]
    fn shift_rows_vhdl_matches_reference() {
        let design = frontend(&shift_rows_vhdl()).unwrap();
        let mut sim = Simulator::new(&design).unwrap();
        sim.run_until_quiescent(50).unwrap();
        // Drive a recognisable state: byte (r, c) = 16*r + c.
        let mut state = [0u8; 16];
        for r in 0..4 {
            for c in 0..4 {
                let v = (16 * r + c) as u8;
                state[r + 4 * c] = v;
                sim.drive_input(&byte_name("a", r, c), Value::from_unsigned(v as u128, 8))
                    .unwrap();
            }
        }
        sim.run_until_quiescent(50).unwrap();
        let mut expected = state;
        reference::shift_rows(&mut expected);
        for r in 0..4 {
            for c in 0..4 {
                let got = sim
                    .signal(&byte_name("b", r, c))
                    .unwrap()
                    .to_unsigned()
                    .unwrap() as u8;
                assert_eq!(got, expected[r + 4 * c], "mismatch at row {r} col {c}");
            }
        }
    }

    #[test]
    fn add_round_key_vhdl_matches_reference() {
        let design = frontend(&add_round_key_vhdl(8)).unwrap();
        let mut sim = Simulator::new(&design).unwrap();
        sim.run_until_quiescent(50).unwrap();
        let a: Vec<u8> = (0..8).map(|i| (i * 37 + 11) as u8).collect();
        let k: Vec<u8> = (0..8).map(|i| (i * 91 + 5) as u8).collect();
        drive_bytes(&mut sim, "a", &a);
        drive_bytes(&mut sim, "k", &k);
        sim.run_until_quiescent(50).unwrap();
        let out = read_bytes(&sim, "b", 8);
        for i in 0..8 {
            assert_eq!(out[i], a[i] ^ k[i]);
        }
    }

    #[test]
    fn sub_bytes_vhdl_matches_sbox() {
        let design = frontend(&sub_bytes_vhdl(2)).unwrap();
        let mut sim = Simulator::new(&design).unwrap();
        sim.run_until_quiescent(50).unwrap();
        for probe in [0x00u8, 0x53, 0xff, 0x10] {
            drive_bytes(&mut sim, "a", &[probe, probe.wrapping_add(1)]);
            sim.run_until_quiescent(50).unwrap();
            let out = read_bytes(&sim, "b", 2);
            assert_eq!(out[0], reference::SBOX[probe as usize]);
            assert_eq!(out[1], reference::SBOX[probe.wrapping_add(1) as usize]);
        }
    }

    #[test]
    fn mix_columns_vhdl_matches_reference() {
        let design = frontend(&mix_columns_vhdl()).unwrap();
        let mut sim = Simulator::new(&design).unwrap();
        sim.run_until_quiescent(50).unwrap();
        let mut state = [0u8; 16];
        state[..4].copy_from_slice(&[0xdb, 0x13, 0x53, 0x45]);
        state[4..8].copy_from_slice(&[0xf2, 0x0a, 0x22, 0x5c]);
        state[8..12].copy_from_slice(&[0x01, 0x01, 0x01, 0x01]);
        state[12..16].copy_from_slice(&[0xc6, 0xc6, 0xc6, 0xc6]);
        drive_bytes(&mut sim, "a", &state);
        sim.run_until_quiescent(50).unwrap();
        let mut expected = state;
        reference::mix_columns(&mut expected);
        assert_eq!(read_bytes(&sim, "b", 16), expected.to_vec());
    }

    #[test]
    fn aes_round_vhdl_matches_reference() {
        let design = frontend(&aes_round_vhdl()).unwrap();
        let mut sim = Simulator::new(&design).unwrap();
        sim.run_until_quiescent(50).unwrap();
        let state: Vec<u8> = (0..16).map(|i| (i * 17 + 3) as u8).collect();
        let key: Vec<u8> = (0..16).map(|i| (255 - i * 13) as u8).collect();
        drive_bytes(&mut sim, "a", &state);
        drive_bytes(&mut sim, "k", &key);
        sim.run_until_quiescent(50).unwrap();
        // The VHDL state is in block order; the reference works column-major.
        let mut expected = reference::block_to_state(&state.clone().try_into().unwrap());
        reference::sub_bytes(&mut expected);
        reference::shift_rows(&mut expected);
        reference::mix_columns(&mut expected);
        let key_state = reference::block_to_state(&key.clone().try_into().unwrap());
        reference::add_round_key(&mut expected, &key_state);
        let expected_block = reference::state_to_block(&expected);
        assert_eq!(read_bytes(&sim, "b", 16), expected_block.to_vec());
    }

    #[test]
    fn full_aes128_vhdl_matches_fips_vector() {
        let design = frontend(&aes128_vhdl()).unwrap();
        let mut sim = Simulator::new(&design).unwrap();
        sim.run_until_quiescent(50).unwrap();
        let key = reference::hex_block("000102030405060708090a0b0c0d0e0f");
        let pt = reference::hex_block("00112233445566778899aabbccddeeff");
        drive_bytes(&mut sim, "pt", &pt);
        drive_bytes(&mut sim, "key", &key);
        sim.run_until_quiescent(50).unwrap();
        let expected = reference::hex_block("69c4e0d86a7b0430d8cdb78070b4c55a");
        assert_eq!(read_bytes(&sim, "ct", 16), expected.to_vec());
    }

    #[test]
    fn generated_sources_have_expected_shape() {
        let sr = shift_rows_vhdl();
        assert!(sr.contains("entity shift_rows"));
        assert!(sr.contains("temp_3"));
        let sb = sub_bytes_vhdl(1);
        // One S-box chain has 256 branches.
        assert_eq!(sb.matches("elsif").count(), 255);
        assert!(bin8(0x63) == "\"01100011\"");
        assert_eq!(byte_name("a", 1, 2), "a_1_2");
    }
}
