//! # `aes-vhdl` — AES-128 workloads for the evaluation (Section 6)
//!
//! The paper evaluates its Information Flow analysis on the NSA AES-128 test
//! implementation, which is not publicly distributed.  This crate provides an
//! equivalent workload:
//!
//! * [`mod@reference`] — a from-scratch Rust AES-128 (FIPS-197) used as the
//!   validation oracle;
//! * [`vhdl`] — generators emitting VHDL1 source for SubBytes, ShiftRows
//!   (the Figure 5 workload), MixColumns, AddRoundKey, a full round and the
//!   complete ten-round cipher, in the style the paper describes: per-byte
//!   resources, loops unrolled, constants propagated, and temporary variables
//!   **reused across rows** — the property that separates the RD-based
//!   analysis from Kemmerer's method.
//!
//! ```
//! use aes_vhdl::vhdl::shift_rows_vhdl;
//!
//! let design = vhdl1_syntax::frontend(&shift_rows_vhdl())?;
//! assert_eq!(design.processes.len(), 1);
//! # Ok::<(), vhdl1_syntax::SyntaxError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reference;
pub mod vhdl;

pub use reference::{encrypt_block, hex_block, key_schedule, State, SBOX};
pub use vhdl::{
    add_round_key_vhdl, aes128_vhdl, aes_round_vhdl, byte_name, mix_columns_vhdl, shift_rows_vhdl,
    sub_bytes_vhdl,
};
