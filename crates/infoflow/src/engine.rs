//! Demand-driven analysis sessions: the [`Engine`] / [`Analysis`] query API.
//!
//! The paper's pipeline (Tables 6–9) is strictly staged, but callers rarely
//! need every stage: a dashboard asking for the flow graph of the base
//! closure should not pay for the Table-9 environment modelling, and a batch
//! driver re-analysing an unchanged source should not pay for anything at
//! all.  This module therefore exposes the analysis as *queries* over a
//! long-lived session:
//!
//! * [`Engine`] — a cross-design session holding the shared
//!   [`AnalysisOptions`], the content-hash memo table (previously private to
//!   the `vhdl1c` driver) and the per-stage computation counters.  An engine
//!   is cheap to create, [`Sync`], and designed to be shared by the worker
//!   threads of a batch driver.
//! * [`Analysis`] — a per-design handle whose stage accessors ([`rd`],
//!   [`local`], [`specialized`], [`global`], [`improved`], [`flow_graph`],
//!   [`kemmerer_graph`], …) compute on first demand into `OnceLock` slots
//!   and return **borrowed** artifacts.  Asking twice never recomputes;
//!   asking for a downstream stage computes exactly the upstream stages it
//!   needs and nothing else.
//! * [`EngineError`] — the structured error of the session API: the failing
//!   [`phase`](EngineError::phase), the source
//!   [`position`](EngineError::pos) (threaded through elaboration since the
//!   AST carries [`vhdl1_syntax::Span`]s) and the underlying
//!   [`SyntaxError`] as `std::error::Error::source`.
//!
//! The eager one-shot functions ([`crate::analyze`], [`crate::analyze_with`],
//! [`crate::analyze_source`], [`crate::analyze_all`]) are thin compatibility
//! wrappers that materialise an owned [`AnalysisResult`] from a finished
//! `Analysis` (see DESIGN.md for why they stay).
//!
//! [`rd`]: Analysis::rd
//! [`local`]: Analysis::local
//! [`specialized`]: Analysis::specialized
//! [`global`]: Analysis::global
//! [`improved`]: Analysis::improved
//! [`flow_graph`]: Analysis::flow_graph
//! [`kemmerer_graph`]: Analysis::kemmerer_graph

use crate::analysis::{AnalysisOptions, AnalysisResult};
use crate::closure::{global_closure, specialize_rd, SpecializedRd};
use crate::graph::FlowGraph;
use crate::improved::{improved_closure, ImprovedClosure};
use crate::kemmerer::kemmerer_graph_from_matrix;
use crate::local::local_dependencies;
use crate::policy::{audit, AuditReport, Policy};
use crate::rm::ResourceMatrix;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use vhdl1_dataflow::ReachingDefinitions;
use vhdl1_sim::{SimError, Simulator};
use vhdl1_syntax::{Design, Pos, SyntaxError, SyntaxErrorKind};

/// 64-bit FNV-1a content hash — the engine's cache key over source bytes.
///
/// Exposed because reports and external caches key on the same digest (the
/// `vhdl1c` `source_hash` field is `fnv1a:<hex>` of this function).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Retention policy of the engine's content-hash memo table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Memoize every analysed source for the lifetime of the engine (batch
    /// drivers: the working set is the corpus).
    #[default]
    Unbounded,
    /// Keep at most this many designs, evicting the least recently inserted.
    Capped(usize),
    /// Never memoize (one-shot compatibility wrappers).
    Disabled,
}

/// Configuration of an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineConfig {
    /// Options shared by every analysis of the session.
    pub options: AnalysisOptions,
    /// Memo-table retention.
    pub cache: CachePolicy,
}

/// The phase of the pipeline an [`EngineError`] originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePhase {
    /// Lexical analysis of the source text.
    Lex,
    /// Parsing.
    Parse,
    /// Elaboration (scoping, uniqueness and binding checks).
    Elaborate,
}

impl fmt::Display for EnginePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnginePhase::Lex => write!(f, "lex"),
            EnginePhase::Parse => write!(f, "parse"),
            EnginePhase::Elaborate => write!(f, "elaborate"),
        }
    }
}

/// A structured analysis-session error: failing phase, source position (when
/// the front end could attribute one) and the underlying cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    phase: EnginePhase,
    pos: Option<Pos>,
    message: String,
    source: SyntaxError,
}

impl EngineError {
    /// The phase that failed.
    pub fn phase(&self) -> EnginePhase {
        self.phase
    }

    /// Source position of the failure, if known (elaboration errors carry
    /// one whenever the AST node at fault was parsed rather than built
    /// programmatically).
    pub fn pos(&self) -> Option<Pos> {
        self.pos
    }

    /// `(line, column)` of the failure, if known.
    pub fn line_col(&self) -> Option<(u32, u32)> {
        self.pos.map(|p| (p.line, p.col))
    }

    /// The bare failure message (no phase/position prefix).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{} error at {p}: {}", self.phase, self.message),
            None => write!(f, "{} error: {}", self.phase, self.message),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl From<SyntaxError> for EngineError {
    fn from(e: SyntaxError) -> Self {
        EngineError {
            phase: match e.kind() {
                SyntaxErrorKind::Lex => EnginePhase::Lex,
                SyntaxErrorKind::Parse => EnginePhase::Parse,
                SyntaxErrorKind::Elaborate => EnginePhase::Elaborate,
            },
            pos: e.pos(),
            message: e.message().to_string(),
            source: e,
        }
    }
}

/// Snapshot of the per-stage computation counters of an [`Engine`].
///
/// Each field counts how many times the corresponding stage was *actually
/// computed* (memo hits do not count), summed over every [`Analysis`] of the
/// session.  Tests use this to prove laziness: querying only
/// [`Analysis::flow_graph`] under `improved: false` must leave
/// [`improved`](EngineStats::improved) at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Front-end runs (parse + elaborate) on behalf of
    /// [`Engine::analyze_source`].
    pub frontend: u64,
    /// Reaching Definitions computations (Section 4).
    pub rd: u64,
    /// Local Resource Matrix computations (Table 6).
    pub local: u64,
    /// RD specialisations (Table 7).
    pub specialized: u64,
    /// Base closures (Table 8).
    pub global: u64,
    /// Improved closures (Table 9).
    pub improved: u64,
    /// Flow-graph constructions (any of the graph views).
    pub flow_graph: u64,
    /// Kemmerer baseline graph constructions.
    pub kemmerer: u64,
    /// Smoke simulations to quiescence (Kemmerer-style validation runs).
    pub smoke: u64,
    /// Memo-table hits in [`Engine::analyze_source`].
    pub cache_hits: u64,
    /// Memo-table misses in [`Engine::analyze_source`].
    pub cache_misses: u64,
}

#[derive(Default)]
struct Counters {
    frontend: AtomicU64,
    rd: AtomicU64,
    local: AtomicU64,
    specialized: AtomicU64,
    global: AtomicU64,
    improved: AtomicU64,
    flow_graph: AtomicU64,
    kemmerer: AtomicU64,
    smoke: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// The result of a smoke simulation: the design ran to quiescence on the
/// dense simulator core of `vhdl1-sim`.
///
/// The paper's Section 6 validation simulates every design (ModelSim's
/// role); the engine exposes that as a lazy query so audits can require a
/// design to actually *execute* before trusting its flow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmokeReport {
    /// Delta cycles until quiescence.
    pub deltas: u64,
    /// FNV-1a digest over the quiescent signal states (in declaration
    /// order) — byte-identical across runs and machines for the same
    /// design, pinning simulator determinism.
    pub state_digest: u64,
}

/// The lazily filled memo slots of one design's analysis.  Every slot is a
/// `OnceLock`, so concurrent queries through a shared (cached) analysis
/// compute each stage exactly once.
#[derive(Default)]
struct Slots {
    rd: OnceLock<ReachingDefinitions>,
    local: OnceLock<ResourceMatrix>,
    specialized: OnceLock<SpecializedRd>,
    global: OnceLock<ResourceMatrix>,
    improved: OnceLock<Option<ImprovedClosure>>,
    graph: OnceLock<FlowGraph>,
    base_graph: OnceLock<FlowGraph>,
    merged_graph: OnceLock<FlowGraph>,
    kemmerer: OnceLock<FlowGraph>,
    smoke: OnceLock<Result<SmokeReport, SimError>>,
}

/// A design together with its memo slots, shareable across cache hits.
struct Memo {
    design: Design,
    slots: Slots,
}

#[derive(Default)]
struct Cache {
    map: HashMap<u64, Arc<Memo>>,
    /// Insertion order, for `CachePolicy::Capped` eviction.
    order: VecDeque<u64>,
}

/// A long-lived analysis session: shared options, the content-hash memo
/// table, and the stage-computation counters.
///
/// # Examples
///
/// ```
/// use vhdl1_infoflow::{Engine, AnalysisOptions};
///
/// let engine = Engine::with_options(AnalysisOptions::base());
/// let design = vhdl1_syntax::frontend(
///     "entity e is port(a : in std_logic; b : out std_logic); end e;
///      architecture rtl of e is begin
///        p : process begin b <= a; wait on a; end process p;
///      end rtl;")?;
/// let analysis = engine.analyze(&design);
/// assert!(analysis.flow_graph().has_edge("a", "b"));
/// // Only the stages the graph needs ran; Table 9 was never touched.
/// assert_eq!(engine.stats().improved, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Engine {
    config: EngineConfig,
    cache: Mutex<Cache>,
    counters: Counters,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// Creates an engine with an explicit configuration.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            config,
            cache: Mutex::new(Cache::default()),
            counters: Counters::default(),
        }
    }

    /// Creates an engine with the given analysis options and the default
    /// (unbounded) cache policy.
    pub fn with_options(options: AnalysisOptions) -> Engine {
        Engine::new(EngineConfig {
            options,
            ..EngineConfig::default()
        })
    }

    /// The session's analysis options.
    pub fn options(&self) -> &AnalysisOptions {
        &self.config.options
    }

    /// The session's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Snapshot of the stage-computation and cache counters.
    pub fn stats(&self) -> EngineStats {
        let c = &self.counters;
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        EngineStats {
            frontend: g(&c.frontend),
            rd: g(&c.rd),
            local: g(&c.local),
            specialized: g(&c.specialized),
            global: g(&c.global),
            improved: g(&c.improved),
            flow_graph: g(&c.flow_graph),
            kemmerer: g(&c.kemmerer),
            smoke: g(&c.smoke),
            cache_hits: g(&c.cache_hits),
            cache_misses: g(&c.cache_misses),
        }
    }

    /// The memo-table key of a source text under this engine's options:
    /// FNV-1a over the source bytes mixed with a fingerprint of the options
    /// (so persisted keys from engines with different options never
    /// collide).
    pub fn source_key(&self, src: &str) -> u64 {
        let options = fnv1a64(format!("{:?}", self.config.options).as_bytes());
        fnv1a64(src.as_bytes()) ^ options.rotate_left(17)
    }

    /// Number of designs currently memoized.
    pub fn cached_designs(&self) -> usize {
        self.cache.lock().expect("engine cache poisoned").map.len()
    }

    /// Drops every memoized design.
    pub fn clear_cache(&self) {
        let mut cache = self.cache.lock().expect("engine cache poisoned");
        cache.map.clear();
        cache.order.clear();
    }

    /// Starts a lazy analysis of an elaborated design.
    ///
    /// Nothing is computed until a stage is queried.  The handle borrows
    /// both the engine and the design; the memo table is not consulted
    /// (content hashing is defined over source text — use
    /// [`Engine::analyze_source`] for that).
    ///
    /// # Examples
    ///
    /// ```
    /// use vhdl1_infoflow::Engine;
    ///
    /// let design = vhdl1_syntax::frontend(
    ///     "entity e is port(a : in std_logic; b : out std_logic); end e;
    ///      architecture rtl of e is begin
    ///        p : process begin b <= a; wait on a; end process p;
    ///      end rtl;")?;
    /// let engine = Engine::default();
    /// let analysis = engine.analyze(&design);
    /// assert_eq!(engine.stats().rd, 0); // nothing ran yet
    /// assert!(analysis.flow_graph().has_edge("a", "b"));
    /// assert_eq!(engine.stats().rd, 1); // demanded exactly once
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn analyze<'e>(&'e self, design: &'e Design) -> Analysis<'e> {
        Analysis {
            engine: self,
            inner: Inner::Borrowed {
                design,
                slots: Box::default(),
            },
        }
    }

    /// Parses, elaborates and lazily analyses a source text, memoized by
    /// content hash: two calls with identical source (under identical
    /// options) share one design and one set of stage memos, so the second
    /// call performs no work beyond the hash lookup — not even parsing.
    ///
    /// # Errors
    ///
    /// Returns a structured [`EngineError`] when the source does not lex,
    /// parse or elaborate.
    pub fn analyze_source(&self, src: &str) -> Result<Analysis<'_>, EngineError> {
        if self.config.cache == CachePolicy::Disabled {
            self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            return Ok(self.owned_analysis(self.run_frontend(src)?));
        }
        let key = self.source_key(src);
        if let Some(memo) = self
            .cache
            .lock()
            .expect("engine cache poisoned")
            .map
            .get(&key)
        {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Analysis {
                engine: self,
                inner: Inner::Shared(Arc::clone(memo)),
            });
        }
        // Miss: run the front end outside the lock (parsing can be slow), then
        // publish.  A racing thread may publish the same key first; reuse its
        // memo so both handles share one set of slots.
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        let design = self.run_frontend(src)?;
        let mut cache = self.cache.lock().expect("engine cache poisoned");
        let mut inserted = false;
        let memo = Arc::clone(cache.map.entry(key).or_insert_with(|| {
            inserted = true;
            Arc::new(Memo {
                design,
                slots: Slots::default(),
            })
        }));
        // Record insertion order only for a fresh entry: a racing thread that
        // lost the publish must not add a duplicate order record (it would
        // later evict the wrong key and leak stale order entries).
        if inserted {
            cache.order.push_back(key);
        }
        if let CachePolicy::Capped(cap) = self.config.cache {
            while cache.map.len() > cap.max(1) {
                match cache.order.pop_front() {
                    Some(old) if old != key => {
                        cache.map.remove(&old);
                    }
                    Some(_) => cache.order.push_back(key),
                    None => break,
                }
            }
        }
        drop(cache);
        Ok(Analysis {
            engine: self,
            inner: Inner::Shared(memo),
        })
    }

    /// Lazily analyses every source of a batch, preserving order and
    /// stopping at the first front-end failure.
    ///
    /// # Errors
    ///
    /// Returns the first [`EngineError`] together with the index of the
    /// failing source.
    pub fn analyze_sources<'e, 'a>(
        &'e self,
        sources: impl IntoIterator<Item = &'a str>,
    ) -> Result<Vec<Analysis<'e>>, (usize, EngineError)> {
        sources
            .into_iter()
            .enumerate()
            .map(|(i, src)| self.analyze_source(src).map_err(|e| (i, e)))
            .collect()
    }

    fn run_frontend(&self, src: &str) -> Result<Design, EngineError> {
        self.counters.frontend.fetch_add(1, Ordering::Relaxed);
        Ok(vhdl1_syntax::frontend(src)?)
    }

    fn owned_analysis(&self, design: Design) -> Analysis<'_> {
        Analysis {
            engine: self,
            inner: Inner::Shared(Arc::new(Memo {
                design,
                slots: Slots::default(),
            })),
        }
    }
}

enum Inner<'e> {
    /// Design borrowed from the caller; slots private to this handle.
    Borrowed {
        design: &'e Design,
        slots: Box<Slots>,
    },
    /// Design and slots owned by (and possibly shared through) the memo
    /// table.
    Shared(Arc<Memo>),
}

/// A lazy, memoized analysis of one design.
///
/// Every accessor computes its stage on first demand — reusing upstream
/// stages transparently — and returns a borrowed artifact; repeated queries
/// return the *same* reference without recomputation.  Handles obtained from
/// [`Engine::analyze_source`] for identical sources share their memos.
pub struct Analysis<'e> {
    engine: &'e Engine,
    inner: Inner<'e>,
}

impl fmt::Debug for Analysis<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Analysis")
            .field("design", &self.design().name)
            .finish()
    }
}

impl<'e> Analysis<'e> {
    /// The analysed design.
    pub fn design(&self) -> &Design {
        match &self.inner {
            Inner::Borrowed { design, .. } => design,
            Inner::Shared(memo) => &memo.design,
        }
    }

    /// The engine this analysis runs in.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// The options in effect (the engine's).
    pub fn options(&self) -> &AnalysisOptions {
        &self.engine.config.options
    }

    fn slots(&self) -> &Slots {
        match &self.inner {
            Inner::Borrowed { slots, .. } => slots,
            Inner::Shared(memo) => &memo.slots,
        }
    }

    fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// The Reaching Definitions artifacts (Section 4).
    pub fn rd(&self) -> &ReachingDefinitions {
        self.slots().rd.get_or_init(|| {
            self.bump(&self.engine.counters.rd);
            ReachingDefinitions::compute(self.design(), &self.options().rd)
        })
    }

    /// The local Resource Matrix `RM_lo` (Table 6).
    pub fn local(&self) -> &ResourceMatrix {
        self.slots().local.get_or_init(|| {
            self.bump(&self.engine.counters.local);
            local_dependencies(self.design())
        })
    }

    /// The specialised Reaching Definitions (Table 7).
    pub fn specialized(&self) -> &SpecializedRd {
        self.slots().specialized.get_or_init(|| {
            let (rd, local) = (self.rd(), self.local());
            self.bump(&self.engine.counters.specialized);
            specialize_rd(rd, local, self.options().specialize_rd)
        })
    }

    /// The global Resource Matrix `RM_gl` of the base closure (Table 8).
    pub fn global(&self) -> &ResourceMatrix {
        self.slots().global.get_or_init(|| {
            let (rd, spec, local) = (self.rd(), self.specialized(), self.local());
            self.bump(&self.engine.counters.global);
            global_closure(self.design(), rd, spec, local)
        })
    }

    /// The improved closure (Table 9), or `None` when the engine's options
    /// disable the improved analysis.  Only computed when queried — and
    /// never computed at all by [`Analysis::flow_graph`] under
    /// `improved: false`.
    pub fn improved(&self) -> Option<&ImprovedClosure> {
        self.slots()
            .improved
            .get_or_init(|| {
                self.options().improved.then(|| {
                    let (rd, spec, local) = (self.rd(), self.specialized(), self.local());
                    self.bump(&self.engine.counters.improved);
                    improved_closure(
                        self.design(),
                        rd,
                        spec,
                        local,
                        &self.options().improved_options,
                    )
                })
            })
            .as_ref()
    }

    /// The information-flow graph of the analysis: the improved graph when
    /// the engine's options request the improved analysis, the base graph
    /// otherwise.
    ///
    /// Memoized: repeated calls return the same reference without rebuilding
    /// the graph (the repeated-rebuild hot spot of the eager
    /// [`AnalysisResult::flow_graph`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use vhdl1_infoflow::Engine;
    ///
    /// let design = vhdl1_syntax::frontend(
    ///     "entity e is port(a : in std_logic; b : out std_logic); end e;
    ///      architecture rtl of e is begin
    ///        p : process begin b <= a; wait on a; end process p;
    ///      end rtl;")?;
    /// let engine = Engine::default();
    /// let analysis = engine.analyze(&design);
    /// let first = analysis.flow_graph();
    /// assert!(first.has_edge("a", "b"));
    /// // Same allocation, not an equal copy:
    /// assert!(std::ptr::eq(first, analysis.flow_graph()));
    /// assert_eq!(engine.stats().flow_graph, 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn flow_graph(&self) -> &FlowGraph {
        self.slots().graph.get_or_init(|| {
            let matrix = match self.improved() {
                Some(imp) => &imp.matrix,
                None => self.global(),
            };
            self.bump(&self.engine.counters.flow_graph);
            FlowGraph::from_resource_matrix(matrix)
        })
    }

    /// The information-flow graph of the base (non-improved) closure,
    /// memoized independently of [`Analysis::flow_graph`].
    pub fn base_flow_graph(&self) -> &FlowGraph {
        self.slots().base_graph.get_or_init(|| {
            let global = self.global();
            self.bump(&self.engine.counters.flow_graph);
            FlowGraph::from_resource_matrix(global)
        })
    }

    /// [`Analysis::flow_graph`] with incoming/outgoing nodes merged into
    /// their underlying resources — the presentation form policies talk
    /// about, and the graph [`Analysis::audit`] checks.
    pub fn merged_flow_graph(&self) -> &FlowGraph {
        self.slots().merged_graph.get_or_init(|| {
            let graph = self.flow_graph();
            self.bump(&self.engine.counters.flow_graph);
            graph.merge_io_nodes()
        })
    }

    /// The graph produced by Kemmerer's method on the same local Resource
    /// Matrix (the paper's comparison baseline).  Needs only Table 6.
    pub fn kemmerer_graph(&self) -> &FlowGraph {
        self.slots().kemmerer.get_or_init(|| {
            let local = self.local();
            self.bump(&self.engine.counters.kemmerer);
            kemmerer_graph_from_matrix(local)
        })
    }

    /// Audits the (merged) flow graph against a policy.
    ///
    /// The graph is memoized; the audit itself is recomputed per call since
    /// it depends on the caller's policy.
    pub fn audit(&self, policy: &Policy) -> AuditReport {
        audit(self.merged_flow_graph(), policy)
    }

    /// Smoke-simulates the design to quiescence on the dense simulator core
    /// and reports the delta-cycle count plus a digest of the quiescent
    /// signal states (the Section 6 "does it actually run" validation).
    ///
    /// Memoized like every other stage: the first call compiles and runs
    /// the design (its `max_deltas` bound applies); repeated calls return
    /// the recorded outcome without re-simulating.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] of the failed compilation or execution —
    /// positioned (`line:col`) whenever the offending construct was parsed
    /// from source text.
    pub fn smoke(&self, max_deltas: u64) -> Result<SmokeReport, SimError> {
        self.slots()
            .smoke
            .get_or_init(|| {
                self.bump(&self.engine.counters.smoke);
                let design = self.design();
                let mut sim = Simulator::new(design)?;
                let deltas = sim.run_until_quiescent(max_deltas)?;
                let mut digest_input = String::new();
                for sig in &design.signals {
                    let value = sim.signal(&sig.name).expect("signal exists");
                    digest_input.push_str(&sig.name);
                    digest_input.push('=');
                    digest_input.push_str(&value.to_literal());
                    digest_input.push('\n');
                }
                Ok(SmokeReport {
                    deltas,
                    state_digest: fnv1a64(digest_input.as_bytes()),
                })
            })
            .clone()
    }

    /// Materialises the owned, eager [`AnalysisResult`] of the classic API,
    /// computing any stage not yet demanded.
    ///
    /// Stages already computed are moved out (borrowed handles) or cloned
    /// (handles sharing a memo-table entry).
    pub fn into_result(self) -> AnalysisResult {
        // Force every stage the eager result carries.
        self.global();
        self.improved();
        let design_name = self.design().name.clone();
        let options = *self.options();
        let take = |slots: Slots| AnalysisResult {
            design_name: design_name.clone(),
            options,
            rd: slots.rd.into_inner().expect("rd forced above"),
            local: slots.local.into_inner().expect("local forced above"),
            specialized: slots
                .specialized
                .into_inner()
                .expect("specialized forced above"),
            global: slots.global.into_inner().expect("global forced above"),
            improved: slots.improved.into_inner().expect("improved forced above"),
        };
        match self.inner {
            Inner::Borrowed { slots, .. } => take(*slots),
            Inner::Shared(memo) => match Arc::try_unwrap(memo) {
                Ok(memo) => take(memo.slots),
                Err(memo) => AnalysisResult {
                    design_name,
                    options,
                    rd: memo.slots.rd.get().expect("rd forced above").clone(),
                    local: memo.slots.local.get().expect("local forced above").clone(),
                    specialized: memo
                        .slots
                        .specialized
                        .get()
                        .expect("specialized forced above")
                        .clone(),
                    global: memo
                        .slots
                        .global
                        .get()
                        .expect("global forced above")
                        .clone(),
                    improved: memo
                        .slots
                        .improved
                        .get()
                        .expect("improved forced above")
                        .clone(),
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_with;
    use vhdl1_syntax::frontend;

    const COPY: &str = "entity e is port(a : in std_logic; b : out std_logic); end e;
         architecture rtl of e is begin
           p : process begin b <= a; wait on a; end process p;
         end rtl;";

    const TWO_PROC: &str = "entity e is port(a : in std_logic; b : out std_logic); end e;
         architecture rtl of e is
           signal t : std_logic;
         begin
           p1 : process begin t <= a; wait on a; end process p1;
           p2 : process begin b <= t; wait on t; end process p2;
         end rtl;";

    #[test]
    fn nothing_computes_until_demanded() {
        let design = frontend(COPY).unwrap();
        let engine = Engine::default();
        let _analysis = engine.analyze(&design);
        assert_eq!(engine.stats(), EngineStats::default());
    }

    #[test]
    fn each_stage_computes_once_and_returns_the_same_reference() {
        let design = frontend(COPY).unwrap();
        let engine = Engine::default();
        let analysis = engine.analyze(&design);
        let rd1 = analysis.rd() as *const _;
        let rd2 = analysis.rd() as *const _;
        assert_eq!(rd1, rd2);
        let g1 = analysis.flow_graph() as *const _;
        let g2 = analysis.flow_graph() as *const _;
        assert_eq!(g1, g2);
        let k1 = analysis.kemmerer_graph() as *const _;
        let k2 = analysis.kemmerer_graph() as *const _;
        assert_eq!(k1, k2);
        let stats = engine.stats();
        assert_eq!(stats.rd, 1);
        assert_eq!(stats.flow_graph, 1);
        assert_eq!(stats.kemmerer, 1);
    }

    #[test]
    fn base_options_flow_graph_performs_no_table9_work() {
        let design = frontend(TWO_PROC).unwrap();
        let engine = Engine::with_options(AnalysisOptions::base());
        let analysis = engine.analyze(&design);
        assert!(analysis.flow_graph().has_edge("a", "b"));
        let stats = engine.stats();
        assert_eq!(stats.improved, 0, "Table 9 must not run under base options");
        assert_eq!(stats.rd, 1);
        assert_eq!(stats.global, 1);
        // The improved query itself answers None without running Table 9.
        assert!(analysis.improved().is_none());
        assert_eq!(engine.stats().improved, 0);
    }

    #[test]
    fn kemmerer_graph_needs_only_table6() {
        let design = frontend(TWO_PROC).unwrap();
        let engine = Engine::default();
        let analysis = engine.analyze(&design);
        let _ = analysis.kemmerer_graph();
        let stats = engine.stats();
        assert_eq!(stats.local, 1);
        assert_eq!(stats.rd, 0, "Kemmerer's method is RD-free");
        assert_eq!(stats.global, 0);
        assert_eq!(stats.improved, 0);
    }

    #[test]
    fn into_result_matches_the_eager_pipeline() {
        let design = frontend(TWO_PROC).unwrap();
        let options = AnalysisOptions::default();
        let eager = analyze_with(&design, &options);
        let engine = Engine::with_options(options);
        let lazy = engine.analyze(&design).into_result();
        assert_eq!(eager, lazy);
        // And after partial demand in graph-first order:
        let analysis = engine.analyze(&design);
        let _ = analysis.flow_graph();
        assert_eq!(eager, analysis.into_result());
    }

    #[test]
    fn analyze_source_memoizes_by_content_hash() {
        let engine = Engine::default();
        let a = engine.analyze_source(COPY).unwrap();
        let _ = a.flow_graph();
        let b = engine.analyze_source(COPY).unwrap();
        // Shared memo: the graph is the very same allocation.
        assert!(std::ptr::eq(a.flow_graph(), b.flow_graph()));
        let stats = engine.stats();
        assert_eq!(stats.frontend, 1, "second call must not reparse");
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.flow_graph, 1);
        assert_eq!(engine.cached_designs(), 1);
    }

    #[test]
    fn analyze_sources_preserves_order_and_reports_failing_index() {
        let engine = Engine::default();
        let renamed = COPY.replace("rtl", "second");
        let analyses = engine.analyze_sources([COPY, renamed.as_str()]).unwrap();
        assert_eq!(analyses.len(), 2);
        assert_eq!(analyses[0].design().name, "rtl");
        assert_eq!(analyses[1].design().name, "second");
        assert!(analyses.iter().all(|a| a.flow_graph().has_edge("a", "b")));

        let (index, err) = engine
            .analyze_sources([COPY, "entity broken"])
            .expect_err("second source must fail");
        assert_eq!(index, 1);
        assert_eq!(err.phase(), EnginePhase::Parse);
    }

    #[test]
    fn disabled_cache_reparses_every_time() {
        let engine = Engine::new(EngineConfig {
            cache: CachePolicy::Disabled,
            ..EngineConfig::default()
        });
        let _ = engine.analyze_source(COPY).unwrap();
        let _ = engine.analyze_source(COPY).unwrap();
        assert_eq!(engine.stats().frontend, 2);
        assert_eq!(engine.cached_designs(), 0);
    }

    #[test]
    fn capped_cache_evicts_oldest() {
        let engine = Engine::new(EngineConfig {
            cache: CachePolicy::Capped(2),
            ..EngineConfig::default()
        });
        let srcs: Vec<String> = (0..3)
            .map(|i| COPY.replace("rtl", &format!("r{i}")))
            .collect();
        for s in &srcs {
            let _ = engine.analyze_source(s).unwrap();
        }
        assert_eq!(engine.cached_designs(), 2);
        // Oldest (r0) evicted: analysing it again is a miss.
        let _ = engine.analyze_source(&srcs[0]).unwrap();
        assert_eq!(engine.stats().cache_hits, 0);
        assert_eq!(engine.stats().frontend, 4);
    }

    #[test]
    fn clear_cache_forgets_designs() {
        let engine = Engine::default();
        let _ = engine.analyze_source(COPY).unwrap();
        assert_eq!(engine.cached_designs(), 1);
        engine.clear_cache();
        assert_eq!(engine.cached_designs(), 0);
        let _ = engine.analyze_source(COPY).unwrap();
        assert_eq!(engine.stats().frontend, 2);
    }

    #[test]
    fn source_key_depends_on_options() {
        let base = Engine::with_options(AnalysisOptions::base());
        let full = Engine::default();
        assert_ne!(base.source_key(COPY), full.source_key(COPY));
        assert_eq!(full.source_key(COPY), Engine::default().source_key(COPY));
        assert_ne!(full.source_key(COPY), full.source_key(TWO_PROC));
    }

    #[test]
    fn engine_errors_are_structured() {
        let engine = Engine::default();

        let parse_err = engine.analyze_source("entity oops").unwrap_err();
        assert_eq!(parse_err.phase(), EnginePhase::Parse);
        assert!(parse_err.pos().is_some());

        let elab_src = "entity e is port(a : in std_logic; b : out std_logic); end e;
architecture rtl of e is begin
  p : process begin b <= ghost; wait on a; end process;
end rtl;";
        let elab_err = engine.analyze_source(elab_src).unwrap_err();
        assert_eq!(elab_err.phase(), EnginePhase::Elaborate);
        assert_eq!(elab_err.line_col(), Some((3, 26)));
        assert!(elab_err.to_string().contains("elaborate error at 3:26"));
        assert!(elab_err.message().contains("ghost"));
        // The original front-end error rides along as the source.
        use std::error::Error as _;
        assert!(elab_err.source().is_some());

        // Errors are not memoized as designs.
        assert_eq!(engine.cached_designs(), 0);
    }

    #[test]
    fn audit_uses_the_merged_graph() {
        let design = frontend(COPY).unwrap();
        let engine = Engine::default();
        let analysis = engine.analyze(&design);
        let strict = Policy::new().with_level("a", 1).with_level("b", 0);
        let report = analysis.audit(&strict);
        assert_eq!(report.violations.len(), 1);
        // A second audit with another policy reuses the memoized graph.
        let graphs_before = engine.stats().flow_graph;
        let permissive = analysis.audit(&Policy::new());
        assert!(permissive.violations.is_empty());
        assert_eq!(engine.stats().flow_graph, graphs_before);
    }

    #[test]
    fn smoke_simulates_once_and_memoizes_the_outcome() {
        let design = frontend(TWO_PROC).unwrap();
        let engine = Engine::default();
        let analysis = engine.analyze(&design);
        let first = analysis.smoke(1_000).expect("two-process copy quiesces");
        assert!(first.deltas >= 1);
        // Second query — even with a different bound — replays the memo.
        let second = analysis.smoke(1).unwrap();
        assert_eq!(first, second);
        assert_eq!(engine.stats().smoke, 1);
        // The digest is deterministic across engines and analyses.
        let other = Engine::default();
        let again = other.analyze(&design).smoke(1_000).unwrap();
        assert_eq!(first.state_digest, again.state_digest);
        assert_eq!(first.deltas, again.deltas);
        // Smoke needs no analysis stages at all.
        assert_eq!(engine.stats().rd, 0);
    }

    #[test]
    fn smoke_errors_are_recorded_with_positions() {
        // An out-of-range slice passes elaboration but fails simulator
        // compilation; the error carries its source position.
        let src = "entity e is port(a : in std_logic_vector(3 downto 0); b : out std_logic); end e;
architecture rtl of e is begin
  p : process begin
    b <= a(9 downto 8);
    wait on a;
  end process;
end rtl;";
        let engine = Engine::default();
        let analysis = engine.analyze_source(src).unwrap();
        let err = analysis.smoke(100).unwrap_err();
        assert_eq!(err.line_col().map(|(l, _)| l), Some(4), "{err}");
        assert!(err.to_string().contains("at 4:"), "{err}");
        // Errors are memoized too.
        let err2 = analysis.smoke(100).unwrap_err();
        assert_eq!(err, err2);
        assert_eq!(engine.stats().smoke, 1);
    }

    #[test]
    fn shared_engine_is_usable_across_threads() {
        let engine = Engine::default();
        let srcs: Vec<String> = (0..8)
            .map(|i| COPY.replace("rtl", &format!("t{i}")))
            .collect();
        std::thread::scope(|scope| {
            for chunk in srcs.chunks(2) {
                let engine = &engine;
                scope.spawn(move || {
                    for src in chunk {
                        let analysis = engine.analyze_source(src).unwrap();
                        assert!(analysis.flow_graph().has_edge("a", "b"));
                    }
                });
            }
        });
        assert_eq!(engine.cached_designs(), 8);
        assert_eq!(engine.stats().flow_graph, 8);
    }
}
