//! Demand-driven analysis sessions: the [`Engine`] / [`Analysis`] query API.
//!
//! The paper's pipeline (Tables 6–9) is strictly staged, but callers rarely
//! need every stage: a dashboard asking for the flow graph of the base
//! closure should not pay for the Table-9 environment modelling, and a batch
//! driver re-analysing an unchanged source should not pay for anything at
//! all.  This module therefore exposes the analysis as *queries* over a
//! long-lived session:
//!
//! * [`Engine`] — a cross-design session holding the shared
//!   [`AnalysisOptions`], the content-hash memo table (previously private to
//!   the `vhdl1c` driver) and the per-stage computation counters.  An engine
//!   is cheap to create, [`Sync`], and designed to be shared by the worker
//!   threads of a batch driver.
//! * [`Analysis`] — a per-design handle whose stage accessors ([`rd`],
//!   [`local`], [`specialized`], [`global`], [`improved`], [`flow_graph`],
//!   [`kemmerer_graph`], …) compute on first demand into `OnceLock` slots
//!   and return **borrowed** artifacts.  Asking twice never recomputes;
//!   asking for a downstream stage computes exactly the upstream stages it
//!   needs and nothing else.
//! * [`EngineError`] — the structured error of the session API: front-end
//!   failures carry the failing [`phase`](EngineError::phase) and source
//!   [`position`](EngineError::pos); budget exhaustion surfaces as
//!   [`EngineError::ResourceExhausted`] naming the exhausted
//!   [`EngineStage`] and how much of the limit was consumed.
//!
//! # Budgets
//!
//! Every stage accessor honours the [`crate::Budget`] carried by the
//! engine's [`AnalysisOptions`].  Limits are **cooperative**: stages check
//! their own counters at iteration boundaries, and the wall-clock deadline
//! plus the optional [`CancelFlag`] are checked at stage boundaries (before
//! a not-yet-computed stage starts).  Deterministic counter exhaustion is
//! memoized like any other stage result — so a given source and budget
//! truncate at the same point on every run — while deadline/cancel
//! exhaustion is *never* memoized (it depends on wall-clock time, not the
//! input).
//!
//! The eager one-shot functions ([`crate::analyze`], [`crate::analyze_with`],
//! [`crate::analyze_source`], [`crate::analyze_all`]) are thin compatibility
//! wrappers that materialise an owned [`AnalysisResult`] from a finished
//! `Analysis` (see DESIGN.md for why they stay).
//!
//! [`rd`]: Analysis::rd
//! [`local`]: Analysis::local
//! [`specialized`]: Analysis::specialized
//! [`global`]: Analysis::global
//! [`improved`]: Analysis::improved
//! [`flow_graph`]: Analysis::flow_graph
//! [`kemmerer_graph`]: Analysis::kemmerer_graph

use crate::analysis::{AnalysisOptions, AnalysisResult};
use crate::budget::{Budget, CancelFlag};
use crate::closure::{global_closure_bounded, specialize_rd, SpecializedRd};
use crate::dynflow::{cross_check, DynFlowReport};
use crate::graph::{FlowGraph, GraphLabels};
use crate::improved::{improved_closure_bounded, ImprovedClosure};
use crate::kemmerer::kemmerer_graph_from_matrix;
use crate::local::{local_dependencies, local_dependencies_process};
use crate::policy::{audit, AuditReport, Policy};
use crate::rm::ResourceMatrix;
use crate::store::{Artifact, ArtifactStore, DesignSummary, UnitArtifact};
use crate::trace::{SpanTimer, TraceSink};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use vhdl1_dataflow::{
    active_signals_rd_process, present_rd, ActiveRd, CrossFlow, DesignCfg, ProcessCfg,
    ReachingDefinitions,
};
use vhdl1_dynflow::DynFlowOptions;
use vhdl1_sim::{SimError, SimOptions, Simulator};
use vhdl1_syntax::{
    design_context_text, unit_canonical_text, unit_fingerprints, Design, FrontendLimits, Pos,
    SyntaxError, SyntaxErrorKind,
};

/// 64-bit FNV-1a content hash — the engine's cache key over source bytes.
///
/// Exposed because reports and external caches key on the same digest (the
/// `vhdl1c` `source_hash` field is `fnv1a:<hex>` of this function).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A stable, field-wise fingerprint of [`AnalysisOptions`] — the options
/// half of [`Engine::source_key`].
///
/// Persistent cache keys ([`CachePolicy::Persistent`]) outlive the process,
/// so the fingerprint must not depend on anything incidental like a `Debug`
/// rendering: every semantic field is serialised explicitly (version-tagged,
/// little-endian) and hashed with FNV-1a.  Two deliberate properties:
///
/// * adding an options field is a *fingerprint change* only if this
///   function is updated — which is exactly when old artifacts must be
///   invalidated — and the golden-hash test pins that decision;
/// * [`AnalysisOptions::trace`] is **excluded**: tracing is observability
///   only (reports are byte-identical profiled or not), so a tracing
///   daemon shares artifacts with a non-tracing CLI run.
pub fn options_fingerprint(options: &AnalysisOptions) -> u64 {
    let mut buf = Vec::with_capacity(128);
    buf.extend_from_slice(b"vhdl1-options-v1");
    for flag in [
        options.rd.process_repeats,
        options.rd.use_under_approximation,
        options.rd.kill_initial_at_wait,
        options.specialize_rd,
        options.improved,
        options.improved_options.finals_are_outgoing,
    ] {
        buf.push(u8::from(flag));
    }
    let mut opt_u64 = |v: Option<u64>| match v {
        Some(v) => {
            buf.push(1);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        None => buf.push(0),
    };
    let b = &options.budget;
    opt_u64(b.max_source_bytes);
    opt_u64(b.max_parse_depth.map(u64::from));
    opt_u64(b.max_dataflow_steps);
    opt_u64(b.max_closure_iterations);
    opt_u64(b.max_alfp_facts);
    opt_u64(b.max_alfp_rounds);
    opt_u64(b.max_sim_deltas);
    opt_u64(b.max_sim_steps);
    opt_u64(b.deadline_ms);
    fnv1a64(&buf)
}

/// Retention policy of the engine's content-hash memo table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Memoize every analysed source for the lifetime of the engine (batch
    /// drivers: the working set is the corpus).
    #[default]
    Unbounded,
    /// Keep at most this many designs, evicting the least recently inserted.
    Capped(usize),
    /// Never memoize (one-shot compatibility wrappers).
    Disabled,
    /// [`Capped`](CachePolicy::Capped) in memory *plus* a disk-backed
    /// content-addressed artifact store ([`crate::store`]) under `dir`: a
    /// fresh engine serves previously analysed designs from disk without
    /// parsing, and every freshly computed serving artifact is written
    /// back (atomically) for the next process.  `cap` bounds both the
    /// memo table and the on-disk artifact count.  Corrupted or
    /// version-mismatched artifacts are misses, never errors.
    Persistent {
        /// Artifact directory (created on first use).
        dir: std::path::PathBuf,
        /// Maximum designs kept, in memory and on disk.
        cap: usize,
    },
}

impl CachePolicy {
    /// The in-memory memo-table cap this policy implies, `None` when
    /// unbounded or disabled.
    fn memory_cap(&self) -> Option<usize> {
        match self {
            CachePolicy::Capped(cap) | CachePolicy::Persistent { cap, .. } => Some(*cap),
            CachePolicy::Unbounded | CachePolicy::Disabled => None,
        }
    }
}

/// Configuration of an [`Engine`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EngineConfig {
    /// Options shared by every analysis of the session.
    pub options: AnalysisOptions,
    /// Memo-table retention.
    pub cache: CachePolicy,
}

/// The front-end phase an [`EngineError::Frontend`] originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePhase {
    /// Lexical analysis of the source text.
    Lex,
    /// Parsing.
    Parse,
    /// Elaboration (scoping, uniqueness and binding checks).
    Elaborate,
}

impl fmt::Display for EnginePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnginePhase::Lex => write!(f, "lex"),
            EnginePhase::Parse => write!(f, "parse"),
            EnginePhase::Elaborate => write!(f, "elaborate"),
        }
    }
}

/// The pipeline stage an [`EngineError::ResourceExhausted`] names: the stage
/// whose budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EngineStage {
    /// The front end: source-size or parse-depth limit.
    Frontend,
    /// Reaching Definitions: worklist step limit.
    Rd,
    /// The base closure (Table 8): iteration limit.
    Closure,
    /// The improved closure (Table 9): iteration limit.
    Improved,
    /// The smoke simulation: delta-cycle or statement-step limit.
    Smoke,
    /// The dynamic flow witnessing (differential simulation): delta-cycle
    /// or statement-step limit.
    DynFlow,
    /// The wall-clock deadline or an external cancellation, observed at a
    /// stage boundary.
    Deadline,
}

impl EngineStage {
    /// The stage's stable lower-case name, as it appears in reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            EngineStage::Frontend => "frontend",
            EngineStage::Rd => "rd",
            EngineStage::Closure => "closure",
            EngineStage::Improved => "improved",
            EngineStage::Smoke => "smoke",
            EngineStage::DynFlow => "dynflow",
            EngineStage::Deadline => "deadline",
        }
    }
}

impl fmt::Display for EngineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// A structured analysis-session error.
///
/// Every failure mode of the pipeline maps onto exactly one variant, so
/// drivers can triage without string matching: front-end rejections keep
/// their phase and position, simulation failures keep the underlying
/// [`SimError`], and budget exhaustion names the exhausted stage with its
/// limit and consumption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The source did not lex, parse or elaborate.
    Frontend {
        /// The front-end phase that rejected the source.
        phase: EnginePhase,
        /// Source position of the failure, if known.
        pos: Option<Pos>,
        /// The bare failure message (no phase/position prefix).
        message: String,
        /// The underlying front-end error.
        source: SyntaxError,
    },
    /// The smoke simulation failed to compile or execute the design (for a
    /// reason other than a budget limit).
    Sim(SimError),
    /// A stage exhausted its [`Budget`] — the analysis was cut off, not
    /// wrong.  Deterministic for every stage except
    /// [`EngineStage::Deadline`]: the same source under the same budget
    /// exhausts at the same point on every run.
    ResourceExhausted {
        /// The stage whose budget ran out.
        stage: EngineStage,
        /// The configured limit (milliseconds for
        /// [`EngineStage::Deadline`], stage-specific units otherwise).
        limit: u64,
        /// How much was consumed when the stage gave up (strictly greater
        /// than `limit` for counter budgets).
        consumed: u64,
        /// Source position of the construct being processed, when the stage
        /// could attribute one (parse-depth exhaustion does).
        pos: Option<Pos>,
    },
}

impl EngineError {
    /// The front-end phase that failed, for [`EngineError::Frontend`].
    pub fn phase(&self) -> Option<EnginePhase> {
        match self {
            EngineError::Frontend { phase, .. } => Some(*phase),
            _ => None,
        }
    }

    /// The exhausted stage, for [`EngineError::ResourceExhausted`].
    pub fn stage(&self) -> Option<EngineStage> {
        match self {
            EngineError::ResourceExhausted { stage, .. } => Some(*stage),
            _ => None,
        }
    }

    /// Whether this error reports budget exhaustion (the analysis was cut
    /// off) rather than a defect of the input (it was rejected).
    pub fn is_resource_exhausted(&self) -> bool {
        matches!(self, EngineError::ResourceExhausted { .. })
    }

    /// Source position of the failure, if known (elaboration errors carry
    /// one whenever the AST node at fault was parsed rather than built
    /// programmatically).
    pub fn pos(&self) -> Option<Pos> {
        match self {
            EngineError::Frontend { pos, .. } => *pos,
            EngineError::Sim(e) => e.pos(),
            EngineError::ResourceExhausted { pos, .. } => *pos,
        }
    }

    /// `(line, column)` of the failure, if known.
    pub fn line_col(&self) -> Option<(u32, u32)> {
        self.pos().map(|p| (p.line, p.col))
    }

    /// The bare failure message (no phase/position prefix).
    pub fn message(&self) -> String {
        match self {
            EngineError::Frontend { message, .. } => message.clone(),
            EngineError::Sim(e) => e.to_string(),
            EngineError::ResourceExhausted {
                stage,
                limit,
                consumed,
                ..
            } => format!("{stage} budget exhausted: consumed {consumed}, limit {limit}"),
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Frontend {
                phase,
                pos,
                message,
                ..
            } => match pos {
                Some(p) => write!(f, "{phase} error at {p}: {message}"),
                None => write!(f, "{phase} error: {message}"),
            },
            EngineError::Sim(e) => write!(f, "sim error: {e}"),
            EngineError::ResourceExhausted {
                stage,
                limit,
                consumed,
                pos,
            } => {
                write!(
                    f,
                    "{stage} budget exhausted: consumed {consumed}, limit {limit}"
                )?;
                if let Some(p) = pos {
                    write!(f, " at {p}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Frontend { source, .. } => Some(source),
            EngineError::Sim(e) => Some(e),
            EngineError::ResourceExhausted { .. } => None,
        }
    }
}

impl From<SyntaxError> for EngineError {
    fn from(e: SyntaxError) -> Self {
        EngineError::Frontend {
            phase: match e.kind() {
                SyntaxErrorKind::Lex => EnginePhase::Lex,
                SyntaxErrorKind::Parse => EnginePhase::Parse,
                SyntaxErrorKind::Elaborate => EnginePhase::Elaborate,
            },
            pos: e.pos(),
            message: e.message().to_string(),
            source: e,
        }
    }
}

/// Snapshot of the per-stage computation counters of an [`Engine`].
///
/// Each field counts how many times the corresponding stage was *actually
/// computed* (memo hits do not count), summed over every [`Analysis`] of the
/// session.  Tests use this to prove laziness: querying only
/// [`Analysis::flow_graph`] under `improved: false` must leave
/// [`improved`](EngineStats::improved) at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Front-end runs (parse + elaborate) on behalf of
    /// [`Engine::analyze_source`].
    pub frontend: u64,
    /// Reaching Definitions computations (Section 4).
    pub rd: u64,
    /// Local Resource Matrix computations (Table 6).
    pub local: u64,
    /// RD specialisations (Table 7).
    pub specialized: u64,
    /// Base closures (Table 8).
    pub global: u64,
    /// Improved closures (Table 9).
    pub improved: u64,
    /// Flow-graph constructions (any of the graph views).
    pub flow_graph: u64,
    /// Kemmerer baseline graph constructions.
    pub kemmerer: u64,
    /// Smoke simulations to quiescence (Kemmerer-style validation runs).
    pub smoke: u64,
    /// Dynamic flow-witness computations (differential simulation sweeps);
    /// one per distinct `(rounds, seed)` demanded per design.
    pub dynamic_flows: u64,
    /// Memo-table hits in [`Engine::analyze_source`].
    pub cache_hits: u64,
    /// Memo-table misses in [`Engine::analyze_source`].
    pub cache_misses: u64,
    /// Disk-artifact hits under [`CachePolicy::Persistent`] (memory miss
    /// served from the store without parsing).
    pub store_hits: u64,
    /// Disk-artifact misses under [`CachePolicy::Persistent`] (absent,
    /// corrupted or version-mismatched artifact; the design was computed
    /// from source).
    pub store_misses: u64,
    /// Artifacts written back to the store.
    pub store_writes: u64,
    /// Per-process units served from cache by [`Workspace::update`] —
    /// processes whose fingerprint was unchanged (or whose whole design
    /// hit), so their per-process RD rows and local Resource Matrix were
    /// reused instead of recomputed.
    pub units_reused: u64,
    /// Per-process units recomputed by [`Workspace::update`] — processes
    /// whose fingerprint changed (or was never seen).
    pub units_recomputed: u64,
}

#[derive(Default)]
struct Counters {
    frontend: AtomicU64,
    rd: AtomicU64,
    local: AtomicU64,
    specialized: AtomicU64,
    global: AtomicU64,
    improved: AtomicU64,
    flow_graph: AtomicU64,
    kemmerer: AtomicU64,
    smoke: AtomicU64,
    dynflow: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    store_writes: AtomicU64,
    units_reused: AtomicU64,
    units_recomputed: AtomicU64,
}

/// Built-in delta-cycle cap per quiescence run of
/// [`Analysis::dynamic_flows`] (each twin's settle and each stimulus
/// round).  The budget's `max_sim_deltas` tightens it further; only the
/// budget-tightened case reports as [`EngineStage::DynFlow`] exhaustion.
pub const DYNFLOW_MAX_DELTAS: u64 = 10_000;

/// The result of a smoke simulation: the design ran to quiescence on the
/// dense simulator core of `vhdl1-sim`.
///
/// The paper's Section 6 validation simulates every design (ModelSim's
/// role); the engine exposes that as a lazy query so audits can require a
/// design to actually *execute* before trusting its flow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmokeReport {
    /// Delta cycles until quiescence.
    pub deltas: u64,
    /// FNV-1a digest over the run's state trajectory: each delta cycle's
    /// changed signals (in deterministic signal order) followed by the
    /// quiescent state of every signal in declaration order — byte-identical
    /// across runs and machines for the same design, pinning simulator
    /// determinism including the path taken, not just the final state.
    pub state_digest: u64,
}

/// The lazily filled memo slots of one design's analysis.  Every slot is a
/// `OnceLock`, so concurrent queries through a shared (cached) analysis
/// compute each stage exactly once.
///
/// Fallible stages store `Result`s: deterministic budget exhaustion is a
/// memoizable outcome exactly like success (the truncation point depends
/// only on the input and the budget).  Deadline/cancel exhaustion never
/// reaches these slots — it is raised by the pre-`OnceLock` gate of each
/// accessor.
/// One memo cell of the keyed dynflow family: shareable across the lock so
/// the map guard never spans a computation.
type DynFlowCell = Arc<OnceLock<Result<Arc<DynFlowReport>, EngineError>>>;

#[derive(Default)]
struct Slots {
    /// The report-facing shape of the design (name, process/label/resource
    /// counts).  Prefilled from a disk artifact, so report rendering never
    /// forces a re-parse on the warm path.
    summary: OnceLock<DesignSummary>,
    rd: OnceLock<Result<ReachingDefinitions, EngineError>>,
    local: OnceLock<ResourceMatrix>,
    specialized: OnceLock<SpecializedRd>,
    global: OnceLock<Result<ResourceMatrix, EngineError>>,
    improved: OnceLock<Result<Option<ImprovedClosure>, EngineError>>,
    graph: OnceLock<FlowGraph>,
    base_graph: OnceLock<FlowGraph>,
    merged_graph: OnceLock<FlowGraph>,
    kemmerer: OnceLock<FlowGraph>,
    /// Per-node label annotations for DOT rendering.  Persisted with the
    /// artifact so a warm `--format dot` run needs zero front-end work.
    graph_labels: OnceLock<GraphLabels>,
    smoke: OnceLock<Result<SmokeReport, EngineError>>,
    /// Dynamic flow witnessing is parameterised by `(rounds, seed)`, so the
    /// memo is a keyed family of `OnceLock`s: each distinct parameter pair
    /// computes exactly once per design, concurrently-safe like every other
    /// slot.
    dynflow: Mutex<HashMap<(u64, u64), DynFlowCell>>,
}

/// A design together with its memo slots, shareable across cache hits.
///
/// The elaborated design itself is lazy: a memo restored from a disk
/// artifact starts with the serving slots (summary, graphs, smoke, dynflow)
/// prefilled and the design **unparsed** — it is re-elaborated from the
/// stored source only if a query actually needs stage recomputation.  Memos
/// created by the front end start with the design present.
struct Memo {
    design: OnceLock<Design>,
    /// The source text, kept only when a persistent store may need to
    /// re-parse or write back (i.e. the engine has a store).
    source: Option<Box<str>>,
    /// The memo-table key, kept under the same condition as `source`.
    key: Option<u64>,
    slots: Slots,
}

impl Memo {
    /// A memo for a freshly elaborated design.
    fn computed(design: Design, key: Option<u64>, source: Option<Box<str>>) -> Memo {
        let cell = OnceLock::new();
        let _ = cell.set(design);
        Memo {
            design: cell,
            source,
            key,
            slots: Slots::default(),
        }
    }

    /// A memo restored from a disk artifact: serving slots prefilled,
    /// design unparsed.
    fn from_artifact(artifact: Artifact) -> Memo {
        let slots = Slots::default();
        if let Some(summary) = artifact.summary {
            let _ = slots.summary.set(summary);
        }
        if let Some(graph) = artifact.graph {
            let _ = slots.graph.set(graph);
        }
        if let Some(graph) = artifact.base_graph {
            let _ = slots.base_graph.set(graph);
        }
        if let Some(graph) = artifact.merged_graph {
            let _ = slots.merged_graph.set(graph);
        }
        if let Some(graph) = artifact.kemmerer {
            let _ = slots.kemmerer.set(graph);
        }
        if let Some(labels) = artifact.graph_labels {
            let _ = slots.graph_labels.set(labels);
        }
        if let Some(smoke) = artifact.smoke {
            let _ = slots.smoke.set(Ok(smoke));
        }
        {
            let mut map = slots.dynflow.lock().expect("fresh mutex");
            for (rounds, seed, report) in artifact.dynflows {
                let cell: DynFlowCell = Arc::default();
                let _ = cell.set(Ok(Arc::new(report)));
                map.insert((rounds, seed), cell);
            }
        }
        Memo {
            design: OnceLock::new(),
            source: Some(artifact.source.into_boxed_str()),
            key: Some(artifact.key),
            slots,
        }
    }
}

#[derive(Default)]
struct Cache {
    map: HashMap<u64, Arc<Memo>>,
    /// Insertion order, for `CachePolicy::Capped` eviction.
    order: VecDeque<u64>,
}

/// One cached per-process analysis unit ([`Workspace::update`]): the
/// process's control-flow graph, its active-signal RD solutions and its
/// local Resource Matrix, keyed by
/// `unit_fingerprint ⊕ rotl17(options_fingerprint)`.
struct UnitState {
    /// Canonical design-context text — verified on every hit, so a
    /// fingerprint collision degrades to a recompute instead of assembling
    /// the wrong process's rows.
    context: String,
    /// Canonical labelled process text, verified likewise.
    unit: String,
    cfg: ProcessCfg,
    active: ActiveRd,
    local: ResourceMatrix,
}

/// How many per-process units each memoized-design slot is worth in the
/// unit cache: a design cap of `n` keeps up to `64 n` units.
const UNITS_PER_DESIGN_CAP: usize = 64;

#[derive(Default)]
struct UnitCache {
    map: HashMap<u64, Arc<UnitState>>,
    /// Insertion order, for FIFO eviction under a capped policy.
    order: VecDeque<u64>,
}

/// A long-lived analysis session: shared options, the content-hash memo
/// table, and the stage-computation counters.
///
/// # Examples
///
/// ```
/// use vhdl1_infoflow::{Engine, AnalysisOptions};
///
/// let engine = Engine::with_options(AnalysisOptions::base());
/// let design = vhdl1_syntax::frontend(
///     "entity e is port(a : in std_logic; b : out std_logic); end e;
///      architecture rtl of e is begin
///        p : process begin b <= a; wait on a; end process p;
///      end rtl;")?;
/// let analysis = engine.analyze(&design);
/// assert!(analysis.flow_graph()?.has_edge("a", "b"));
/// // Only the stages the graph needs ran; Table 9 was never touched.
/// assert_eq!(engine.stats().improved, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Engine {
    config: EngineConfig,
    cache: Mutex<Cache>,
    /// Per-process unit cache of [`Workspace::update`], keyed by unit
    /// fingerprint (so it survives whole-design cache misses: an edited
    /// design misses the memo table but reuses every untouched process).
    units: Mutex<UnitCache>,
    counters: Counters,
    /// Disk-backed artifact store, present only under
    /// [`CachePolicy::Persistent`].  `None` also when the directory could
    /// not be opened — the engine then degrades to in-memory caching
    /// (callers that must know validate the directory up front).
    store: Option<ArtifactStore>,
    /// Span/metrics collector, allocated only when
    /// [`AnalysisOptions::trace`] is set — the disabled path carries `None`
    /// and every instrumentation site is a single discriminant check.
    trace: Option<Arc<TraceSink>>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// Creates an engine with an explicit configuration.
    ///
    /// Under [`CachePolicy::Persistent`] the artifact directory is opened
    /// (created if absent) here; an unopenable directory silently degrades
    /// the engine to in-memory caching — serving must not fail because a
    /// cache is missing.  Callers that want a hard error validate the
    /// directory before building the engine.
    pub fn new(config: EngineConfig) -> Engine {
        let store = match &config.cache {
            CachePolicy::Persistent { dir, cap } => ArtifactStore::open(dir, *cap).ok(),
            _ => None,
        };
        Engine {
            trace: config.options.trace.then(|| Arc::new(TraceSink::new())),
            store,
            config,
            cache: Mutex::new(Cache::default()),
            units: Mutex::new(UnitCache::default()),
            counters: Counters::default(),
        }
    }

    /// Creates an engine with the given analysis options and the default
    /// (unbounded) cache policy.
    pub fn with_options(options: AnalysisOptions) -> Engine {
        Engine::new(EngineConfig {
            options,
            ..EngineConfig::default()
        })
    }

    /// The session's analysis options.
    pub fn options(&self) -> &AnalysisOptions {
        &self.config.options
    }

    /// The session's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's span/metrics collector, present only when the options
    /// enable [`AnalysisOptions::trace`].  Batch drivers snapshot it after
    /// the run ([`TraceSink::snapshot`]) to build profiles.
    pub fn trace_sink(&self) -> Option<&Arc<TraceSink>> {
        self.trace.as_ref()
    }

    /// Opens a span when tracing is enabled; `None` otherwise (the
    /// zero-cost disabled path — no allocation, no clock read).
    fn trace_begin(&self, stage: &'static str) -> Option<SpanTimer> {
        self.trace.as_ref().map(|sink| sink.begin(stage))
    }

    /// Closes a span opened by [`Engine::trace_begin`].
    fn trace_end(&self, timer: Option<SpanTimer>, design: &str, work: u64, items: u64) {
        if let (Some(timer), Some(sink)) = (timer, self.trace.as_deref()) {
            sink.end(timer, design, work, items);
        }
    }

    /// Snapshot of the stage-computation and cache counters.
    pub fn stats(&self) -> EngineStats {
        let c = &self.counters;
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        EngineStats {
            frontend: g(&c.frontend),
            rd: g(&c.rd),
            local: g(&c.local),
            specialized: g(&c.specialized),
            global: g(&c.global),
            improved: g(&c.improved),
            flow_graph: g(&c.flow_graph),
            kemmerer: g(&c.kemmerer),
            smoke: g(&c.smoke),
            dynamic_flows: g(&c.dynflow),
            cache_hits: g(&c.cache_hits),
            cache_misses: g(&c.cache_misses),
            store_hits: g(&c.store_hits),
            store_misses: g(&c.store_misses),
            store_writes: g(&c.store_writes),
            units_reused: g(&c.units_reused),
            units_recomputed: g(&c.units_recomputed),
        }
    }

    /// The memo-table key of a source text under this engine's options:
    /// FNV-1a over the source bytes mixed with the stable
    /// [`options_fingerprint`] (so persisted keys from engines with
    /// different options never collide).  The [`Budget`] is part of the
    /// options, so analyses under different budgets never share memo slots
    /// either — which is what keeps budget truncation points deterministic.
    pub fn source_key(&self, src: &str) -> u64 {
        fnv1a64(src.as_bytes()) ^ options_fingerprint(&self.config.options).rotate_left(17)
    }

    /// The engine's disk artifact store, when [`CachePolicy::Persistent`]
    /// is active and its directory opened successfully.
    pub fn artifact_store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// Number of designs currently memoized.
    pub fn cached_designs(&self) -> usize {
        self.cache.lock().expect("engine cache poisoned").map.len()
    }

    /// Drops every memoized design from **memory**.  On-disk artifacts of a
    /// persistent cache are untouched — remove the directory to clear them.
    pub fn clear_cache(&self) {
        let mut cache = self.cache.lock().expect("engine cache poisoned");
        cache.map.clear();
        cache.order.clear();
    }

    /// Starts a lazy analysis of an elaborated design.
    ///
    /// Nothing is computed until a stage is queried.  The handle borrows
    /// both the engine and the design; the memo table is not consulted
    /// (content hashing is defined over source text — use
    /// [`Engine::analyze_source`] for that).
    ///
    /// # Examples
    ///
    /// ```
    /// use vhdl1_infoflow::Engine;
    ///
    /// let design = vhdl1_syntax::frontend(
    ///     "entity e is port(a : in std_logic; b : out std_logic); end e;
    ///      architecture rtl of e is begin
    ///        p : process begin b <= a; wait on a; end process p;
    ///      end rtl;")?;
    /// let engine = Engine::default();
    /// let analysis = engine.analyze(&design);
    /// assert_eq!(engine.stats().rd, 0); // nothing ran yet
    /// assert!(analysis.flow_graph()?.has_edge("a", "b"));
    /// assert_eq!(engine.stats().rd, 1); // demanded exactly once
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn analyze<'e>(&'e self, design: &'e Design) -> Analysis<'e> {
        Analysis {
            engine: self,
            inner: Inner::Borrowed {
                design,
                slots: Box::default(),
            },
            started: Instant::now(),
            cancel: None,
        }
    }

    /// Parses, elaborates and lazily analyses a source text, memoized by
    /// content hash: two calls with identical source (under identical
    /// options) share one design and one set of stage memos, so the second
    /// call performs no work beyond the hash lookup — not even parsing.
    ///
    /// # Errors
    ///
    /// Returns a structured [`EngineError`] when the source does not lex,
    /// parse or elaborate, or exceeds the budget's source-size or
    /// parse-depth limit.
    pub fn analyze_source(&self, src: &str) -> Result<Analysis<'_>, EngineError> {
        if self.config.cache == CachePolicy::Disabled {
            self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            return Ok(self.owned_analysis(self.run_frontend(src)?));
        }
        let key = self.source_key(src);
        if let Some(analysis) = self.lookup(key) {
            return Ok(analysis);
        }
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        let fresh = match self.probe_store(key, src) {
            Some(artifact) => Memo::from_artifact(artifact),
            // Full miss: run the front end outside the lock (parsing can be
            // slow), then publish.
            None => Memo::computed(
                self.run_frontend(src)?,
                self.store.as_ref().map(|_| key),
                self.store.as_ref().map(|_| src.into()),
            ),
        };
        Ok(self.shared(self.publish(key, fresh)))
    }

    /// The memory-probe half of [`Engine::analyze_source`]: a memo-table
    /// hit (bumping `cache_hits`) or `None`.
    fn lookup(&self, key: u64) -> Option<Analysis<'_>> {
        let memo = Arc::clone(
            self.cache
                .lock()
                .expect("engine cache poisoned")
                .map
                .get(&key)?,
        );
        self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        Some(self.shared(memo))
    }

    /// The disk-probe half of [`Engine::analyze_source`] (persistent policy
    /// only) — a hit restores the serving slots without any parsing.  The
    /// stored source must match byte-for-byte, so an FNV collision degrades
    /// to a miss instead of serving a different design's artifacts.
    fn probe_store(&self, key: u64, src: &str) -> Option<Artifact> {
        let store = self.store.as_ref()?;
        let artifact = store.load(key).filter(|a| a.source == src);
        let counter = if artifact.is_some() {
            &self.counters.store_hits
        } else {
            &self.counters.store_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        artifact
    }

    /// Publishes a fresh memo under `key`, returning the winner if a racing
    /// thread published the same key first (both handles then share one set
    /// of slots), and evicts beyond a capped policy's memory cap.
    fn publish(&self, key: u64, fresh: Memo) -> Arc<Memo> {
        let mut cache = self.cache.lock().expect("engine cache poisoned");
        let mut inserted = false;
        let memo = Arc::clone(cache.map.entry(key).or_insert_with(|| {
            inserted = true;
            Arc::new(fresh)
        }));
        // Record insertion order only for a fresh entry: a racing thread that
        // lost the publish must not add a duplicate order record (it would
        // later evict the wrong key and leak stale order entries).
        if inserted {
            cache.order.push_back(key);
        }
        if let Some(cap) = self.config.cache.memory_cap() {
            while cache.map.len() > cap.max(1) {
                match cache.order.pop_front() {
                    Some(old) if old != key => {
                        cache.map.remove(&old);
                    }
                    Some(_) => cache.order.push_back(key),
                    None => break,
                }
            }
        }
        memo
    }

    fn shared(&self, memo: Arc<Memo>) -> Analysis<'_> {
        Analysis {
            engine: self,
            inner: Inner::Shared(memo),
            started: Instant::now(),
            cancel: None,
        }
    }

    /// Lazily analyses every source of a batch, preserving order and
    /// stopping at the first front-end failure.
    ///
    /// # Errors
    ///
    /// Returns the first [`EngineError`] together with the index of the
    /// failing source.
    pub fn analyze_sources<'e, 'a>(
        &'e self,
        sources: impl IntoIterator<Item = &'a str>,
    ) -> Result<Vec<Analysis<'e>>, (usize, EngineError)> {
        sources
            .into_iter()
            .enumerate()
            .map(|(i, src)| self.analyze_source(src).map_err(|e| (i, e)))
            .collect()
    }

    fn run_frontend(&self, src: &str) -> Result<Design, EngineError> {
        let budget = self.config.options.budget;
        if let Some(max) = budget.max_source_bytes {
            if src.len() as u64 > max {
                return Err(EngineError::ResourceExhausted {
                    stage: EngineStage::Frontend,
                    limit: max,
                    consumed: src.len() as u64,
                    pos: None,
                });
            }
        }
        self.counters.frontend.fetch_add(1, Ordering::Relaxed);
        let limits = FrontendLimits {
            max_source_bytes: budget.max_source_bytes,
            max_parse_depth: budget.max_parse_depth,
        };
        let span = self.trace_begin("frontend");
        let result = vhdl1_syntax::frontend_with_limits(src, &limits);
        if span.is_some() {
            match &result {
                Ok(design) => self.trace_end(
                    span,
                    &design.name,
                    src.len() as u64,
                    design.signals.len() as u64,
                ),
                // Rejected sources have no design name yet; the span still
                // accounts the front-end time spent refusing them.
                Err(_) => self.trace_end(span, "<rejected>", src.len() as u64, 0),
            }
        }
        result.map_err(|e| {
            if e.is_resource_limit() {
                // The only resource limit left to the front end is parse
                // depth (the size cap was enforced above).
                let depth = u64::from(
                    budget
                        .max_parse_depth
                        .unwrap_or(vhdl1_syntax::DEFAULT_PARSE_DEPTH)
                        .min(vhdl1_syntax::DEFAULT_PARSE_DEPTH),
                );
                EngineError::ResourceExhausted {
                    stage: EngineStage::Frontend,
                    limit: depth,
                    consumed: depth + 1,
                    pos: e.pos(),
                }
            } else {
                EngineError::from(e)
            }
        })
    }

    fn owned_analysis(&self, design: Design) -> Analysis<'_> {
        Analysis {
            engine: self,
            inner: Inner::Shared(Arc::new(Memo::computed(design, None, None))),
            started: Instant::now(),
            cancel: None,
        }
    }

    /// Opens an edit session over this engine: a [`Workspace`] whose
    /// [`update`](Workspace::update) re-analyses successive revisions of a
    /// design incrementally, reusing the per-process stages of every
    /// process whose content fingerprint is unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// use vhdl1_infoflow::Engine;
    ///
    /// let engine = Engine::default();
    /// let ws = engine.workspace();
    /// let v1 = "entity e is port(a : in std_logic; b : out std_logic); end e;
    ///      architecture rtl of e is begin
    ///        p1 : process begin b <= a; wait on a; end process p1;
    ///        p2 : process begin null; wait on a; end process p2;
    ///      end rtl;";
    /// ws.update(v1)?.flow_graph()?;
    /// // Edit only p2: p1's per-process stages are reused.
    /// let v2 = v1.replace("null;", "b <= a and a;");
    /// ws.update(&v2)?.flow_graph()?;
    /// assert_eq!(engine.stats().units_recomputed, 3); // 2 cold + 1 edited
    /// assert_eq!(engine.stats().units_reused, 1);     // p1 on the update
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn workspace(&self) -> Workspace<'_> {
        Workspace { engine: self }
    }

    /// Probes the per-process unit cache (memory, then the persistent
    /// store), verifying the canonical texts so a fingerprint collision is
    /// a recompute, never a wrong hit.  Store rehydration rebuilds the
    /// control-flow graph from the freshly elaborated design (cheap and
    /// linear) and the solved rows from the artifact.
    fn unit_lookup(
        &self,
        key: u64,
        design: &Design,
        pidx: usize,
        context: &str,
        unit: &str,
    ) -> Option<Arc<UnitState>> {
        {
            let units = self.units.lock().expect("unit cache poisoned");
            if let Some(state) = units.map.get(&key) {
                if state.context == context && state.unit == unit {
                    return Some(Arc::clone(state));
                }
            }
        }
        let stored = self.store.as_ref()?.load_unit(key)?;
        if stored.context != context || stored.unit != unit {
            return None;
        }
        let state = UnitState {
            cfg: ProcessCfg::build(&design.processes[pidx]),
            active: stored.active(),
            local: stored.local_matrix(),
            context: stored.context,
            unit: stored.unit,
        };
        Some(self.unit_publish(key, state))
    }

    /// Publishes a unit into the memory cache, FIFO-capped at
    /// [`UNITS_PER_DESIGN_CAP`] units per design slot of a capped policy.
    fn unit_publish(&self, key: u64, state: UnitState) -> Arc<UnitState> {
        let state = Arc::new(state);
        let mut units = self.units.lock().expect("unit cache poisoned");
        if units.map.insert(key, Arc::clone(&state)).is_none() {
            units.order.push_back(key);
        }
        if let Some(cap) = self.config.cache.memory_cap() {
            let cap = cap.max(1).saturating_mul(UNITS_PER_DESIGN_CAP);
            while units.map.len() > cap {
                match units.order.pop_front() {
                    Some(old) if old != key => {
                        units.map.remove(&old);
                    }
                    Some(_) => units.order.push_back(key),
                    None => break,
                }
            }
        }
        state
    }
}

/// An edit session over an [`Engine`]: feed successive revisions of a
/// design to [`Workspace::update`] and get a full [`Analysis`] back for
/// each, paying only for what the edit touched.
///
/// The engine elaborates each revision, fingerprints every process against
/// its design context ([`vhdl1_syntax::unit_fingerprint`]) and reuses the
/// per-process stages — control-flow graph, active-signal Reaching
/// Definitions rows, local Resource Matrix — of every unit whose
/// fingerprint is unchanged, recomputing only touched processes plus the
/// cross-process global stages (cross-flow, present-value RD, closures).
/// [`EngineStats::units_reused`] / [`EngineStats::units_recomputed`] report
/// the split per session.
///
/// The handle is stateless (all state lives in the engine), so a daemon
/// can open one per request over a shared engine; reports produced through
/// a workspace are byte-identical to fresh single-shot analyses of the
/// same source.
#[derive(Debug, Clone, Copy)]
pub struct Workspace<'e> {
    engine: &'e Engine,
}

impl<'e> Workspace<'e> {
    /// The engine this workspace updates.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// Re-analyses a revision of the design, reusing every per-process
    /// unit whose content fingerprint is unchanged since any earlier
    /// [`update`](Workspace::update) (or persisted unit artifact).
    ///
    /// Falls back to the plain [`Engine::analyze_source`] path — no unit
    /// accounting — when the cache policy is
    /// [`Disabled`](CachePolicy::Disabled) (nothing could be reused) or a
    /// dataflow step budget is set (per-unit solves would move the
    /// deterministic truncation point).  A whole-design cache or store hit
    /// counts every process as reused.
    ///
    /// # Errors
    ///
    /// Returns a structured [`EngineError`] when the revision does not
    /// lex, parse or elaborate, or exceeds the front-end budget.
    pub fn update(&self, src: &str) -> Result<Analysis<'e>, EngineError> {
        let engine = self.engine;
        if engine.config.cache == CachePolicy::Disabled
            || engine.config.options.budget.max_dataflow_steps.is_some()
        {
            return engine.analyze_source(src);
        }
        let key = engine.source_key(src);
        if let Some(analysis) = engine.lookup(key) {
            let reused = analysis.summary().processes as u64;
            engine
                .counters
                .units_reused
                .fetch_add(reused, Ordering::Relaxed);
            return Ok(analysis);
        }
        engine.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        if let Some(artifact) = engine.probe_store(key, src) {
            let analysis = engine.shared(engine.publish(key, Memo::from_artifact(artifact)));
            let reused = analysis.summary().processes as u64;
            engine
                .counters
                .units_reused
                .fetch_add(reused, Ordering::Relaxed);
            return Ok(analysis);
        }
        let design = engine.run_frontend(src)?;

        // Per-unit probe: reuse or recompute each process's stages.
        let context = design_context_text(&design);
        let fingerprints = unit_fingerprints(&design);
        let options_rot = options_fingerprint(&engine.config.options).rotate_left(17);
        let mut states = Vec::with_capacity(design.processes.len());
        for (pidx, fingerprint) in fingerprints.iter().enumerate() {
            let unit_key = fingerprint ^ options_rot;
            let unit = unit_canonical_text(&design, pidx);
            if let Some(state) = engine.unit_lookup(unit_key, &design, pidx, &context, &unit) {
                engine.counters.units_reused.fetch_add(1, Ordering::Relaxed);
                states.push(state);
                continue;
            }
            engine
                .counters
                .units_recomputed
                .fetch_add(1, Ordering::Relaxed);
            let cfg = ProcessCfg::build(&design.processes[pidx]);
            let active = active_signals_rd_process(&design, &cfg, &engine.config.options.rd);
            let local = local_dependencies_process(&design, pidx);
            if let Some(store) = &engine.store {
                let _ = store.save_unit(&UnitArtifact::of(
                    unit_key, &context, &unit, &active, &local,
                ));
            }
            states.push(engine.unit_publish(
                unit_key,
                UnitState {
                    context: context.clone(),
                    unit,
                    cfg,
                    active,
                    local,
                },
            ));
        }

        // Global assembly: per-unit artifacts concatenate exactly (labels
        // are globally unique and the per-process analyses couple nothing
        // across processes); only the cross-process stages — cross-flow and
        // the present-value RD — recompute from scratch.
        engine.counters.rd.fetch_add(1, Ordering::Relaxed);
        let span = engine.trace_begin("rd");
        let rd_options = engine.config.options.rd;
        let cfg = DesignCfg::from_processes(states.iter().map(|s| s.cfg.clone()).collect());
        let cross = CrossFlow::build(&design);
        let active = ActiveRd::concat(states.iter().map(|s| s.active.clone()));
        let present = present_rd(&design, &cfg, &cross, &active, &rd_options);
        if span.is_some() {
            let labels = cfg.labels().len() as u64;
            engine.trace_end(span, &design.name, labels, labels);
        }
        let rd = ReachingDefinitions {
            options: rd_options,
            cfg,
            cross,
            active,
            present,
        };

        engine.counters.local.fetch_add(1, Ordering::Relaxed);
        let span = engine.trace_begin("local");
        let mut local = ResourceMatrix::new();
        for state in &states {
            local.extend_from(&state.local);
        }
        if span.is_some() {
            let entries = local.len() as u64;
            engine.trace_end(span, &design.name, entries, entries);
        }

        let memo = Memo::computed(
            design,
            engine.store.as_ref().map(|_| key),
            engine.store.as_ref().map(|_| src.into()),
        );
        let _ = memo.slots.rd.set(Ok(rd));
        let _ = memo.slots.local.set(local);
        Ok(engine.shared(engine.publish(key, memo)))
    }
}

enum Inner<'e> {
    /// Design borrowed from the caller; slots private to this handle.
    Borrowed {
        design: &'e Design,
        slots: Box<Slots>,
    },
    /// Design and slots owned by (and possibly shared through) the memo
    /// table.
    Shared(Arc<Memo>),
}

/// A lazy, memoized analysis of one design.
///
/// Every accessor computes its stage on first demand — reusing upstream
/// stages transparently — and returns a borrowed artifact; repeated queries
/// return the *same* reference without recomputation.  Handles obtained from
/// [`Engine::analyze_source`] for identical sources share their memos.
///
/// Accessors are fallible: they surface [`EngineError::ResourceExhausted`]
/// when the engine's [`Budget`] cuts a stage short.  Stages already
/// memoized remain readable after a deadline or cancellation — only *new*
/// work is refused.
pub struct Analysis<'e> {
    engine: &'e Engine,
    inner: Inner<'e>,
    /// When this handle was created — the epoch of `budget.deadline_ms`.
    started: Instant,
    /// External cooperative cancellation, observed at stage boundaries.
    cancel: Option<CancelFlag>,
}

impl fmt::Debug for Analysis<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Analysis")
            .field("design", &self.design().name)
            .finish()
    }
}

impl<'e> Analysis<'e> {
    /// The analysed design.
    ///
    /// For an analysis restored from a disk artifact the design is lazy:
    /// the first call re-elaborates it from the stored source (queries
    /// served entirely from restored slots never get here).
    ///
    /// # Panics
    ///
    /// Panics when a restored artifact's source no longer elaborates under
    /// the engine's options — impossible unless the artifact was produced
    /// by a semantically different build that forgot to bump
    /// [`crate::store::ARTIFACT_VERSION`].  Batch drivers isolate the panic
    /// per design; the fix is clearing the cache directory.
    pub fn design(&self) -> &Design {
        match &self.inner {
            Inner::Borrowed { design, .. } => design,
            Inner::Shared(memo) => memo.design.get_or_init(|| {
                let source = memo
                    .source
                    .as_deref()
                    .expect("memo without a design always carries its source");
                match self.engine.run_frontend(source) {
                    Ok(design) => design,
                    Err(e) => panic!(
                        "stale persistent artifact: stored source no longer \
                         elaborates ({e}); clear the cache directory"
                    ),
                }
            }),
        }
    }

    /// The report-facing shape of the design: name, process count, label
    /// count, resource count.
    ///
    /// Restored from the disk artifact on the warm path — unlike
    /// [`Analysis::design`], this never re-parses a persistently cached
    /// design.
    pub fn summary(&self) -> &DesignSummary {
        self.slots()
            .summary
            .get_or_init(|| DesignSummary::of(self.design()))
    }

    /// The engine this analysis runs in.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// The options in effect (the engine's).
    pub fn options(&self) -> &AnalysisOptions {
        &self.engine.config.options
    }

    /// Attaches a cooperative cancellation flag: once
    /// [`CancelFlag::cancel`] is called (by a watchdog, typically), every
    /// accessor that would start a *new* stage returns
    /// [`EngineError::ResourceExhausted`] with the
    /// [`EngineStage::Deadline`] stage instead.
    pub fn with_cancel_flag(mut self, flag: CancelFlag) -> Analysis<'e> {
        self.cancel = Some(flag);
        self
    }

    fn budget(&self) -> &Budget {
        &self.engine.config.options.budget
    }

    /// The deadline/cancellation gate, checked before any not-yet-memoized
    /// stage starts.  Never memoized: it depends on wall-clock time.
    fn check_alive(&self) -> Result<(), EngineError> {
        let elapsed = u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX);
        if self.cancel.as_ref().is_some_and(CancelFlag::is_cancelled) {
            self.trace_event("cancel", elapsed);
            return Err(EngineError::ResourceExhausted {
                stage: EngineStage::Deadline,
                limit: self.budget().deadline_ms.unwrap_or(0),
                consumed: elapsed,
                pos: None,
            });
        }
        // Inclusive: a deadline of 0 ms is already expired when the handle
        // is created, which gives callers a deterministic "trip before the
        // first stage" switch.
        if let Some(deadline) = self.budget().deadline_ms {
            if elapsed >= deadline {
                self.trace_event("deadline", elapsed);
                return Err(EngineError::ResourceExhausted {
                    stage: EngineStage::Deadline,
                    limit: deadline,
                    consumed: elapsed,
                    pos: None,
                });
            }
        }
        Ok(())
    }

    fn slots(&self) -> &Slots {
        match &self.inner {
            Inner::Borrowed { slots, .. } => slots,
            Inner::Shared(memo) => &memo.slots,
        }
    }

    fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a memoized stage query (no span is allocated for hits).
    fn trace_hit(&self, stage: &'static str) {
        if let Some(sink) = &self.engine.trace {
            sink.memo_hit(stage);
        }
    }

    /// Records a deadline/cancel trip against this design.
    fn trace_event(&self, kind: &'static str, elapsed_ms: u64) {
        if let Some(sink) = &self.engine.trace {
            sink.event(&self.design().name, kind, elapsed_ms);
        }
    }

    /// The budget units consumed by an exhausted stage, for span work
    /// accounting on the failure path (zero for non-budget failures).
    fn consumed_of(e: &EngineError) -> u64 {
        match e {
            EngineError::ResourceExhausted { consumed, .. } => *consumed,
            _ => 0,
        }
    }

    /// Writes this memo's serving artifacts back to the engine's disk
    /// store.  Called by the serving accessors after a *fresh* computation;
    /// a no-op for handles without a store or without a key/source (i.e.
    /// [`Engine::analyze`] handles over caller-owned designs).  Best
    /// effort: an I/O failure costs persistence, never the analysis.
    fn persist(&self) {
        let Some(store) = &self.engine.store else {
            return;
        };
        let Inner::Shared(memo) = &self.inner else {
            return;
        };
        let (Some(key), Some(source)) = (memo.key, memo.source.as_deref()) else {
            return;
        };
        let mut artifact = Artifact::new(key, source.to_string());
        // The summary rides along with every write: the fresh path has the
        // design at hand, and the warm path restores it before anything
        // could ask for a re-parse.
        artifact.summary = Some(self.summary().clone());
        let slots = self.slots();
        artifact.graph = slots.graph.get().cloned();
        artifact.base_graph = slots.base_graph.get().cloned();
        artifact.merged_graph = slots.merged_graph.get().cloned();
        artifact.kemmerer = slots.kemmerer.get().cloned();
        artifact.graph_labels = slots.graph_labels.get().cloned();
        artifact.smoke = slots.smoke.get().and_then(|r| r.as_ref().ok()).copied();
        {
            let map = slots.dynflow.lock().expect("dynflow memo poisoned");
            for ((rounds, seed), cell) in map.iter() {
                if let Some(Ok(report)) = cell.get() {
                    artifact.dynflows.push((*rounds, *seed, (**report).clone()));
                }
            }
        }
        // Deterministic section order regardless of query order.
        artifact.dynflows.sort_by_key(|d| (d.0, d.1));
        if store.save(&artifact).is_ok() {
            self.engine
                .counters
                .store_writes
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The Reaching Definitions artifacts (Section 4).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ResourceExhausted`] (stage `rd`) when a
    /// fixpoint exceeds the budget's dataflow step limit, or stage
    /// `deadline` when the deadline/cancel gate trips first.
    pub fn rd(&self) -> Result<&ReachingDefinitions, EngineError> {
        if self.slots().rd.get().is_none() {
            self.check_alive()?;
        } else {
            self.trace_hit("rd");
        }
        self.slots()
            .rd
            .get_or_init(|| {
                self.bump(&self.engine.counters.rd);
                let span = self.engine.trace_begin("rd");
                let max = self.budget().max_dataflow_steps.unwrap_or(u64::MAX);
                let result =
                    ReachingDefinitions::compute_bounded(self.design(), &self.options().rd, max)
                        .map_err(|e| EngineError::ResourceExhausted {
                            stage: EngineStage::Rd,
                            limit: e.limit,
                            consumed: e.steps,
                            pos: None,
                        });
                if span.is_some() {
                    let (work, items) = match &result {
                        Ok(rd) => {
                            let labels = rd.cfg.labels().len() as u64;
                            (labels, labels)
                        }
                        Err(e) => (Self::consumed_of(e), 0),
                    };
                    self.engine
                        .trace_end(span, &self.design().name, work, items);
                }
                result
            })
            .as_ref()
            .map_err(|e| e.clone())
    }

    /// The local Resource Matrix `RM_lo` (Table 6).  Infallible: the local
    /// dependencies are a single linear pass, bounded by the source-size
    /// budget the front end already enforced.
    pub fn local(&self) -> &ResourceMatrix {
        if self.slots().local.get().is_some() {
            self.trace_hit("local");
        }
        self.slots().local.get_or_init(|| {
            self.bump(&self.engine.counters.local);
            let span = self.engine.trace_begin("local");
            let matrix = local_dependencies(self.design());
            if span.is_some() {
                let entries = matrix.len() as u64;
                self.engine
                    .trace_end(span, &self.design().name, entries, entries);
            }
            matrix
        })
    }

    /// The specialised Reaching Definitions (Table 7).
    ///
    /// # Errors
    ///
    /// Propagates the upstream [`Analysis::rd`] failure.
    pub fn specialized(&self) -> Result<&SpecializedRd, EngineError> {
        if self.slots().specialized.get().is_none() {
            self.check_alive()?;
            self.rd()?;
        } else {
            self.trace_hit("specialized");
        }
        Ok(self.slots().specialized.get_or_init(|| {
            let rd = self.rd().expect("rd forced above");
            let local = self.local();
            self.bump(&self.engine.counters.specialized);
            let span = self.engine.trace_begin("specialized");
            let spec = specialize_rd(rd, local, self.options().specialize_rd);
            if span.is_some() {
                let facts: u64 = spec.present.values().map(|s| s.len() as u64).sum::<u64>()
                    + spec.active.values().map(|s| s.len() as u64).sum::<u64>();
                let rows = (spec.present.len() + spec.active.len()) as u64;
                self.engine
                    .trace_end(span, &self.design().name, facts, rows);
            }
            spec
        }))
    }

    /// The global Resource Matrix `RM_gl` of the base closure (Table 8).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ResourceExhausted`] (stage `closure`) when
    /// the closure exceeds the budget's iteration limit, and propagates
    /// upstream failures.
    pub fn global(&self) -> Result<&ResourceMatrix, EngineError> {
        if self.slots().global.get().is_none() {
            self.check_alive()?;
            self.specialized()?;
        } else {
            self.trace_hit("global");
        }
        self.slots()
            .global
            .get_or_init(|| {
                let rd = self.rd().expect("rd forced above");
                let spec = self.specialized().expect("specialized forced above");
                let local = self.local();
                self.bump(&self.engine.counters.global);
                let span = self.engine.trace_begin("global");
                let max = self.budget().max_closure_iterations.unwrap_or(u64::MAX);
                let result =
                    global_closure_bounded(self.design(), rd, spec, local, max).map_err(|e| {
                        EngineError::ResourceExhausted {
                            stage: EngineStage::Closure,
                            limit: e.limit,
                            consumed: e.iterations,
                            pos: None,
                        }
                    });
                if span.is_some() {
                    let (work, items) = match &result {
                        Ok(matrix) => (matrix.len() as u64, matrix.len() as u64),
                        Err(e) => (Self::consumed_of(e), 0),
                    };
                    self.engine
                        .trace_end(span, &self.design().name, work, items);
                }
                result
            })
            .as_ref()
            .map_err(|e| e.clone())
    }

    /// The improved closure (Table 9), or `None` when the engine's options
    /// disable the improved analysis.  Only computed when queried — and
    /// never computed at all by [`Analysis::flow_graph`] under
    /// `improved: false`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ResourceExhausted`] (stage `improved`) when
    /// the combined fixpoint exceeds the budget's iteration limit, and
    /// propagates upstream failures.
    pub fn improved(&self) -> Result<Option<&ImprovedClosure>, EngineError> {
        if self.slots().improved.get().is_none() {
            self.check_alive()?;
            if self.options().improved {
                self.specialized()?;
            }
        } else if self.options().improved {
            self.trace_hit("improved");
        }
        self.slots()
            .improved
            .get_or_init(|| {
                if !self.options().improved {
                    return Ok(None);
                }
                let rd = self.rd().expect("rd forced above");
                let spec = self.specialized().expect("specialized forced above");
                let local = self.local();
                self.bump(&self.engine.counters.improved);
                let span = self.engine.trace_begin("improved");
                let max = self.budget().max_closure_iterations.unwrap_or(u64::MAX);
                let result = improved_closure_bounded(
                    self.design(),
                    rd,
                    spec,
                    local,
                    &self.options().improved_options,
                    max,
                )
                .map(Some)
                .map_err(|e| EngineError::ResourceExhausted {
                    stage: EngineStage::Improved,
                    limit: e.limit,
                    consumed: e.iterations,
                    pos: None,
                });
                if span.is_some() {
                    let (work, items) = match &result {
                        Ok(Some(imp)) => (imp.matrix.len() as u64, imp.matrix.len() as u64),
                        Ok(None) => (0, 0),
                        Err(e) => (Self::consumed_of(e), 0),
                    };
                    self.engine
                        .trace_end(span, &self.design().name, work, items);
                }
                result
            })
            .as_ref()
            .map(|o| o.as_ref())
            .map_err(|e| e.clone())
    }

    /// The information-flow graph of the analysis: the improved graph when
    /// the engine's options request the improved analysis, the base graph
    /// otherwise.
    ///
    /// Memoized: repeated calls return the same reference without rebuilding
    /// the graph (the repeated-rebuild hot spot of the eager
    /// [`AnalysisResult::flow_graph`]).
    ///
    /// # Errors
    ///
    /// Propagates the failure of whichever closure the graph is built from.
    ///
    /// # Examples
    ///
    /// ```
    /// use vhdl1_infoflow::Engine;
    ///
    /// let design = vhdl1_syntax::frontend(
    ///     "entity e is port(a : in std_logic; b : out std_logic); end e;
    ///      architecture rtl of e is begin
    ///        p : process begin b <= a; wait on a; end process p;
    ///      end rtl;")?;
    /// let engine = Engine::default();
    /// let analysis = engine.analyze(&design);
    /// let first = analysis.flow_graph()?;
    /// assert!(first.has_edge("a", "b"));
    /// // Same allocation, not an equal copy:
    /// assert!(std::ptr::eq(first, analysis.flow_graph()?));
    /// assert_eq!(engine.stats().flow_graph, 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn flow_graph(&self) -> Result<&FlowGraph, EngineError> {
        let fresh = self.slots().graph.get().is_none();
        if fresh {
            self.check_alive()?;
            if self.improved()?.is_none() {
                self.global()?;
            }
        } else {
            self.trace_hit("flow_graph");
        }
        let graph = self.slots().graph.get_or_init(|| {
            let matrix = match self.improved().expect("improved forced above") {
                Some(imp) => &imp.matrix,
                None => self.global().expect("global forced above"),
            };
            self.bump(&self.engine.counters.flow_graph);
            let span = self.engine.trace_begin("flow_graph");
            let graph = FlowGraph::from_resource_matrix(matrix);
            if span.is_some() {
                self.engine.trace_end(
                    span,
                    &self.design().name,
                    graph.node_count() as u64,
                    graph.edge_count() as u64,
                );
            }
            graph
        });
        if fresh {
            self.persist();
        }
        Ok(graph)
    }

    /// Per-node label annotations for DOT rendering
    /// ([`FlowGraph::to_dot_with`]): the labels at which the design
    /// accesses each graph node, derived from the local Resource Matrix.
    ///
    /// Persisted with the artifact, so rendering an annotated graph from a
    /// warm persistent cache runs zero front-end work — unlike going
    /// through [`Analysis::design`], which re-elaborates the stored source.
    pub fn graph_labels(&self) -> &GraphLabels {
        let fresh = self.slots().graph_labels.get().is_none();
        let labels = self
            .slots()
            .graph_labels
            .get_or_init(|| GraphLabels::of(self.local()));
        if fresh {
            self.persist();
        }
        labels
    }

    /// The information-flow graph of the base (non-improved) closure,
    /// memoized independently of [`Analysis::flow_graph`].
    ///
    /// # Errors
    ///
    /// Propagates the failure of the base closure.
    pub fn base_flow_graph(&self) -> Result<&FlowGraph, EngineError> {
        let fresh = self.slots().base_graph.get().is_none();
        if fresh {
            self.check_alive()?;
            self.global()?;
        } else {
            self.trace_hit("flow_graph");
        }
        let graph = self.slots().base_graph.get_or_init(|| {
            let global = self.global().expect("global forced above");
            self.bump(&self.engine.counters.flow_graph);
            let span = self.engine.trace_begin("flow_graph");
            let graph = FlowGraph::from_resource_matrix(global);
            if span.is_some() {
                self.engine.trace_end(
                    span,
                    &self.design().name,
                    graph.node_count() as u64,
                    graph.edge_count() as u64,
                );
            }
            graph
        });
        if fresh {
            self.persist();
        }
        Ok(graph)
    }

    /// [`Analysis::flow_graph`] with incoming/outgoing nodes merged into
    /// their underlying resources — the presentation form policies talk
    /// about, and the graph [`Analysis::audit`] checks.
    ///
    /// # Errors
    ///
    /// Propagates the failure of [`Analysis::flow_graph`].
    pub fn merged_flow_graph(&self) -> Result<&FlowGraph, EngineError> {
        let fresh = self.slots().merged_graph.get().is_none();
        if fresh {
            self.flow_graph()?;
        } else {
            self.trace_hit("flow_graph");
        }
        let graph = self.slots().merged_graph.get_or_init(|| {
            let graph = self.flow_graph().expect("flow graph forced above");
            self.bump(&self.engine.counters.flow_graph);
            let span = self.engine.trace_begin("flow_graph");
            let merged = graph.merge_io_nodes();
            if span.is_some() {
                self.engine.trace_end(
                    span,
                    &self.design().name,
                    merged.node_count() as u64,
                    merged.edge_count() as u64,
                );
            }
            merged
        });
        if fresh {
            self.persist();
        }
        Ok(graph)
    }

    /// The graph produced by Kemmerer's method on the same local Resource
    /// Matrix (the paper's comparison baseline).  Needs only Table 6.
    ///
    /// # Errors
    ///
    /// Fails only through the deadline/cancel gate (the Kemmerer baseline
    /// has no counter budget of its own).
    pub fn kemmerer_graph(&self) -> Result<&FlowGraph, EngineError> {
        let fresh = self.slots().kemmerer.get().is_none();
        if fresh {
            self.check_alive()?;
        } else {
            self.trace_hit("kemmerer");
        }
        let graph = self.slots().kemmerer.get_or_init(|| {
            let local = self.local();
            self.bump(&self.engine.counters.kemmerer);
            let span = self.engine.trace_begin("kemmerer");
            let graph = kemmerer_graph_from_matrix(local);
            if span.is_some() {
                self.engine.trace_end(
                    span,
                    &self.design().name,
                    graph.node_count() as u64,
                    graph.edge_count() as u64,
                );
            }
            graph
        });
        if fresh {
            self.persist();
        }
        Ok(graph)
    }

    /// Audits the (merged) flow graph against a policy.
    ///
    /// The graph is memoized; the audit itself is recomputed per call since
    /// it depends on the caller's policy.
    ///
    /// # Errors
    ///
    /// Propagates the failure of [`Analysis::merged_flow_graph`].
    pub fn audit(&self, policy: &Policy) -> Result<AuditReport, EngineError> {
        Ok(audit(self.merged_flow_graph()?, policy))
    }

    /// Smoke-simulates the design to quiescence on the dense simulator core
    /// and reports the delta-cycle count plus a digest of the run's **whole
    /// state trajectory** — every delta cycle's changed signals folded in
    /// order, then the quiescent state of every signal (the Section 6 "does
    /// it actually run" validation).  Two designs that merely *end* in the
    /// same state digest differently when they took different paths there,
    /// which is what makes the digest usable as a twin-run comparison key.
    ///
    /// Memoized like every other stage: the first call compiles and runs
    /// the design (its `max_deltas` bound applies, further capped by the
    /// budget's `max_sim_deltas`); repeated calls return the recorded
    /// outcome without re-simulating.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Sim`] for compilation or execution failures
    /// (positioned whenever the offending construct was parsed from source
    /// text), or [`EngineError::ResourceExhausted`] (stage `smoke`) when
    /// the *budget's* simulation limits cut the run short — exceeding the
    /// caller's own `max_deltas` stays an [`EngineError::Sim`].
    pub fn smoke(&self, max_deltas: u64) -> Result<SmokeReport, EngineError> {
        let fresh = self.slots().smoke.get().is_none();
        if fresh {
            self.check_alive()?;
        } else {
            self.trace_hit("smoke");
        }
        let report = self
            .slots()
            .smoke
            .get_or_init(|| {
                self.bump(&self.engine.counters.smoke);
                let span = self.engine.trace_begin("smoke");
                let budget = *self.budget();
                let budget_deltas = budget.max_sim_deltas.unwrap_or(u64::MAX);
                let effective_deltas = max_deltas.min(budget_deltas);
                let design = self.design();
                let run = || -> Result<SmokeReport, SimError> {
                    let mut sim = Simulator::with_options(
                        design,
                        SimOptions {
                            max_total_steps: budget.max_sim_steps,
                            ..SimOptions::default()
                        },
                    )?;
                    // Mirror `run_until_quiescent` delta accounting exactly,
                    // but fold every intermediate delta's changed signals
                    // into the digest as we go.
                    let mut digest_input = String::new();
                    let mut deltas: u64 = 0;
                    while let Some(report) = sim.delta_step()? {
                        deltas += 1;
                        if deltas > effective_deltas {
                            return Err(SimError::DeltaLimitExceeded {
                                limit: effective_deltas,
                            });
                        }
                        digest_input.push_str("delta ");
                        digest_input.push_str(&deltas.to_string());
                        digest_input.push('\n');
                        for sig in &report.changed {
                            let value = sim.signal(sig).expect("changed signal exists");
                            digest_input.push_str(sig);
                            digest_input.push('=');
                            digest_input.push_str(&value.to_literal());
                            digest_input.push('\n');
                        }
                    }
                    digest_input.push_str("quiescent\n");
                    for sig in &design.signals {
                        let value = sim.signal(&sig.name).expect("signal exists");
                        digest_input.push_str(&sig.name);
                        digest_input.push('=');
                        digest_input.push_str(&value.to_literal());
                        digest_input.push('\n');
                    }
                    Ok(SmokeReport {
                        deltas,
                        state_digest: fnv1a64(digest_input.as_bytes()),
                    })
                };
                let result = run().map_err(|e| match e {
                    // A delta overrun is budget exhaustion only when the
                    // budget (not the caller's bound) was the binding limit.
                    SimError::DeltaLimitExceeded { limit }
                        if limit == budget_deltas && budget_deltas < max_deltas =>
                    {
                        EngineError::ResourceExhausted {
                            stage: EngineStage::Smoke,
                            limit,
                            consumed: limit + 1,
                            pos: None,
                        }
                    }
                    SimError::TotalStepLimitExceeded { limit } => EngineError::ResourceExhausted {
                        stage: EngineStage::Smoke,
                        limit,
                        consumed: limit + 1,
                        pos: None,
                    },
                    other => EngineError::Sim(other),
                });
                if span.is_some() {
                    let (work, items) = match &result {
                        Ok(smoke) => (smoke.deltas, design.signals.len() as u64),
                        Err(e) => (Self::consumed_of(e), 0),
                    };
                    self.engine.trace_end(span, &design.name, work, items);
                }
                result
            })
            .clone();
        if fresh && report.is_ok() {
            self.persist();
        }
        report
    }

    /// Witnesses dynamic flows by secret-perturbation differential
    /// simulation and cross-checks them against the static flow graphs: the
    /// design runs `rounds` seeded stimulus rounds per input port as a twin
    /// pair over one shared compile (`vhdl1-dynflow`), and the witnessed
    /// divergences are measured against [`Analysis::merged_flow_graph`] and
    /// [`Analysis::kemmerer_graph`] — soundness violations (witnessed flows
    /// the static analysis misses), unwitnessed static edges (precision),
    /// and per-edge coverage.
    ///
    /// Memoized per `(rounds, seed)`: distinct parameter pairs are
    /// independent computations, equal pairs compute exactly once per design
    /// (counted by [`EngineStats::dynamic_flows`]) even across threads
    /// sharing a memo-table entry.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Sim`] when the design fails to compile or
    /// execute, or [`EngineError::ResourceExhausted`] (stage `dynflow`) when
    /// the budget's simulation limits cut the sweep short — and propagates
    /// the failure of the static graphs it cross-checks against.
    pub fn dynamic_flows(&self, rounds: u64, seed: u64) -> Result<Arc<DynFlowReport>, EngineError> {
        let cell = {
            let mut map = self.slots().dynflow.lock().expect("dynflow memo poisoned");
            Arc::clone(map.entry((rounds, seed)).or_default())
        };
        let fresh = cell.get().is_none();
        if fresh {
            self.check_alive()?;
            self.merged_flow_graph()?;
            self.kemmerer_graph()?;
        } else {
            self.trace_hit("dynamic_flows");
        }
        let report = cell
            .get_or_init(|| {
                self.bump(&self.engine.counters.dynflow);
                let span = self.engine.trace_begin("dynamic_flows");
                let budget = *self.budget();
                let budget_deltas = budget.max_sim_deltas.unwrap_or(u64::MAX);
                let max_deltas = DYNFLOW_MAX_DELTAS.min(budget_deltas);
                let options = DynFlowOptions {
                    rounds,
                    seed,
                    max_deltas_per_run: max_deltas,
                    max_total_steps: budget.max_sim_steps,
                };
                let merged = self.merged_flow_graph().expect("merged graph forced above");
                let kemmerer = self.kemmerer_graph().expect("kemmerer graph forced above");
                let result = vhdl1_dynflow::witness(self.design(), &options)
                    .map(|w| Arc::new(cross_check(&w, merged, kemmerer)))
                    .map_err(|e| match e {
                        // A delta overrun is budget exhaustion only when the
                        // budget (not the built-in per-run cap) was binding.
                        SimError::DeltaLimitExceeded { limit }
                            if limit == budget_deltas && budget_deltas < DYNFLOW_MAX_DELTAS =>
                        {
                            EngineError::ResourceExhausted {
                                stage: EngineStage::DynFlow,
                                limit,
                                consumed: limit + 1,
                                pos: None,
                            }
                        }
                        SimError::TotalStepLimitExceeded { limit } => {
                            EngineError::ResourceExhausted {
                                stage: EngineStage::DynFlow,
                                limit,
                                consumed: limit + 1,
                                pos: None,
                            }
                        }
                        other => EngineError::Sim(other),
                    });
                if span.is_some() {
                    let (work, items) = match &result {
                        Ok(report) => (report.total_deltas, report.static_edges as u64),
                        Err(e) => (Self::consumed_of(e), 0),
                    };
                    self.engine
                        .trace_end(span, &self.design().name, work, items);
                }
                result
            })
            .clone();
        if fresh && report.is_ok() {
            self.persist();
        }
        report
    }

    /// Materialises the owned, eager [`AnalysisResult`] of the classic API,
    /// computing any stage not yet demanded.
    ///
    /// Stages already computed are moved out (borrowed handles) or cloned
    /// (handles sharing a memo-table entry).
    ///
    /// # Panics
    ///
    /// Panics when the engine's budget cuts a stage short — the eager API
    /// predates budgets and has no error channel.  Budget-aware callers use
    /// [`Analysis::try_into_result`].
    pub fn into_result(self) -> AnalysisResult {
        match self.try_into_result() {
            Ok(result) => result,
            Err(e) => panic!("analysis exceeded its budget: {e}"),
        }
    }

    /// Fallible [`Analysis::into_result`]: materialises the owned
    /// [`AnalysisResult`], surfacing budget exhaustion as an error instead
    /// of panicking.
    ///
    /// # Errors
    ///
    /// Returns the [`EngineError`] of the first stage that exceeded the
    /// budget (or tripped the deadline/cancel gate).
    pub fn try_into_result(self) -> Result<AnalysisResult, EngineError> {
        // Force every stage the eager result carries.
        self.global()?;
        self.improved()?;
        let design_name = self.design().name.clone();
        let options = *self.options();
        let take = |slots: Slots| AnalysisResult {
            design_name: design_name.clone(),
            options,
            rd: slots
                .rd
                .into_inner()
                .expect("rd forced above")
                .expect("rd errors propagated above"),
            local: slots.local.into_inner().expect("local forced above"),
            specialized: slots
                .specialized
                .into_inner()
                .expect("specialized forced above"),
            global: slots
                .global
                .into_inner()
                .expect("global forced above")
                .expect("global errors propagated above"),
            improved: slots
                .improved
                .into_inner()
                .expect("improved forced above")
                .expect("improved errors propagated above"),
        };
        Ok(match self.inner {
            Inner::Borrowed { slots, .. } => take(*slots),
            Inner::Shared(memo) => match Arc::try_unwrap(memo) {
                Ok(memo) => take(memo.slots),
                Err(memo) => AnalysisResult {
                    design_name,
                    options,
                    rd: memo
                        .slots
                        .rd
                        .get()
                        .expect("rd forced above")
                        .as_ref()
                        .expect("rd errors propagated above")
                        .clone(),
                    local: memo.slots.local.get().expect("local forced above").clone(),
                    specialized: memo
                        .slots
                        .specialized
                        .get()
                        .expect("specialized forced above")
                        .clone(),
                    global: memo
                        .slots
                        .global
                        .get()
                        .expect("global forced above")
                        .as_ref()
                        .expect("global errors propagated above")
                        .clone(),
                    improved: memo
                        .slots
                        .improved
                        .get()
                        .expect("improved forced above")
                        .as_ref()
                        .expect("improved errors propagated above")
                        .clone(),
                },
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_with;
    use vhdl1_syntax::frontend;

    const COPY: &str = "entity e is port(a : in std_logic; b : out std_logic); end e;
         architecture rtl of e is begin
           p : process begin b <= a; wait on a; end process p;
         end rtl;";

    const TWO_PROC: &str = "entity e is port(a : in std_logic; b : out std_logic); end e;
         architecture rtl of e is
           signal t : std_logic;
         begin
           p1 : process begin t <= a; wait on a; end process p1;
           p2 : process begin b <= t; wait on t; end process p2;
         end rtl;";

    #[test]
    fn nothing_computes_until_demanded() {
        let design = frontend(COPY).unwrap();
        let engine = Engine::default();
        let _analysis = engine.analyze(&design);
        assert_eq!(engine.stats(), EngineStats::default());
    }

    #[test]
    fn each_stage_computes_once_and_returns_the_same_reference() {
        let design = frontend(COPY).unwrap();
        let engine = Engine::default();
        let analysis = engine.analyze(&design);
        let rd1 = analysis.rd().unwrap() as *const _;
        let rd2 = analysis.rd().unwrap() as *const _;
        assert_eq!(rd1, rd2);
        let g1 = analysis.flow_graph().unwrap() as *const _;
        let g2 = analysis.flow_graph().unwrap() as *const _;
        assert_eq!(g1, g2);
        let k1 = analysis.kemmerer_graph().unwrap() as *const _;
        let k2 = analysis.kemmerer_graph().unwrap() as *const _;
        assert_eq!(k1, k2);
        let stats = engine.stats();
        assert_eq!(stats.rd, 1);
        assert_eq!(stats.flow_graph, 1);
        assert_eq!(stats.kemmerer, 1);
    }

    #[test]
    fn base_options_flow_graph_performs_no_table9_work() {
        let design = frontend(TWO_PROC).unwrap();
        let engine = Engine::with_options(AnalysisOptions::base());
        let analysis = engine.analyze(&design);
        assert!(analysis.flow_graph().unwrap().has_edge("a", "b"));
        let stats = engine.stats();
        assert_eq!(stats.improved, 0, "Table 9 must not run under base options");
        assert_eq!(stats.rd, 1);
        assert_eq!(stats.global, 1);
        // The improved query itself answers None without running Table 9.
        assert!(analysis.improved().unwrap().is_none());
        assert_eq!(engine.stats().improved, 0);
    }

    #[test]
    fn kemmerer_graph_needs_only_table6() {
        let design = frontend(TWO_PROC).unwrap();
        let engine = Engine::default();
        let analysis = engine.analyze(&design);
        let _ = analysis.kemmerer_graph().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.local, 1);
        assert_eq!(stats.rd, 0, "Kemmerer's method is RD-free");
        assert_eq!(stats.global, 0);
        assert_eq!(stats.improved, 0);
    }

    #[test]
    fn into_result_matches_the_eager_pipeline() {
        let design = frontend(TWO_PROC).unwrap();
        let options = AnalysisOptions::default();
        let eager = analyze_with(&design, &options);
        let engine = Engine::with_options(options);
        let lazy = engine.analyze(&design).into_result();
        assert_eq!(eager, lazy);
        // And after partial demand in graph-first order:
        let analysis = engine.analyze(&design);
        let _ = analysis.flow_graph().unwrap();
        assert_eq!(eager, analysis.into_result());
    }

    #[test]
    fn analyze_source_memoizes_by_content_hash() {
        let engine = Engine::default();
        let a = engine.analyze_source(COPY).unwrap();
        let _ = a.flow_graph().unwrap();
        let b = engine.analyze_source(COPY).unwrap();
        // Shared memo: the graph is the very same allocation.
        assert!(std::ptr::eq(
            a.flow_graph().unwrap(),
            b.flow_graph().unwrap()
        ));
        let stats = engine.stats();
        assert_eq!(stats.frontend, 1, "second call must not reparse");
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.flow_graph, 1);
        assert_eq!(engine.cached_designs(), 1);
    }

    #[test]
    fn analyze_sources_preserves_order_and_reports_failing_index() {
        let engine = Engine::default();
        let renamed = COPY.replace("rtl", "second");
        let analyses = engine.analyze_sources([COPY, renamed.as_str()]).unwrap();
        assert_eq!(analyses.len(), 2);
        assert_eq!(analyses[0].design().name, "rtl");
        assert_eq!(analyses[1].design().name, "second");
        assert!(analyses
            .iter()
            .all(|a| a.flow_graph().unwrap().has_edge("a", "b")));

        let (index, err) = engine
            .analyze_sources([COPY, "entity broken"])
            .expect_err("second source must fail");
        assert_eq!(index, 1);
        assert_eq!(err.phase(), Some(EnginePhase::Parse));
    }

    #[test]
    fn disabled_cache_reparses_every_time() {
        let engine = Engine::new(EngineConfig {
            cache: CachePolicy::Disabled,
            ..EngineConfig::default()
        });
        let _ = engine.analyze_source(COPY).unwrap();
        let _ = engine.analyze_source(COPY).unwrap();
        assert_eq!(engine.stats().frontend, 2);
        assert_eq!(engine.cached_designs(), 0);
    }

    #[test]
    fn capped_cache_evicts_oldest() {
        let engine = Engine::new(EngineConfig {
            cache: CachePolicy::Capped(2),
            ..EngineConfig::default()
        });
        let srcs: Vec<String> = (0..3)
            .map(|i| COPY.replace("rtl", &format!("r{i}")))
            .collect();
        for s in &srcs {
            let _ = engine.analyze_source(s).unwrap();
        }
        assert_eq!(engine.cached_designs(), 2);
        // Oldest (r0) evicted: analysing it again is a miss.
        let _ = engine.analyze_source(&srcs[0]).unwrap();
        assert_eq!(engine.stats().cache_hits, 0);
        assert_eq!(engine.stats().frontend, 4);
    }

    #[test]
    fn clear_cache_forgets_designs() {
        let engine = Engine::default();
        let _ = engine.analyze_source(COPY).unwrap();
        assert_eq!(engine.cached_designs(), 1);
        engine.clear_cache();
        assert_eq!(engine.cached_designs(), 0);
        let _ = engine.analyze_source(COPY).unwrap();
        assert_eq!(engine.stats().frontend, 2);
    }

    #[test]
    fn source_key_depends_on_options() {
        let base = Engine::with_options(AnalysisOptions::base());
        let full = Engine::default();
        assert_ne!(base.source_key(COPY), full.source_key(COPY));
        assert_eq!(full.source_key(COPY), Engine::default().source_key(COPY));
        assert_ne!(full.source_key(COPY), full.source_key(TWO_PROC));
        // The budget participates in the key: tight and unlimited budgets
        // never share memo slots (truncation points stay deterministic).
        let tight = Engine::with_options(AnalysisOptions {
            budget: Budget::tight(),
            ..AnalysisOptions::default()
        });
        assert_ne!(tight.source_key(COPY), full.source_key(COPY));
    }

    #[test]
    fn engine_errors_are_structured() {
        let engine = Engine::default();

        let parse_err = engine.analyze_source("entity oops").unwrap_err();
        assert_eq!(parse_err.phase(), Some(EnginePhase::Parse));
        assert!(parse_err.pos().is_some());
        assert!(!parse_err.is_resource_exhausted());
        assert_eq!(parse_err.stage(), None);

        let elab_src = "entity e is port(a : in std_logic; b : out std_logic); end e;
architecture rtl of e is begin
  p : process begin b <= ghost; wait on a; end process;
end rtl;";
        let elab_err = engine.analyze_source(elab_src).unwrap_err();
        assert_eq!(elab_err.phase(), Some(EnginePhase::Elaborate));
        assert_eq!(elab_err.line_col(), Some((3, 26)));
        assert!(elab_err.to_string().contains("elaborate error at 3:26"));
        assert!(elab_err.message().contains("ghost"));
        // The original front-end error rides along as the source.
        use std::error::Error as _;
        assert!(elab_err.source().is_some());

        // Errors are not memoized as designs.
        assert_eq!(engine.cached_designs(), 0);
    }

    #[test]
    fn oversized_source_exhausts_the_frontend_budget() {
        let engine = Engine::with_options(AnalysisOptions {
            budget: Budget {
                max_source_bytes: Some(64),
                ..Budget::default()
            },
            ..AnalysisOptions::default()
        });
        let err = engine.analyze_source(COPY).unwrap_err();
        assert_eq!(err.stage(), Some(EngineStage::Frontend));
        assert!(err.is_resource_exhausted());
        let EngineError::ResourceExhausted {
            limit, consumed, ..
        } = &err
        else {
            panic!("expected ResourceExhausted, got {err:?}");
        };
        assert_eq!(*limit, 64);
        assert_eq!(*consumed, COPY.len() as u64);
        assert!(
            err.to_string().contains("frontend budget exhausted"),
            "{err}"
        );
        // Exhaustion never pollutes the memo table.
        assert_eq!(engine.cached_designs(), 0);
    }

    #[test]
    fn deep_nesting_exhausts_the_parse_depth_budget() {
        let engine = Engine::with_options(AnalysisOptions {
            budget: Budget {
                max_parse_depth: Some(8),
                ..Budget::default()
            },
            ..AnalysisOptions::default()
        });
        let nested = format!(
            "architecture a of e is begin p : process begin x := {}a{}; \
             wait; end process p; end a;",
            "(".repeat(40),
            ")".repeat(40)
        );
        let err = engine.analyze_source(&nested).unwrap_err();
        assert_eq!(err.stage(), Some(EngineStage::Frontend));
        assert!(err.pos().is_some(), "depth exhaustion carries a position");
    }

    #[test]
    fn rd_budget_exhaustion_is_structured_and_memoized() {
        let engine = Engine::with_options(AnalysisOptions {
            budget: Budget {
                max_dataflow_steps: Some(1),
                ..Budget::default()
            },
            ..AnalysisOptions::default()
        });
        let analysis = engine.analyze_source(TWO_PROC).unwrap();
        let err = analysis.rd().unwrap_err();
        assert_eq!(err.stage(), Some(EngineStage::Rd));
        // Downstream queries see the same error (memoized, not recomputed).
        let err2 = analysis.flow_graph().unwrap_err();
        assert_eq!(err, err2);
        assert_eq!(engine.stats().rd, 1, "the failed stage ran exactly once");
        // A second handle over the same source replays the memoized failure.
        let again = engine.analyze_source(TWO_PROC).unwrap();
        assert_eq!(again.rd().unwrap_err(), err);
        assert_eq!(engine.stats().rd, 1);
    }

    #[test]
    fn closure_budget_exhaustion_names_the_closure_stage() {
        let engine = Engine::with_options(AnalysisOptions {
            improved: false,
            budget: Budget {
                max_closure_iterations: Some(1),
                ..Budget::default()
            },
            ..AnalysisOptions::default()
        });
        let design = frontend(TWO_PROC).unwrap();
        let analysis = engine.analyze(&design);
        let err = analysis.global().unwrap_err();
        assert_eq!(err.stage(), Some(EngineStage::Closure));
        // rd itself is fine: only the closure was cut off.
        assert!(analysis.rd().is_ok());
        // The improved stage of a budgeted engine with improved: true
        // reports its own stage name.
        let engine2 = Engine::with_options(AnalysisOptions {
            budget: Budget {
                max_closure_iterations: Some(1),
                ..Budget::default()
            },
            ..AnalysisOptions::default()
        });
        let analysis2 = engine2.analyze(&design);
        assert_eq!(
            analysis2.improved().unwrap_err().stage(),
            Some(EngineStage::Improved)
        );
    }

    #[test]
    fn try_into_result_surfaces_exhaustion_where_into_result_panics() {
        let engine = Engine::with_options(AnalysisOptions {
            budget: Budget {
                max_dataflow_steps: Some(1),
                ..Budget::default()
            },
            ..AnalysisOptions::default()
        });
        let design = frontend(TWO_PROC).unwrap();
        let err = engine.analyze(&design).try_into_result().unwrap_err();
        assert_eq!(err.stage(), Some(EngineStage::Rd));
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.analyze(&design).into_result()
        }))
        .unwrap_err();
        let text = panic.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("exceeded its budget"), "{text}");
    }

    #[test]
    fn cancel_flag_stops_new_stages_but_keeps_memoized_ones() {
        let design = frontend(TWO_PROC).unwrap();
        let engine = Engine::default();
        let flag = CancelFlag::new();
        let analysis = engine.analyze(&design).with_cancel_flag(flag.clone());
        // Before cancellation everything works.
        assert!(analysis.rd().is_ok());
        flag.cancel();
        // Memoized stages stay readable; new stages are refused.
        assert!(analysis.rd().is_ok());
        let err = analysis.global().unwrap_err();
        assert_eq!(err.stage(), Some(EngineStage::Deadline));
        assert_eq!(engine.stats().global, 0, "no new work after cancel");
        // A fresh, uncancelled handle over the same design is unaffected.
        assert!(engine.analyze(&design).global().is_ok());
    }

    #[test]
    fn elapsed_deadline_refuses_new_stages() {
        let engine = Engine::with_options(AnalysisOptions {
            budget: Budget {
                deadline_ms: Some(0),
                ..Budget::default()
            },
            ..AnalysisOptions::default()
        });
        let design = frontend(TWO_PROC).unwrap();
        let analysis = engine.analyze(&design);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let err = analysis.rd().unwrap_err();
        assert_eq!(err.stage(), Some(EngineStage::Deadline));
        let EngineError::ResourceExhausted { consumed, .. } = err else {
            panic!("deadline must report ResourceExhausted");
        };
        assert!(consumed >= 5);
        assert_eq!(engine.stats().rd, 0);
    }

    #[test]
    fn audit_uses_the_merged_graph() {
        let design = frontend(COPY).unwrap();
        let engine = Engine::default();
        let analysis = engine.analyze(&design);
        let strict = Policy::new().with_level("a", 1).with_level("b", 0);
        let report = analysis.audit(&strict).unwrap();
        assert_eq!(report.violations.len(), 1);
        // A second audit with another policy reuses the memoized graph.
        let graphs_before = engine.stats().flow_graph;
        let permissive = analysis.audit(&Policy::new()).unwrap();
        assert!(permissive.violations.is_empty());
        assert_eq!(engine.stats().flow_graph, graphs_before);
    }

    #[test]
    fn smoke_simulates_once_and_memoizes_the_outcome() {
        let design = frontend(TWO_PROC).unwrap();
        let engine = Engine::default();
        let analysis = engine.analyze(&design);
        let first = analysis.smoke(1_000).expect("two-process copy quiesces");
        assert!(first.deltas >= 1);
        // Second query — even with a different bound — replays the memo.
        let second = analysis.smoke(1).unwrap();
        assert_eq!(first, second);
        assert_eq!(engine.stats().smoke, 1);
        // The digest is deterministic across engines and analyses.
        let other = Engine::default();
        let again = other.analyze(&design).smoke(1_000).unwrap();
        assert_eq!(first.state_digest, again.state_digest);
        assert_eq!(first.deltas, again.deltas);
        // Smoke needs no analysis stages at all.
        assert_eq!(engine.stats().rd, 0);
    }

    #[test]
    fn smoke_errors_are_recorded_with_positions() {
        // An out-of-range slice passes elaboration but fails simulator
        // compilation; the error carries its source position.
        let src = "entity e is port(a : in std_logic_vector(3 downto 0); b : out std_logic); end e;
architecture rtl of e is begin
  p : process begin
    b <= a(9 downto 8);
    wait on a;
  end process;
end rtl;";
        let engine = Engine::default();
        let analysis = engine.analyze_source(src).unwrap();
        let err = analysis.smoke(100).unwrap_err();
        assert_eq!(err.line_col().map(|(l, _)| l), Some(4), "{err}");
        assert!(err.to_string().contains("at 4:"), "{err}");
        assert!(matches!(err, EngineError::Sim(_)));
        // Errors are memoized too.
        let err2 = analysis.smoke(100).unwrap_err();
        assert_eq!(err, err2);
        assert_eq!(engine.stats().smoke, 1);
    }

    #[test]
    fn smoke_distinguishes_budget_exhaustion_from_caller_bounds() {
        // An oscillator never quiesces (the seed assignment makes t definite,
        // after which every wake flips it): under a budget delta cap below
        // the caller's bound, that is resource exhaustion …
        let ring = "entity e is port(a : in std_logic); end e;
architecture rtl of e is
  signal t : std_logic;
begin
  p : process begin t <= '1'; wait on t; t <= not t; wait on t; end process p;
end rtl;";
        let engine = Engine::with_options(AnalysisOptions {
            budget: Budget {
                max_sim_deltas: Some(10),
                ..Budget::default()
            },
            ..AnalysisOptions::default()
        });
        let design = frontend(ring).unwrap();
        let err = engine.analyze(&design).smoke(1_000).unwrap_err();
        assert_eq!(err.stage(), Some(EngineStage::Smoke));
        // … while the same overrun against the caller's own (tighter or
        // equal) bound stays a plain simulation error.
        let plain = Engine::default();
        let err = plain.analyze(&design).smoke(10).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Sim(SimError::DeltaLimitExceeded { limit: 10 })
        ));
    }

    #[test]
    fn smoke_step_budget_exhaustion_is_structured() {
        let engine = Engine::with_options(AnalysisOptions {
            budget: Budget {
                max_sim_steps: Some(2),
                ..Budget::default()
            },
            ..AnalysisOptions::default()
        });
        let design = frontend(TWO_PROC).unwrap();
        let err = engine.analyze(&design).smoke(1_000).unwrap_err();
        assert_eq!(err.stage(), Some(EngineStage::Smoke));
        let EngineError::ResourceExhausted { limit, .. } = err else {
            panic!("step overrun must be ResourceExhausted");
        };
        assert_eq!(limit, 2);
    }

    #[test]
    fn shared_engine_is_usable_across_threads() {
        let engine = Engine::default();
        let srcs: Vec<String> = (0..8)
            .map(|i| COPY.replace("rtl", &format!("t{i}")))
            .collect();
        std::thread::scope(|scope| {
            for chunk in srcs.chunks(2) {
                let engine = &engine;
                scope.spawn(move || {
                    for src in chunk {
                        let analysis = engine.analyze_source(src).unwrap();
                        assert!(analysis.flow_graph().unwrap().has_edge("a", "b"));
                    }
                });
            }
        });
        assert_eq!(engine.cached_designs(), 8);
        assert_eq!(engine.stats().flow_graph, 8);
    }

    /// Self-cleaning scratch directory for persistent-cache tests.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "vhdl1-engine-{tag}-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn persistent_engine(dir: &std::path::Path) -> Engine {
        Engine::new(EngineConfig {
            options: AnalysisOptions::default(),
            cache: CachePolicy::Persistent {
                dir: dir.to_path_buf(),
                cap: 16,
            },
        })
    }

    #[test]
    fn persistent_cache_survives_engine_restart_without_reparsing() {
        let tmp = TempDir::new("warm");
        let (cold_graph, cold_summary) = {
            let engine = persistent_engine(&tmp.0);
            let analysis = engine.analyze_source(COPY).unwrap();
            let graph = analysis.merged_flow_graph().unwrap().clone();
            let summary = analysis.summary().clone();
            let stats = engine.stats();
            assert_eq!(stats.frontend, 1);
            assert_eq!(stats.store_misses, 1, "cold start misses the store");
            assert!(
                stats.store_writes >= 1,
                "warm artifacts are written through"
            );
            (graph, summary)
        };

        // A brand-new engine (fresh process, in effect) over the same
        // directory must serve the design purely from disk: no parse, no
        // RD, no closure, no graph construction.
        let engine = persistent_engine(&tmp.0);
        let analysis = engine.analyze_source(COPY).unwrap();
        assert_eq!(analysis.summary(), &cold_summary);
        assert_eq!(analysis.merged_flow_graph().unwrap(), &cold_graph);
        let stats = engine.stats();
        assert_eq!(stats.store_hits, 1);
        assert_eq!(stats.frontend, 0, "warm hit must not re-parse");
        assert_eq!(stats.rd, 0, "warm hit must not re-run RD");
        assert_eq!(stats.global, 0, "warm hit must not re-run the closure");
        assert_eq!(stats.improved, 0);
        assert_eq!(stats.flow_graph, 0, "warm hit must not rebuild graphs");
    }

    #[test]
    fn corrupt_or_truncated_artifacts_degrade_to_recomputation() {
        let tmp = TempDir::new("corrupt");
        {
            let engine = persistent_engine(&tmp.0);
            let analysis = engine.analyze_source(COPY).unwrap();
            let _ = analysis.merged_flow_graph().unwrap();
        }
        for entry in std::fs::read_dir(&tmp.0).unwrap() {
            let path = entry.unwrap().path();
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        }
        let engine = persistent_engine(&tmp.0);
        let analysis = engine.analyze_source(COPY).unwrap();
        assert!(analysis.merged_flow_graph().unwrap().has_edge("a", "b"));
        let stats = engine.stats();
        assert_eq!(stats.store_hits, 0);
        assert_eq!(stats.store_misses, 1, "corruption is a miss, not an error");
        assert_eq!(stats.frontend, 1, "the design is recomputed from source");
    }

    #[test]
    fn options_fingerprint_is_stable_and_field_sensitive() {
        // Golden fingerprint of the default options: pins the serialized
        // option layout.  A change here invalidates every persisted
        // artifact in the wild — bump ARTIFACT_VERSION alongside it and
        // say so in CHANGES.md.
        assert_eq!(
            options_fingerprint(&AnalysisOptions::default()),
            0x716c_2536_9554_2b4f,
            "options_fingerprint(default) changed; see comment above"
        );
        let mut base = AnalysisOptions::base();
        assert_ne!(
            options_fingerprint(&base),
            options_fingerprint(&AnalysisOptions::default()),
            "`improved` participates in the fingerprint"
        );
        let before = options_fingerprint(&base);
        base.budget.max_alfp_facts = Some(7);
        assert_ne!(options_fingerprint(&base), before, "budget participates");
        // Tracing is observability-only and deliberately excluded: a
        // tracing daemon shares disk artifacts with a non-tracing CLI.
        let traced = AnalysisOptions {
            trace: true,
            ..AnalysisOptions::default()
        };
        assert_eq!(
            options_fingerprint(&traced),
            options_fingerprint(&AnalysisOptions::default()),
            "trace must not fork cache keys"
        );
    }
}
