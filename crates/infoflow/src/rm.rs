//! Resource Matrices (Section 5).
//!
//! A Resource Matrix records, per program point, which resources (variables
//! and signals) might be *modified* and which might be *read*.  Entries are
//! triples `(n, l, A)` with `A ∈ {M0, M1, R0, R1}`:
//!
//! * `M0` — the variable / present signal value `n` might be modified at `l`,
//! * `M1` — the active value of signal `n` might be modified at `l`,
//! * `R0` — the variable / present signal value `n` might be read at `l`,
//! * `R1` — the active value of `n` is synchronised (read) at the wait `l`.
//!
//! The improved analysis of Section 5.3 additionally uses incoming (`n◦`) and
//! outgoing (`n•`) nodes, so matrix entries range over [`Node`] rather than
//! plain names.
//!
//! Entries are stored label-first with the access kinds of a node packed
//! into a bitmask, so the per-label queries the closure algorithms hammer
//! (`at_label`, `reads_at`, `modifications_at`, `contains`) are direct map
//! lookups instead of full scans, and membership tests allocate nothing.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use vhdl1_syntax::{Ident, Label};

/// The access kinds recorded in a Resource Matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Access {
    /// Modification of a variable or of the present value of a signal.
    M0,
    /// Modification of the active value of a signal.
    M1,
    /// Read of a variable or of the present value of a signal.
    R0,
    /// Synchronisation read of the active values at a wait statement.
    R1,
}

impl Access {
    /// All access kinds, in the order of their bitmask bits.
    const ALL: [Access; 4] = [Access::M0, Access::M1, Access::R0, Access::R1];

    /// Whether this access is a modification (`M0` or `M1`).
    pub fn is_modification(&self) -> bool {
        matches!(self, Access::M0 | Access::M1)
    }

    /// Whether this access is a read (`R0` or `R1`).
    pub fn is_read(&self) -> bool {
        matches!(self, Access::R0 | Access::R1)
    }

    fn bit(self) -> u8 {
        match self {
            Access::M0 => 1 << 0,
            Access::M1 => 1 << 1,
            Access::R0 => 1 << 2,
            Access::R1 => 1 << 3,
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Access::M0 => "M0",
            Access::M1 => "M1",
            Access::R0 => "R0",
            Access::R1 => "R1",
        };
        write!(f, "{s}")
    }
}

/// A node of the information-flow graph: a plain resource, an incoming value
/// (`n◦`) or an outgoing value (`n•`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Node {
    /// A variable or signal of the program.
    Res(Ident),
    /// The incoming (environment-provided or initial) value of a resource.
    Incoming(Ident),
    /// The outgoing (environment-observable) value of a resource.
    Outgoing(Ident),
}

impl Node {
    /// The underlying resource name.
    pub fn name(&self) -> &str {
        match self {
            Node::Res(n) | Node::Incoming(n) | Node::Outgoing(n) => n,
        }
    }

    /// Whether this is a plain (non-annotated) resource node.
    pub fn is_plain(&self) -> bool {
        matches!(self, Node::Res(_))
    }

    /// Convenience constructor for a plain resource node.
    pub fn res(name: impl Into<Ident>) -> Node {
        Node::Res(name.into())
    }

    /// Convenience constructor for an incoming node `n◦`.
    pub fn incoming(name: impl Into<Ident>) -> Node {
        Node::Incoming(name.into())
    }

    /// Convenience constructor for an outgoing node `n•`.
    pub fn outgoing(name: impl Into<Ident>) -> Node {
        Node::Outgoing(name.into())
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Res(n) => write!(f, "{n}"),
            Node::Incoming(n) => write!(f, "{n}\u{25e6}"),
            Node::Outgoing(n) => write!(f, "{n}\u{2022}"),
        }
    }
}

/// One entry `(n, l, A)` of a Resource Matrix, in owned form.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RmEntry {
    /// The accessed resource (or incoming/outgoing node).
    pub node: Node,
    /// The label of the access.
    pub label: Label,
    /// The kind of access.
    pub access: Access,
}

impl RmEntry {
    /// Creates an entry.
    pub fn new(node: Node, label: Label, access: Access) -> RmEntry {
        RmEntry {
            node,
            label,
            access,
        }
    }
}

impl fmt::Display for RmEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.node, self.label, self.access)
    }
}

/// A borrowed view of one `(n, l, A)` entry, yielded by the iteration
/// accessors without cloning the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RmEntryRef<'a> {
    /// The accessed resource (or incoming/outgoing node).
    pub node: &'a Node,
    /// The label of the access.
    pub label: Label,
    /// The kind of access.
    pub access: Access,
}

impl RmEntryRef<'_> {
    /// Clones into an owned [`RmEntry`].
    pub fn to_owned(self) -> RmEntry {
        RmEntry::new(self.node.clone(), self.label, self.access)
    }
}

/// A Resource Matrix: a set of `(node, label, access)` entries, stored
/// label-first with packed access bitmasks.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceMatrix {
    by_label: BTreeMap<Label, BTreeMap<Node, u8>>,
    len: usize,
}

impl ResourceMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry; returns `true` if it was not already present.
    pub fn insert(&mut self, node: Node, label: Label, access: Access) -> bool {
        let mask = self
            .by_label
            .entry(label)
            .or_default()
            .entry(node)
            .or_insert(0);
        if *mask & access.bit() != 0 {
            return false;
        }
        *mask |= access.bit();
        self.len += 1;
        true
    }

    /// Whether the matrix contains the entry.
    pub fn contains(&self, node: &Node, label: Label, access: Access) -> bool {
        self.by_label
            .get(&label)
            .and_then(|nodes| nodes.get(node))
            .is_some_and(|mask| mask & access.bit() != 0)
    }

    /// Iterates over all entries (label-major, then node order).
    pub fn iter(&self) -> impl Iterator<Item = RmEntryRef<'_>> {
        self.by_label.iter().flat_map(|(&label, nodes)| {
            nodes.iter().flat_map(move |(node, &mask)| {
                Access::ALL
                    .iter()
                    .filter(move |a| mask & a.bit() != 0)
                    .map(move |&access| RmEntryRef {
                        node,
                        label,
                        access,
                    })
            })
        })
    }

    /// Entries at a given label.
    pub fn at_label(&self, label: Label) -> impl Iterator<Item = RmEntryRef<'_>> {
        self.by_label
            .get(&label)
            .into_iter()
            .flat_map(move |nodes| {
                nodes.iter().flat_map(move |(node, &mask)| {
                    Access::ALL
                        .iter()
                        .filter(move |a| mask & a.bit() != 0)
                        .map(move |&access| RmEntryRef {
                            node,
                            label,
                            access,
                        })
                })
            })
    }

    /// Nodes read (`R0`) at the given label.
    pub fn reads_at(&self, label: Label) -> BTreeSet<&Node> {
        self.nodes_at_with(label, Access::R0.bit())
    }

    /// Nodes modified (`M0` or `M1`) at the given label.
    pub fn modifications_at(&self, label: Label) -> BTreeSet<&Node> {
        self.nodes_at_with(label, Access::M0.bit() | Access::M1.bit())
    }

    fn nodes_at_with(&self, label: Label, bits: u8) -> BTreeSet<&Node> {
        self.by_label
            .get(&label)
            .into_iter()
            .flat_map(|nodes| {
                nodes
                    .iter()
                    .filter(move |(_, &mask)| mask & bits != 0)
                    .map(|(n, _)| n)
            })
            .collect()
    }

    /// Names of the *plain* resource nodes carrying `access` at `label`.
    /// Used by the RD specialisation, which probes per-label membership many
    /// times: collecting the names once replaces per-probe [`Node`]
    /// construction.
    pub fn res_names_with(&self, label: Label, access: Access) -> BTreeSet<&str> {
        self.by_label
            .get(&label)
            .into_iter()
            .flat_map(move |nodes| {
                nodes
                    .iter()
                    .filter(move |(node, &mask)| node.is_plain() && mask & access.bit() != 0)
                    .map(|(node, _)| node.name())
            })
            .collect()
    }

    /// All labels mentioned by the matrix.
    pub fn labels(&self) -> BTreeSet<Label> {
        self.by_label.keys().copied().collect()
    }

    /// All nodes mentioned by the matrix.
    pub fn nodes(&self) -> BTreeSet<&Node> {
        self.by_label
            .values()
            .flat_map(|nodes| nodes.keys())
            .collect()
    }

    /// Merges another matrix into this one.
    pub fn extend_from(&mut self, other: &ResourceMatrix) {
        for (&label, nodes) in &other.by_label {
            for (node, &mask) in nodes {
                let entry = self
                    .by_label
                    .entry(label)
                    .or_default()
                    .entry(node.clone())
                    .or_insert(0);
                self.len += (mask & !*entry).count_ones() as usize;
                *entry |= mask;
            }
        }
    }
}

impl FromIterator<RmEntry> for ResourceMatrix {
    fn from_iter<T: IntoIterator<Item = RmEntry>>(iter: T) -> Self {
        let mut rm = ResourceMatrix::new();
        rm.extend(iter);
        rm
    }
}

impl Extend<RmEntry> for ResourceMatrix {
    fn extend<T: IntoIterator<Item = RmEntry>>(&mut self, iter: T) {
        for e in iter {
            self.insert(e.node, e.label, e.access);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut rm = ResourceMatrix::new();
        assert!(rm.is_empty());
        assert!(rm.insert(Node::res("x"), 1, Access::M0));
        assert!(!rm.insert(Node::res("x"), 1, Access::M0));
        rm.insert(Node::res("a"), 1, Access::R0);
        rm.insert(Node::res("s"), 2, Access::M1);
        assert_eq!(rm.len(), 3);
        assert!(rm.contains(&Node::res("x"), 1, Access::M0));
        assert_eq!(rm.reads_at(1), BTreeSet::from([&Node::res("a")]));
        assert_eq!(
            rm.modifications_at(1)
                .into_iter()
                .cloned()
                .collect::<Vec<_>>(),
            vec![Node::res("x")]
        );
        assert_eq!(rm.labels(), BTreeSet::from([1, 2]));
    }

    #[test]
    fn iteration_yields_every_entry() {
        let mut rm = ResourceMatrix::new();
        rm.insert(Node::res("x"), 1, Access::M0);
        rm.insert(Node::res("x"), 1, Access::R0);
        rm.insert(Node::res("y"), 2, Access::R1);
        let all: Vec<RmEntry> = rm.iter().map(RmEntryRef::to_owned).collect();
        assert_eq!(all.len(), rm.len());
        assert!(all.contains(&RmEntry::new(Node::res("x"), 1, Access::M0)));
        assert!(all.contains(&RmEntry::new(Node::res("x"), 1, Access::R0)));
        assert!(all.contains(&RmEntry::new(Node::res("y"), 2, Access::R1)));
        assert_eq!(rm.at_label(1).count(), 2);
        assert_eq!(rm.at_label(3).count(), 0);
    }

    #[test]
    fn node_display_uses_paper_notation() {
        assert_eq!(Node::res("a").to_string(), "a");
        assert_eq!(Node::incoming("a").to_string(), "a\u{25e6}");
        assert_eq!(Node::outgoing("b").to_string(), "b\u{2022}");
        assert_eq!(Node::outgoing("b").name(), "b");
        assert!(Node::res("a").is_plain());
        assert!(!Node::incoming("a").is_plain());
    }

    #[test]
    fn access_classification() {
        assert!(Access::M0.is_modification());
        assert!(Access::M1.is_modification());
        assert!(Access::R0.is_read());
        assert!(Access::R1.is_read());
        assert!(!Access::R0.is_modification());
        assert_eq!(Access::M1.to_string(), "M1");
    }

    #[test]
    fn entry_display() {
        let e = RmEntry::new(Node::res("t"), 4, Access::R1);
        assert_eq!(e.to_string(), "(t, 4, R1)");
    }

    #[test]
    fn from_iterator_and_extend() {
        let rm: ResourceMatrix = vec![RmEntry::new(Node::res("a"), 1, Access::R0)]
            .into_iter()
            .collect();
        let mut rm2 = ResourceMatrix::new();
        rm2.insert(Node::res("b"), 2, Access::M0);
        let mut merged = rm.clone();
        merged.extend_from(&rm2);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.nodes().len(), 2);
        // Overlapping extend does not double-count.
        merged.extend_from(&rm2);
        assert_eq!(merged.len(), 2);
    }
}
