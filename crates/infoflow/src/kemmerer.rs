//! Kemmerer's Shared Resource Matrix / covert-channel analysis baseline
//! (Section 5.2, attributed to Kemmerer and described by McHugh).
//!
//! The method builds direct dependencies from the local Resource Matrix —
//! everything read at a label flows into everything modified at the same
//! label — and then takes the **transitive closure** of the resulting graph,
//! ignoring all control-flow information.  The paper shows (Figures 3 and 5)
//! that this flow-insensitivity produces spurious edges which the RD-based
//! analysis avoids.

use crate::graph::FlowGraph;
use crate::local::local_dependencies;
use crate::rm::ResourceMatrix;
use vhdl1_syntax::Design;

/// Runs Kemmerer's method on a design: local dependencies followed by a
/// transitive closure of the direct-flow graph.
pub fn kemmerer_graph(design: &Design) -> FlowGraph {
    let rm = local_dependencies(design);
    kemmerer_graph_from_matrix(&rm)
}

/// Runs Kemmerer's closure on an already-computed local Resource Matrix.
pub fn kemmerer_graph_from_matrix(rm: &ResourceMatrix) -> FlowGraph {
    FlowGraph::from_resource_matrix(rm).transitive_closure()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vhdl1_syntax::frontend;

    /// Program (a) of the paper: `[c := b]^1; [b := a]^2`.
    fn program_a() -> Design {
        frontend(
            "entity e is port(inp : in std_logic); end e;
             architecture rtl of e is begin
               p : process
                 variable a : std_logic;
                 variable b : std_logic;
                 variable c : std_logic;
               begin
                 c := b;
                 b := a;
               end process p;
             end rtl;",
        )
        .unwrap()
    }

    #[test]
    fn kemmerer_adds_the_spurious_transitive_edge_on_program_a() {
        // The true flows are b -> c and a -> b only (Figure 3(a)); Kemmerer's
        // transitive closure also reports a -> c (the shape of Figure 3(b)).
        let g = kemmerer_graph(&program_a());
        assert!(g.has_edge("b", "c"));
        assert!(g.has_edge("a", "b"));
        assert!(
            g.has_edge("a", "c"),
            "Kemmerer's method must report the spurious edge"
        );
        assert!(g.is_transitive());
    }

    #[test]
    fn kemmerer_is_always_transitive() {
        let d = frontend(
            "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic;
             begin
               p1 : process begin t <= a; wait on a; end process p1;
               p2 : process begin b <= t; wait on t; end process p2;
             end rtl;",
        )
        .unwrap();
        let g = kemmerer_graph(&d);
        assert!(g.is_transitive());
        assert!(g.has_edge("a", "t"));
        assert!(g.has_edge("t", "b"));
        assert!(g.has_edge("a", "b"));
    }
}
