//! Disk-backed content-addressed artifact store — the persistence half of
//! [`CachePolicy::Persistent`](crate::CachePolicy::Persistent).
//!
//! The engine's memo table dies with the process, yet warm re-analysis is
//! orders of magnitude faster than cold.  This module persists the
//! *serving* artifacts of an analysis — the design summary, the four flow
//! graphs, the smoke report and any dynamic flow-witness reports — keyed by
//! the same FNV-1a `source ⊕ options` hash the in-memory table uses
//! ([`Engine::source_key`](crate::Engine::source_key)), so a fresh engine
//! (or a restarted daemon) serves a previously analyzed design from disk
//! without parsing it.
//!
//! # Format
//!
//! One artifact per file, `<key as 016x hex>.vhd1art`, written atomically
//! (unique temp name + rename).  The layout is a fixed header followed by a
//! checksummed payload of tagged sections:
//!
//! ```text
//! magic    8 bytes   b"VHD1ART\n"
//! version  u32 LE    ARTIFACT_VERSION
//! key      u64 LE    cache key (must match the filename's hex)
//! seq      u64 LE    store-wide write sequence number (eviction order)
//! len      u64 LE    payload length in bytes
//! checksum u64 LE    fnv1a64 of the payload
//! payload  sections: tag u8, body_len u64 LE, body
//! ```
//!
//! Strings are length-prefixed UTF-8; graphs are a node list plus an edge
//! list (each node one kind byte + name); unknown section tags are skipped
//! so a newer writer's extra sections do not poison an older reader.
//!
//! # Failure domains
//!
//! *Every* read anomaly — missing file, short read, bad magic, version
//! mismatch, checksum mismatch, malformed section, non-UTF-8 string — is a
//! **miss**, never an error: [`ArtifactStore::load`] returns `None` and the
//! engine recomputes (and rewrites) the artifact.  Writes are best-effort:
//! an I/O failure loses persistence, not correctness.  Concurrent writers
//! are safe by construction — each write goes to a unique temp file and the
//! final rename is atomic, so readers only ever observe complete artifacts.

use crate::dynflow::{DynFlowReport, NoFlowProperty};
use crate::engine::{fnv1a64, SmokeReport};
use crate::graph::{FlowGraph, GraphLabels};
use crate::rm::{Access, Node, ResourceMatrix};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use vhdl1_dataflow::{ActiveRd, SigDef, Solution};
use vhdl1_syntax::Label;

/// Version stamp of the on-disk artifact format.  Bump on any change to the
/// payload layout *or* to the semantics of a persisted stage: readers treat
/// every other version as a miss.
pub const ARTIFACT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"VHD1ART\n";
const EXTENSION: &str = "vhd1art";
const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8;

// Section tags of the payload.
const SEC_SOURCE: u8 = 1;
const SEC_SUMMARY: u8 = 2;
const SEC_GRAPH: u8 = 3;
const SEC_BASE_GRAPH: u8 = 4;
const SEC_MERGED_GRAPH: u8 = 5;
const SEC_KEMMERER: u8 = 6;
const SEC_SMOKE: u8 = 7;
const SEC_DYNFLOW: u8 = 8;
const SEC_NODE_LABELS: u8 = 9;
// Per-unit artifacts ([`UnitArtifact`]) reuse the same container format
// under their own tags.  They carry no `SEC_SOURCE`, so a unit file read as
// a design artifact decodes to `None` — and vice versa a design file read
// as a unit artifact misses on the absent `SEC_UNIT_META`.
const SEC_UNIT_META: u8 = 10;
const SEC_UNIT_ACTIVE: u8 = 11;
const SEC_UNIT_LOCAL: u8 = 12;

/// The report-facing shape of a design: everything `vhdl1c` reports read
/// from the elaborated [`Design`](vhdl1_syntax::Design), flattened so a
/// disk-served analysis never has to re-parse the source to render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSummary {
    /// Design (architecture) name.
    pub name: String,
    /// Number of processes in the elaborated design.
    pub processes: usize,
    /// Number of labelled elementary blocks.
    pub labels: u32,
    /// Number of variables and signals.
    pub resources: usize,
}

impl DesignSummary {
    /// Flattens an elaborated design.
    pub fn of(design: &vhdl1_syntax::Design) -> DesignSummary {
        DesignSummary {
            name: design.name.clone(),
            processes: design.processes.len(),
            labels: design.max_label(),
            resources: design.resource_names().len(),
        }
    }
}

/// One persisted analysis: the source text (collision guard + lazy re-parse
/// seed) plus whichever serving artifacts had been computed when the engine
/// wrote it back.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// The cache key ([`Engine::source_key`](crate::Engine::source_key)).
    pub key: u64,
    /// The exact source text the key was derived from.  Loads verify it
    /// against the requested source, so a hash collision degrades to a miss
    /// instead of serving the wrong design.
    pub source: String,
    /// Report-facing design shape, when computed.
    pub summary: Option<DesignSummary>,
    /// The information-flow graph (improved when the options say so).
    pub graph: Option<FlowGraph>,
    /// The base (non-improved) closure's graph.
    pub base_graph: Option<FlowGraph>,
    /// The merged-IO presentation graph audits run against.
    pub merged_graph: Option<FlowGraph>,
    /// The Kemmerer comparison baseline graph.
    pub kemmerer: Option<FlowGraph>,
    /// The smoke-simulation report, when the run succeeded.
    pub smoke: Option<SmokeReport>,
    /// Dynamic flow-witness reports, one per `(rounds, seed)` pair.
    pub dynflows: Vec<(u64, u64, DynFlowReport)>,
    /// Per-node label annotations for DOT rendering, when computed — lets a
    /// warm `--format dot` run zero front-end work.
    pub graph_labels: Option<GraphLabels>,
}

impl Artifact {
    /// An artifact holding only its identity (key + source); stage sections
    /// are filled in by the engine's write-through.
    pub fn new(key: u64, source: String) -> Artifact {
        Artifact {
            key,
            source,
            summary: None,
            graph: None,
            base_graph: None,
            merged_graph: None,
            kemmerer: None,
            smoke: None,
            dynflows: Vec::new(),
            graph_labels: None,
        }
    }
}

/// One persisted per-process analysis unit, keyed by
/// `unit_fingerprint ⊕ rotl17(options_fingerprint)`: the unit's canonical
/// texts (collision guard) plus the stage rows the incremental engine can
/// reuse without re-running the per-process fixpoints.
///
/// Rows are stored set-canonically (sorted facts, label rows in control-flow
/// order), so rehydration via [`Solution::from_rows`] reproduces solutions
/// content-equal to a fresh per-process analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitArtifact {
    /// The unit cache key.
    pub key: u64,
    /// Canonical design-context text the key mixes in (signal table, process
    /// count, design/entity names).
    pub context: String,
    /// Canonical labelled text of the process itself.
    pub unit: String,
    /// Rows `(label, entry, exit)` of the active-signal over-approximation.
    pub over: Vec<(Label, Vec<SigDef>, Vec<SigDef>)>,
    /// Rows of the active-signal under-approximation.
    pub under: Vec<(Label, Vec<SigDef>, Vec<SigDef>)>,
    /// Entries `(label, node, access)` of the local Resource Matrix.
    pub local: Vec<(Label, Node, Access)>,
}

impl UnitArtifact {
    /// Flattens a computed per-process state into its persisted shape.
    pub fn of(
        key: u64,
        context: &str,
        unit: &str,
        active: &ActiveRd,
        local: &ResourceMatrix,
    ) -> UnitArtifact {
        let rows = |s: &Solution<SigDef>| {
            s.labels()
                .iter()
                .map(|&l| {
                    (
                        l,
                        s.entry_of(l).into_iter().collect::<Vec<_>>(),
                        s.exit_of(l).into_iter().collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        UnitArtifact {
            key,
            context: context.to_string(),
            unit: unit.to_string(),
            over: rows(&active.over),
            under: rows(&active.under),
            local: local
                .iter()
                .map(|e| (e.label, e.node.clone(), e.access))
                .collect(),
        }
    }

    /// Rehydrates the active-signal Reaching Definitions solutions.
    pub fn active(&self) -> ActiveRd {
        let solution = |rows: &[(Label, Vec<SigDef>, Vec<SigDef>)]| {
            Solution::from_rows(
                rows.iter()
                    .map(|(l, en, ex)| {
                        (
                            *l,
                            en.iter().cloned().collect::<BTreeSet<_>>(),
                            ex.iter().cloned().collect::<BTreeSet<_>>(),
                        )
                    })
                    .collect(),
            )
        };
        ActiveRd {
            over: solution(&self.over),
            under: solution(&self.under),
        }
    }

    /// Rehydrates the local Resource Matrix.
    pub fn local_matrix(&self) -> ResourceMatrix {
        let mut rm = ResourceMatrix::new();
        for (label, node, access) in &self.local {
            rm.insert(node.clone(), *label, *access);
        }
        rm
    }
}

/// A directory of content-addressed analysis artifacts with atomic writes
/// and deterministic capped eviction (lowest write-sequence first).
///
/// Shared freely across threads; safe across *processes* too — writers
/// never clobber a partially written file (unique temp name + rename), and
/// readers treat any torn or foreign bytes as a miss.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    cap: usize,
    /// Next write sequence number; seeded past every sequence already on
    /// disk so eviction order survives restarts.
    seq: AtomicU64,
}

impl ArtifactStore {
    /// Opens (creating if needed) an artifact directory capped at `cap`
    /// artifacts (`0` means 1 — an artifact just written is never evicted
    /// by its own write).
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the directory cannot be created or read.
    pub fn open(dir: impl Into<PathBuf>, cap: usize) -> io::Result<ArtifactStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut max_seq = 0u64;
        for entry in fs::read_dir(&dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(EXTENSION) {
                continue;
            }
            if let Some((_, seq)) = read_header(&path) {
                max_seq = max_seq.max(seq);
            }
        }
        Ok(ArtifactStore {
            dir,
            cap: cap.max(1),
            seq: AtomicU64::new(max_seq.wrapping_add(1)),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The eviction cap (artifact count).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of artifacts currently on disk.
    pub fn len(&self) -> usize {
        self.artifact_files().len()
    }

    /// Whether the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Loads the artifact stored under `key`.  Any anomaly — absent,
    /// truncated, corrupted, version-mismatched or key-mismatched file — is
    /// a miss (`None`), never an error.
    pub fn load(&self, key: u64) -> Option<Artifact> {
        let bytes = fs::read(self.path_of(key)).ok()?;
        decode(&bytes, key)
    }

    /// Loads the per-process unit artifact stored under `key`.  Same failure
    /// domain as [`ArtifactStore::load`]: any anomaly — including the file
    /// being a whole-design artifact — is a miss.
    pub fn load_unit(&self, key: u64) -> Option<UnitArtifact> {
        let bytes = fs::read(self.path_of(key)).ok()?;
        decode_unit(&bytes, key)
    }

    /// Atomically persists `artifact` (unique temp file + rename), then
    /// evicts oldest-written artifacts beyond the cap.
    ///
    /// # Errors
    ///
    /// Returns the I/O error of the write or rename; eviction failures are
    /// ignored (a racing process may have removed the file first).
    pub fn save(&self, artifact: &Artifact) -> io::Result<()> {
        self.save_bytes(artifact.key, |seq| encode(artifact, seq))
    }

    /// Atomically persists a per-process unit artifact.  Units share the
    /// store's directory, sequence numbering and eviction cap with design
    /// artifacts.
    ///
    /// # Errors
    ///
    /// Returns the I/O error of the write or rename.
    pub fn save_unit(&self, unit: &UnitArtifact) -> io::Result<()> {
        self.save_bytes(unit.key, |seq| encode_unit(unit, seq))
    }

    fn save_bytes(&self, key: u64, encode: impl FnOnce(u64) -> Vec<u8>) -> io::Result<()> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let bytes = encode(seq);
        let tmp = self
            .dir
            .join(format!(".{:016x}.{}.{}.tmp", key, std::process::id(), seq));
        fs::write(&tmp, &bytes)?;
        let result = fs::rename(&tmp, self.path_of(key));
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result?;
        self.evict();
        Ok(())
    }

    /// Removes oldest-written artifacts (by embedded sequence number) until
    /// the store is within its cap.  Deterministic for a fixed write
    /// history: eviction order is the write order, not directory order.
    fn evict(&self) {
        let files = self.artifact_files();
        if files.len() <= self.cap {
            return;
        }
        // Unreadable headers sort first (sequence 0): corrupt files are the
        // most useless residents of a full store.
        let mut by_seq: Vec<(u64, PathBuf)> = files
            .into_iter()
            .map(|p| (read_header(&p).map_or(0, |(_, seq)| seq), p))
            .collect();
        by_seq.sort();
        let excess = by_seq.len().saturating_sub(self.cap);
        for (_, path) in by_seq.into_iter().take(excess) {
            let _ = fs::remove_file(path);
        }
    }

    fn path_of(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.{EXTENSION}"))
    }

    fn artifact_files(&self) -> Vec<PathBuf> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(EXTENSION))
            .collect()
    }
}

/// Reads `(key, seq)` from an artifact header, validating magic and
/// version.  `None` on any anomaly.
fn read_header(path: &Path) -> Option<(u64, u64)> {
    use std::io::Read as _;
    let mut file = fs::File::open(path).ok()?;
    let mut header = [0u8; HEADER_LEN];
    file.read_exact(&mut header).ok()?;
    let mut r = Reader::new(&header);
    if r.take(MAGIC.len())? != MAGIC {
        return None;
    }
    if r.u32()? != ARTIFACT_VERSION {
        return None;
    }
    let key = r.u64()?;
    let seq = r.u64()?;
    Some((key, seq))
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn encode(artifact: &Artifact, seq: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(artifact.source.len() + 256);
    section(&mut payload, SEC_SOURCE, |b| {
        put_str(b, &artifact.source);
    });
    if let Some(summary) = &artifact.summary {
        section(&mut payload, SEC_SUMMARY, |b| {
            put_str(b, &summary.name);
            put_u64(b, summary.processes as u64);
            put_u64(b, u64::from(summary.labels));
            put_u64(b, summary.resources as u64);
        });
    }
    for (tag, graph) in [
        (SEC_GRAPH, &artifact.graph),
        (SEC_BASE_GRAPH, &artifact.base_graph),
        (SEC_MERGED_GRAPH, &artifact.merged_graph),
        (SEC_KEMMERER, &artifact.kemmerer),
    ] {
        if let Some(graph) = graph {
            section(&mut payload, tag, |b| put_graph(b, graph));
        }
    }
    if let Some(smoke) = &artifact.smoke {
        section(&mut payload, SEC_SMOKE, |b| {
            put_u64(b, smoke.deltas);
            put_u64(b, smoke.state_digest);
        });
    }
    for (rounds, seed, report) in &artifact.dynflows {
        section(&mut payload, SEC_DYNFLOW, |b| {
            put_u64(b, *rounds);
            put_u64(b, *seed);
            put_dynflow(b, report);
        });
    }
    if let Some(labels) = &artifact.graph_labels {
        section(&mut payload, SEC_NODE_LABELS, |b| {
            put_u64(b, labels.at.len() as u64);
            for (node, at) in &labels.at {
                put_node(b, node);
                put_u64(b, at.len() as u64);
                for l in at {
                    put_u64(b, u64::from(*l));
                }
            }
        });
    }
    framed(artifact.key, seq, payload)
}

fn encode_unit(unit: &UnitArtifact, seq: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(unit.context.len() + unit.unit.len() + 256);
    section(&mut payload, SEC_UNIT_META, |b| {
        put_str(b, &unit.context);
        put_str(b, &unit.unit);
    });
    section(&mut payload, SEC_UNIT_ACTIVE, |b| {
        put_active_rows(b, &unit.over);
        put_active_rows(b, &unit.under);
    });
    section(&mut payload, SEC_UNIT_LOCAL, |b| {
        put_u64(b, unit.local.len() as u64);
        for (label, node, access) in &unit.local {
            put_u64(b, u64::from(*label));
            put_node(b, node);
            b.push(match access {
                Access::M0 => 0,
                Access::M1 => 1,
                Access::R0 => 2,
                Access::R1 => 3,
            });
        }
    });
    framed(unit.key, seq, payload)
}

/// Wraps a finished payload in the common header (magic, version, key,
/// sequence, length, checksum).
fn framed(key: u64, seq: u64, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// One label's reconstructed over- or under-approximation row: the active
/// signal definitions at entry and at exit.
type ActiveRow = (Label, Vec<SigDef>, Vec<SigDef>);

fn put_active_rows(out: &mut Vec<u8>, rows: &[ActiveRow]) {
    put_u64(out, rows.len() as u64);
    for (label, entry, exit) in rows {
        put_u64(out, u64::from(*label));
        for defs in [entry, exit] {
            put_u64(out, defs.len() as u64);
            for (sig, at) in defs {
                put_str(out, sig);
                put_u64(out, u64::from(*at));
            }
        }
    }
}

fn section(out: &mut Vec<u8>, tag: u8, body: impl FnOnce(&mut Vec<u8>)) {
    out.push(tag);
    let len_at = out.len();
    put_u64(out, 0);
    let start = out.len();
    body(out);
    let len = (out.len() - start) as u64;
    out[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_node(out: &mut Vec<u8>, node: &Node) {
    let kind = match node {
        Node::Res(_) => 0u8,
        Node::Incoming(_) => 1,
        Node::Outgoing(_) => 2,
    };
    out.push(kind);
    put_str(out, node.name());
}

fn put_graph(out: &mut Vec<u8>, graph: &FlowGraph) {
    put_u64(out, graph.node_count() as u64);
    for node in graph.nodes() {
        put_node(out, node);
    }
    put_u64(out, graph.edge_count() as u64);
    for (from, to) in graph.edges() {
        put_node(out, from);
        put_node(out, to);
    }
}

fn put_pairs(out: &mut Vec<u8>, pairs: &[(String, String)]) {
    put_u64(out, pairs.len() as u64);
    for (from, to) in pairs {
        put_str(out, from);
        put_str(out, to);
    }
}

fn put_dynflow(out: &mut Vec<u8>, report: &DynFlowReport) {
    put_u64(out, report.rounds);
    put_u64(out, report.seed);
    put_pairs(out, &report.witnessed);
    put_pairs(out, &report.soundness_violations);
    put_pairs(out, &report.unwitnessed_static);
    put_u64(out, report.no_flow_properties.len() as u64);
    for p in &report.no_flow_properties {
        put_str(out, &p.from);
        put_str(out, &p.to);
        out.push(u8::from(p.static_agrees));
    }
    put_u64(out, report.covered_edges as u64);
    put_u64(out, report.static_edges as u64);
    put_u64(out, report.kemmerer_covered as u64);
    put_u64(out, report.kemmerer_edges as u64);
    put_u64(out, report.total_deltas);
    put_u64(out, report.total_steps);
}

// ---------------------------------------------------------------------------
// Decoding (every anomaly is `None` — corruption is a miss, not an error)
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// A length that still has to fit in the remaining buffer — rejects
    /// absurd corrupted lengths before any allocation sized by them.
    fn len(&mut self) -> Option<usize> {
        let len = usize::try_from(self.u64()?).ok()?;
        (len <= self.buf.len() - self.pos).then_some(len)
    }

    fn string(&mut self) -> Option<String> {
        let len = self.len()?;
        Some(std::str::from_utf8(self.take(len)?).ok()?.to_string())
    }

    fn node(&mut self) -> Option<Node> {
        let kind = self.u8()?;
        let name = self.string()?;
        match kind {
            0 => Some(Node::res(name)),
            1 => Some(Node::incoming(name)),
            2 => Some(Node::outgoing(name)),
            _ => None,
        }
    }

    fn graph(&mut self) -> Option<FlowGraph> {
        let mut graph = FlowGraph::new();
        let nodes = self.len()?;
        for _ in 0..nodes {
            graph.add_node(self.node()?);
        }
        let edges = self.len()?;
        for _ in 0..edges {
            let from = self.node()?;
            let to = self.node()?;
            graph.add_edge(from, to);
        }
        Some(graph)
    }

    fn active_rows(&mut self) -> Option<Vec<ActiveRow>> {
        let count = self.len()?;
        let mut rows = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let label = Label::try_from(self.u64()?).ok()?;
            let mut sets = [Vec::new(), Vec::new()];
            for set in &mut sets {
                let n = self.len()?;
                for _ in 0..n {
                    let sig = self.string()?;
                    let at = Label::try_from(self.u64()?).ok()?;
                    set.push((sig, at));
                }
            }
            let [entry, exit] = sets;
            rows.push((label, entry, exit));
        }
        Some(rows)
    }

    fn pairs(&mut self) -> Option<Vec<(String, String)>> {
        let count = self.len()?;
        let mut pairs = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            pairs.push((self.string()?, self.string()?));
        }
        Some(pairs)
    }

    fn dynflow(&mut self) -> Option<DynFlowReport> {
        let rounds = self.u64()?;
        let seed = self.u64()?;
        let witnessed = self.pairs()?;
        let soundness_violations = self.pairs()?;
        let unwitnessed_static = self.pairs()?;
        let count = self.len()?;
        let mut no_flow_properties = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            no_flow_properties.push(NoFlowProperty {
                from: self.string()?,
                to: self.string()?,
                static_agrees: self.u8()? != 0,
            });
        }
        Some(DynFlowReport {
            rounds,
            seed,
            witnessed,
            soundness_violations,
            unwitnessed_static,
            no_flow_properties,
            covered_edges: usize::try_from(self.u64()?).ok()?,
            static_edges: usize::try_from(self.u64()?).ok()?,
            kemmerer_covered: usize::try_from(self.u64()?).ok()?,
            kemmerer_edges: usize::try_from(self.u64()?).ok()?,
            total_deltas: self.u64()?,
            total_steps: self.u64()?,
        })
    }
}

/// Validates the header of a stored file and returns its checksummed
/// payload.  `None` on any anomaly.
fn validated_payload(bytes: &[u8], expected_key: u64) -> Option<&[u8]> {
    let mut r = Reader::new(bytes);
    if r.take(MAGIC.len())? != MAGIC {
        return None;
    }
    if r.u32()? != ARTIFACT_VERSION {
        return None;
    }
    let key = r.u64()?;
    if key != expected_key {
        return None;
    }
    let _seq = r.u64()?;
    let payload_len = r.len()?;
    let checksum = r.u64()?;
    let payload = r.take(payload_len)?;
    if r.pos != bytes.len() || fnv1a64(payload) != checksum {
        return None;
    }
    Some(payload)
}

fn decode(bytes: &[u8], expected_key: u64) -> Option<Artifact> {
    let payload = validated_payload(bytes, expected_key)?;
    let mut source = None;
    let mut artifact = Artifact::new(expected_key, String::new());
    let mut r = Reader::new(payload);
    while r.pos < payload.len() {
        let tag = r.u8()?;
        let len = r.len()?;
        let body = r.take(len)?;
        let mut b = Reader::new(body);
        match tag {
            SEC_SOURCE => source = Some(b.string()?),
            SEC_SUMMARY => {
                artifact.summary = Some(DesignSummary {
                    name: b.string()?,
                    processes: usize::try_from(b.u64()?).ok()?,
                    labels: u32::try_from(b.u64()?).ok()?,
                    resources: usize::try_from(b.u64()?).ok()?,
                });
            }
            SEC_GRAPH => artifact.graph = Some(b.graph()?),
            SEC_BASE_GRAPH => artifact.base_graph = Some(b.graph()?),
            SEC_MERGED_GRAPH => artifact.merged_graph = Some(b.graph()?),
            SEC_KEMMERER => artifact.kemmerer = Some(b.graph()?),
            SEC_SMOKE => {
                artifact.smoke = Some(SmokeReport {
                    deltas: b.u64()?,
                    state_digest: b.u64()?,
                });
            }
            SEC_DYNFLOW => {
                let rounds = b.u64()?;
                let seed = b.u64()?;
                artifact.dynflows.push((rounds, seed, b.dynflow()?));
            }
            SEC_NODE_LABELS => {
                let count = b.len()?;
                let mut labels = GraphLabels::default();
                for _ in 0..count {
                    let node = b.node()?;
                    let n = b.len()?;
                    let mut at = BTreeSet::new();
                    for _ in 0..n {
                        at.insert(Label::try_from(b.u64()?).ok()?);
                    }
                    labels.at.insert(node, at);
                }
                artifact.graph_labels = Some(labels);
            }
            // Unknown tags (from a newer writer of the same version, e.g.
            // during a rolling upgrade) are skipped, not fatal.
            _ => {}
        }
    }
    artifact.source = source?;
    Some(artifact)
}

fn decode_unit(bytes: &[u8], expected_key: u64) -> Option<UnitArtifact> {
    let payload = validated_payload(bytes, expected_key)?;
    let mut meta = None;
    let mut active = None;
    let mut local = None;
    let mut r = Reader::new(payload);
    while r.pos < payload.len() {
        let tag = r.u8()?;
        let len = r.len()?;
        let body = r.take(len)?;
        let mut b = Reader::new(body);
        match tag {
            SEC_UNIT_META => meta = Some((b.string()?, b.string()?)),
            SEC_UNIT_ACTIVE => active = Some((b.active_rows()?, b.active_rows()?)),
            SEC_UNIT_LOCAL => {
                let count = b.len()?;
                let mut entries = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let label = Label::try_from(b.u64()?).ok()?;
                    let node = b.node()?;
                    let access = match b.u8()? {
                        0 => Access::M0,
                        1 => Access::M1,
                        2 => Access::R0,
                        3 => Access::R1,
                        _ => return None,
                    };
                    entries.push((label, node, access));
                }
                local = Some(entries);
            }
            _ => {}
        }
    }
    // A design artifact (no unit sections) is a miss, not a panic.
    let (context, unit) = meta?;
    let (over, under) = active?;
    Some(UnitArtifact {
        key: expected_key,
        context,
        unit,
        over,
        under,
        local: local?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// A unique, self-cleaning temp directory (no external tempfile crate).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static COUNTER: AtomicU32 = AtomicU32::new(0);
            let dir = std::env::temp_dir().join(format!(
                "vhdl1-store-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample_graph() -> FlowGraph {
        let mut graph = FlowGraph::new();
        graph.add_node(Node::res("lonely"));
        graph.add_edge(Node::incoming("a"), Node::res("t"));
        graph.add_edge(Node::res("t"), Node::outgoing("b"));
        graph
    }

    fn sample_artifact(key: u64) -> Artifact {
        let mut artifact = Artifact::new(key, "entity e is end e;".to_string());
        artifact.summary = Some(DesignSummary {
            name: "rtl".into(),
            processes: 2,
            labels: 7,
            resources: 5,
        });
        artifact.graph = Some(sample_graph());
        artifact.merged_graph = Some(sample_graph());
        artifact.smoke = Some(SmokeReport {
            deltas: 3,
            state_digest: 0xdead_beef,
        });
        artifact.dynflows.push((
            16,
            1,
            DynFlowReport {
                rounds: 16,
                seed: 1,
                witnessed: vec![("a".into(), "b".into())],
                soundness_violations: vec![],
                unwitnessed_static: vec![("a".into(), "c".into())],
                no_flow_properties: vec![NoFlowProperty {
                    from: "a".into(),
                    to: "c".into(),
                    static_agrees: true,
                }],
                covered_edges: 1,
                static_edges: 2,
                kemmerer_covered: 1,
                kemmerer_edges: 1,
                total_deltas: 42,
                total_steps: 99,
            },
        ));
        let mut labels = GraphLabels::default();
        labels.at.insert(Node::res("t"), BTreeSet::from([1, 3]));
        labels.at.insert(Node::incoming("a"), BTreeSet::from([2]));
        artifact.graph_labels = Some(labels);
        artifact
    }

    fn sample_unit(key: u64) -> UnitArtifact {
        UnitArtifact {
            key,
            context: "design rtl entity e\nprocesses 2\nsignal a in std_logic\n".into(),
            unit: "process p #0\nbegin\n1: b <= a\n2: wait on a\n".into(),
            over: vec![
                (1, vec![("a".into(), 2)], vec![("a".into(), 2)]),
                (2, vec![("a".into(), 2), ("b".into(), 1)], vec![]),
            ],
            under: vec![(1, vec![], vec![]), (2, vec![("b".into(), 1)], vec![])],
            local: vec![
                (1, Node::res("b"), Access::M1),
                (1, Node::res("a"), Access::R0),
                (2, Node::res("a"), Access::R1),
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_every_section() {
        let tmp = TempDir::new("roundtrip");
        let store = ArtifactStore::open(tmp.path(), 16).unwrap();
        let artifact = sample_artifact(0x1234);
        store.save(&artifact).unwrap();
        let loaded = store.load(0x1234).expect("artifact must load");
        assert_eq!(loaded, artifact);
        // A partially filled artifact (identity only) roundtrips too.
        let bare = Artifact::new(0x99, "src".into());
        store.save(&bare).unwrap();
        assert_eq!(store.load(0x99).unwrap(), bare);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn unit_artifacts_roundtrip_and_rehydrate() {
        let tmp = TempDir::new("unit");
        let store = ArtifactStore::open(tmp.path(), 16).unwrap();
        let unit = sample_unit(0x51);
        store.save_unit(&unit).unwrap();
        let loaded = store.load_unit(0x51).expect("unit must load");
        assert_eq!(loaded, unit);
        // Rehydrated solutions carry the persisted rows set-canonically.
        let active = loaded.active();
        assert_eq!(active.over.entry_of(2).len(), 2);
        assert!(active.must_be_active_at(2).contains("b"));
        let rm = loaded.local_matrix();
        assert!(rm.contains(&Node::res("b"), 1, Access::M1));
        assert_eq!(rm.len(), 3);
    }

    #[test]
    fn design_and_unit_artifacts_miss_each_other() {
        let tmp = TempDir::new("cross-kind");
        let store = ArtifactStore::open(tmp.path(), 16).unwrap();
        store.save(&sample_artifact(0x61)).unwrap();
        store.save_unit(&sample_unit(0x62)).unwrap();
        // A unit file read as a design artifact (and vice versa) is a miss,
        // never a panic or a wrong-shape hit.
        assert!(store.load(0x62).is_none());
        assert!(store.load_unit(0x61).is_none());
        assert!(store.load(0x61).is_some());
        assert!(store.load_unit(0x62).is_some());
    }

    #[test]
    fn missing_and_wrong_key_are_misses() {
        let tmp = TempDir::new("miss");
        let store = ArtifactStore::open(tmp.path(), 16).unwrap();
        assert!(store.load(7).is_none());
        store.save(&sample_artifact(7)).unwrap();
        assert!(store.load(8).is_none());
        // A file renamed under a different key fails the embedded-key check.
        fs::rename(
            tmp.path().join(format!("{:016x}.{EXTENSION}", 7)),
            tmp.path().join(format!("{:016x}.{EXTENSION}", 8)),
        )
        .unwrap();
        assert!(store.load(8).is_none());
    }

    #[test]
    fn truncated_and_garbage_artifacts_are_misses() {
        let tmp = TempDir::new("corrupt");
        let store = ArtifactStore::open(tmp.path(), 16).unwrap();
        let key = 0xabcd;
        store.save(&sample_artifact(key)).unwrap();
        let path = tmp.path().join(format!("{key:016x}.{EXTENSION}"));
        let full = fs::read(&path).unwrap();

        // Truncation at every prefix length is a miss, never a panic.
        for cut in [0, 1, 7, HEADER_LEN - 1, HEADER_LEN, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            assert!(store.load(key).is_none(), "cut={cut}");
        }
        // Pure garbage.
        fs::write(&path, b"not an artifact at all").unwrap();
        assert!(store.load(key).is_none());
        // A single flipped payload byte fails the checksum.
        let mut flipped = full.clone();
        *flipped.last_mut().unwrap() ^= 0xff;
        fs::write(&path, &flipped).unwrap();
        assert!(store.load(key).is_none());
        // Trailing junk after the payload is a miss too.
        let mut padded = full.clone();
        padded.push(0);
        fs::write(&path, &padded).unwrap();
        assert!(store.load(key).is_none());
        // Restoring the original bytes restores the hit.
        fs::write(&path, &full).unwrap();
        assert!(store.load(key).is_some());
    }

    #[test]
    fn version_bump_is_a_miss() {
        let tmp = TempDir::new("version");
        let store = ArtifactStore::open(tmp.path(), 16).unwrap();
        let key = 0x77;
        store.save(&sample_artifact(key)).unwrap();
        let path = tmp.path().join(format!("{key:016x}.{EXTENSION}"));
        let mut bytes = fs::read(&path).unwrap();
        // The version field sits right after the 8-byte magic.
        let bumped = (ARTIFACT_VERSION + 1).to_le_bytes();
        bytes[8..12].copy_from_slice(&bumped);
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(key).is_none());
    }

    #[test]
    fn eviction_is_deterministic_and_write_ordered() {
        let tmp = TempDir::new("evict");
        let store = ArtifactStore::open(tmp.path(), 3).unwrap();
        for key in 1..=5u64 {
            store
                .save(&Artifact::new(key, format!("src {key}")))
                .unwrap();
        }
        assert_eq!(store.len(), 3);
        assert!(store.load(1).is_none(), "oldest write evicted first");
        assert!(store.load(2).is_none());
        for key in 3..=5u64 {
            assert!(store.load(key).is_some(), "key {key} must survive");
        }
        // Re-saving an existing key refreshes its write sequence.
        store.save(&Artifact::new(3, "src 3".into())).unwrap();
        store.save(&Artifact::new(6, "src 6".into())).unwrap();
        assert!(store.load(4).is_none(), "4 is now the oldest write");
        assert!(store.load(3).is_some(), "refreshed key survives");
    }

    #[test]
    fn sequence_numbers_survive_reopen() {
        let tmp = TempDir::new("reopen");
        {
            let store = ArtifactStore::open(tmp.path(), 3).unwrap();
            for key in 1..=3u64 {
                store
                    .save(&Artifact::new(key, format!("src {key}")))
                    .unwrap();
            }
        }
        // A fresh store continues the sequence: the next write evicts key 1
        // (the oldest), not an arbitrary resident.
        let store = ArtifactStore::open(tmp.path(), 3).unwrap();
        store.save(&Artifact::new(4, "src 4".into())).unwrap();
        assert!(store.load(1).is_none());
        assert!(store.load(2).is_some());
        assert!(store.load(4).is_some());
    }

    #[test]
    fn concurrent_writers_never_tear_an_artifact() {
        let tmp = TempDir::new("race");
        let store = ArtifactStore::open(tmp.path(), 64).unwrap();
        let key = 0xfeed;
        std::thread::scope(|scope| {
            for t in 0..8 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..16 {
                        let mut artifact = sample_artifact(key);
                        artifact.summary.as_mut().unwrap().processes = t * 100 + i;
                        store.save(&artifact).unwrap();
                        // Every observed state is a complete, valid artifact.
                        let loaded = store.load(key).expect("never torn");
                        assert_eq!(loaded.key, key);
                        assert!(loaded.summary.is_some());
                    }
                });
            }
        });
        assert!(store.load(key).is_some());
        // No temp files leaked.
        let leftovers: Vec<_> = fs::read_dir(tmp.path())
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn unknown_sections_are_skipped_not_fatal() {
        let tmp = TempDir::new("forward");
        let store = ArtifactStore::open(tmp.path(), 16).unwrap();
        let key = 0x31u64;
        // Hand-build an artifact with an unknown trailing section.
        let mut payload = Vec::new();
        section(&mut payload, SEC_SOURCE, |b| put_str(b, "src"));
        section(&mut payload, 200, |b| b.extend_from_slice(b"future data"));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        fs::write(store.dir().join(format!("{key:016x}.{EXTENSION}")), &bytes).unwrap();
        let loaded = store.load(0x31).expect("unknown section must be skipped");
        assert_eq!(loaded.source, "src");
    }
}
