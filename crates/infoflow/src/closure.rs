//! Global dependencies: RD specialisation (Table 7) and the RD-guided
//! transitive closure of the Resource Matrix (Table 8).
//!
//! Rather than closing the local dependencies transitively (Kemmerer's
//! flow-insensitive method), the closure follows only those definition-use
//! chains that the Reaching Definitions analyses admit.  This is what makes
//! the resulting information-flow graph non-transitive and eliminates the
//! "spurious flows" of overwritten variables and signals.

use crate::rm::{Access, Node, ResourceMatrix};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use vhdl1_dataflow::{Def, ReachingDefinitions};
use vhdl1_syntax::{Design, Ident, Label};

/// A closure fixpoint (Table 8 or Table 9) failed to converge within its
/// iteration budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosureExhausted {
    /// Iterations charged before giving up (always `limit + 1`).
    pub iterations: u64,
    /// The configured iteration budget.
    pub limit: u64,
}

impl std::fmt::Display for ClosureExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "closure iteration budget exhausted: {} iterations, limit {}",
            self.iterations, self.limit
        )
    }
}

impl std::error::Error for ClosureExhausted {}

/// The specialised Reaching Definitions relations of Table 7.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpecializedRd {
    /// `RD†(l)`: definitions of variables / present signal values that reach
    /// *and are read at* label `l`.
    pub present: BTreeMap<Label, BTreeSet<(Ident, Def)>>,
    /// `RD†ϕ(l)`: active-signal definitions that reach *and are synchronised
    /// at* the wait label `l`.
    pub active: BTreeMap<Label, BTreeSet<(Ident, Label)>>,
}

impl SpecializedRd {
    /// `RD†(l)` (empty set if the label carries no reads).
    pub fn present_at(&self, l: Label) -> BTreeSet<(Ident, Def)> {
        self.present.get(&l).cloned().unwrap_or_default()
    }

    /// `RD†ϕ(l)` (empty set if `l` is not a synchronising wait).
    pub fn active_at(&self, l: Label) -> BTreeSet<(Ident, Label)> {
        self.active.get(&l).cloned().unwrap_or_default()
    }
}

/// Computes the specialisation of Table 7.
///
/// When `specialize` is `false` (an ablation discussed in DESIGN.md) the
/// filtering on "actually read at the label" is skipped and the raw entry
/// sets of the Reaching Definitions analyses are used instead.
pub fn specialize_rd(
    rd: &ReachingDefinitions,
    local: &ResourceMatrix,
    specialize: bool,
) -> SpecializedRd {
    let mut out = SpecializedRd::default();
    let labels = rd.cfg.labels();

    for &l in &labels {
        // RD† for present values and local variables.  The dense entry rows
        // are iterated without materialising a set, filtered against the
        // names actually read at `l` (collected once per label), and only
        // the surviving entries are cloned into the result.
        let reads = if specialize {
            local.res_names_with(l, Access::R0)
        } else {
            BTreeSet::new()
        };
        let filtered: BTreeSet<(Ident, Def)> = rd
            .present
            .entry_iter(l)
            .filter(|(n, _)| !specialize || reads.contains(n.as_str()))
            .cloned()
            .collect();
        if !filtered.is_empty() {
            out.present.insert(l, filtered);
        }

        // RD†ϕ for active signals at synchronisation points.
        if rd.cross.occurs_in_some_tuple(l) {
            let synced = if specialize {
                local.res_names_with(l, Access::R1)
            } else {
                BTreeSet::new()
            };
            let filtered: BTreeSet<(Ident, Label)> = rd
                .active
                .over
                .entry_iter(l)
                .filter(|(s, _)| !specialize || synced.contains(s.as_str()))
                .cloned()
                .collect();
            if !filtered.is_empty() {
                out.active.insert(l, filtered);
            }
        }
    }
    out
}

/// One round of the two propagation rules of Table 8: returns the entries
/// that should be added to `global` but are not yet present.
///
/// * `[Present values and local variables]`:
///   `(n', l') ∈ RD†(l)` and `(n, l', R0) ∈ RM_gl` imply `(n, l, R0) ∈ RM_gl`.
/// * `[Synchronized values]`:
///   `(s', l_i) ∈ RD†(l)`, `(s', l'') ∈ RD†ϕ(l_j)`, `(s, l'', R0) ∈ RM_gl`
///   and `l_i`, `l_j` co-occurring in `cf` imply `(s, l, R0) ∈ RM_gl`.
pub fn table8_step(
    global: &ResourceMatrix,
    rd: &ReachingDefinitions,
    spec: &SpecializedRd,
    wait_labels: &BTreeSet<Label>,
) -> Vec<(Node, Label, Access)> {
    let mut additions: Vec<(Node, Label, Access)> = Vec::new();

    // [Present values and local variables]
    for (&l, defs) in &spec.present {
        for (_n_prime, def) in defs {
            let Def::At(l_prime) = def else { continue };
            for entry in global.at_label(*l_prime) {
                if entry.access == Access::R0 && !global.contains(entry.node, l, Access::R0) {
                    additions.push((entry.node.clone(), l, Access::R0));
                }
            }
        }
    }

    // [Synchronized values]
    for (&l, defs) in &spec.present {
        for (s_prime, def) in defs {
            let Def::At(li) = def else { continue };
            if !wait_labels.contains(li) {
                continue;
            }
            for (&lj, active_defs) in &spec.active {
                if !rd.cross.co_occur(*li, lj) {
                    continue;
                }
                for (s2, l_dprime) in active_defs {
                    if s2 != s_prime {
                        continue;
                    }
                    for entry in global.at_label(*l_dprime) {
                        if entry.access == Access::R0 && !global.contains(entry.node, l, Access::R0)
                        {
                            additions.push((entry.node.clone(), l, Access::R0));
                        }
                    }
                }
            }
        }
    }

    additions
}

/// The label-to-label propagation relation induced by the two rules of
/// Table 8: an edge `l' → l` means every `(n, l', R0)` entry of `RM_gl`
/// implies the entry `(n, l, R0)`.
///
/// Both rules have this shape — the rule premises mention `RM_gl` only
/// through `(n, ·, R0)` with the node passed through unchanged — so the
/// whole closure collapses to reachability over these edges, computed once
/// from the specialised Reaching Definitions.
fn propagation_edges(
    rd: &ReachingDefinitions,
    spec: &SpecializedRd,
    wait_labels: &BTreeSet<Label>,
) -> HashMap<Label, Vec<Label>> {
    let mut seen: HashSet<(Label, Label)> = HashSet::new();
    let mut edges: HashMap<Label, Vec<Label>> = HashMap::new();
    let mut add = |edges: &mut HashMap<Label, Vec<Label>>, from: Label, to: Label| {
        if seen.insert((from, to)) {
            edges.entry(from).or_default().push(to);
        }
    };

    for (&l, defs) in &spec.present {
        for (s_prime, def) in defs {
            let Def::At(l_prime) = def else { continue };

            // [Present values and local variables]: (n', l') ∈ RD†(l) lets
            // R0 entries at l' flow to l.
            add(&mut edges, *l_prime, l);

            // [Synchronized values]: definitions made at a wait label l_i
            // additionally pull in the active-signal definitions of every
            // co-occurring wait l_j.
            if !wait_labels.contains(l_prime) {
                continue;
            }
            for (&lj, active_defs) in &spec.active {
                if !rd.cross.co_occur(*l_prime, lj) {
                    continue;
                }
                for (s2, l_dprime) in active_defs {
                    if s2 == s_prime {
                        add(&mut edges, *l_dprime, l);
                    }
                }
            }
        }
    }
    edges
}

/// Computes the global Resource Matrix `RM_gl` of Table 8 by closing the
/// local dependencies under the two propagation rules, guided by the
/// specialised Reaching Definitions.
///
/// Instead of re-running the rule premises to a fixpoint, the closure
/// precomputes the (private) `propagation_edges` relation and then propagates
/// each
/// `(n, l, R0)` entry along it with a worklist, processing every entry
/// exactly once — semi-naive evaluation specialised to Table 8's shape.
pub fn global_closure(
    design: &Design,
    rd: &ReachingDefinitions,
    spec: &SpecializedRd,
    local: &ResourceMatrix,
) -> ResourceMatrix {
    match global_closure_bounded(design, rd, spec, local, u64::MAX) {
        Ok(global) => global,
        Err(e) => unreachable!("unbounded closure cannot exhaust: {e}"),
    }
}

/// [`global_closure`] under an iteration budget: each worklist pop charges
/// one iteration.
///
/// The worklist processes entries in a deterministic FIFO order, so a given
/// design and budget always exhaust at the same point — regardless of thread
/// count or run.
///
/// # Errors
///
/// Returns [`ClosureExhausted`] when the closure does not converge within
/// `max_iterations` worklist pops.
pub fn global_closure_bounded(
    design: &Design,
    rd: &ReachingDefinitions,
    spec: &SpecializedRd,
    local: &ResourceMatrix,
    max_iterations: u64,
) -> Result<ResourceMatrix, ClosureExhausted> {
    let _ = design;
    let mut global = local.clone();
    let wait_labels: BTreeSet<Label> = rd
        .cfg
        .processes
        .iter()
        .flat_map(|p| p.wait_labels())
        .collect();
    let edges = propagation_edges(rd, spec, &wait_labels);

    let mut worklist: VecDeque<(Node, Label)> = global
        .iter()
        .filter(|e| e.access == Access::R0)
        .map(|e| (e.node.clone(), e.label))
        .collect();
    let mut iterations: u64 = 0;
    while let Some((node, label)) = worklist.pop_front() {
        iterations += 1;
        if iterations > max_iterations {
            return Err(ClosureExhausted {
                iterations,
                limit: max_iterations,
            });
        }
        let Some(targets) = edges.get(&label) else {
            continue;
        };
        for &target in targets {
            if global.insert(node.clone(), target, Access::R0) {
                worklist.push_back((node.clone(), target));
            }
        }
    }
    Ok(global)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FlowGraph;
    use crate::local::local_dependencies;
    use vhdl1_dataflow::RdOptions;
    use vhdl1_syntax::frontend;

    fn sequential(vars_body: &str) -> Design {
        let src = format!(
            "entity e is port(inp : in std_logic); end e;
             architecture rtl of e is begin
               p : process
                 variable a : std_logic;
                 variable b : std_logic;
                 variable c : std_logic;
               begin
                 {vars_body}
               end process p;
             end rtl;"
        );
        frontend(&src).unwrap()
    }

    fn analyse_sequential(body: &str) -> FlowGraph {
        let design = sequential(body);
        let opts = RdOptions {
            process_repeats: false,
            ..Default::default()
        };
        let rd = ReachingDefinitions::compute(&design, &opts);
        let local = local_dependencies(&design);
        let spec = specialize_rd(&rd, &local, true);
        let global = global_closure(&design, &rd, &spec, &local);
        FlowGraph::from_resource_matrix(&global)
    }

    #[test]
    fn figure_3a_program_a_is_non_transitive() {
        // (a): c := b; b := a  — flows b->c and a->b but NOT a->c.
        let g = analyse_sequential("c := b; b := a;");
        assert!(g.has_edge("b", "c"));
        assert!(g.has_edge("a", "b"));
        assert!(
            !g.has_edge("a", "c"),
            "the RD-based analysis must not report a -> c"
        );
        assert!(!g.is_transitive());
    }

    #[test]
    fn figure_3b_program_b_has_the_transitive_flow() {
        // (b): b := a; c := b  — here a -> c is a real flow.
        let g = analyse_sequential("b := a; c := b;");
        assert!(g.has_edge("a", "b"));
        assert!(g.has_edge("b", "c"));
        assert!(g.has_edge("a", "c"));
    }

    #[test]
    fn overwritten_temporary_does_not_leak() {
        // tmp is used for a, then overwritten and used for b: no cross flow.
        let src = "entity e is port(inp : in std_logic); end e;
             architecture rtl of e is begin
               p : process
                 variable a : std_logic;
                 variable b : std_logic;
                 variable outa : std_logic;
                 variable outb : std_logic;
                 variable tmp : std_logic;
               begin
                 tmp := a;
                 outa := tmp;
                 tmp := b;
                 outb := tmp;
               end process p;
             end rtl;";
        let design = frontend(src).unwrap();
        let opts = RdOptions {
            process_repeats: false,
            ..Default::default()
        };
        let rd = ReachingDefinitions::compute(&design, &opts);
        let local = local_dependencies(&design);
        let spec = specialize_rd(&rd, &local, true);
        let global = global_closure(&design, &rd, &spec, &local);
        let g = FlowGraph::from_resource_matrix(&global);
        assert!(g.has_edge("a", "outa"));
        assert!(g.has_edge("b", "outb"));
        assert!(
            !g.has_edge("a", "outb"),
            "stale tmp value must not flow to outb"
        );
        assert!(!g.has_edge("b", "outa"));
        // Kemmerer's method reports both spurious edges on the same program.
        let k = crate::kemmerer::kemmerer_graph(&design);
        assert!(k.has_edge("a", "outb"));
        assert!(k.has_edge("b", "outa"));
    }

    #[test]
    fn flows_across_processes_through_signals() {
        let src = "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic;
             begin
               p1 : process begin t <= a; wait on a; end process p1;
               p2 : process
                 variable v : std_logic;
               begin
                 v := t;
                 b <= v;
                 wait on t;
               end process p2;
             end rtl;";
        let design = frontend(src).unwrap();
        let rd = ReachingDefinitions::compute(&design, &RdOptions::default());
        let local = local_dependencies(&design);
        let spec = specialize_rd(&rd, &local, true);
        let global = global_closure(&design, &rd, &spec, &local);
        let g = FlowGraph::from_resource_matrix(&global);
        assert!(g.has_edge("a", "t"), "direct assignment flow");
        assert!(g.has_edge("t", "v"), "present value read into variable");
        assert!(g.has_edge("v", "b"));
        assert!(
            g.has_edge("a", "b"),
            "synchronised flow a -> t -> v -> b must be closed"
        );
    }

    #[test]
    fn bounded_closure_exhausts_deterministically() {
        let design = sequential("b := a; c := b;");
        let opts = RdOptions {
            process_repeats: false,
            ..Default::default()
        };
        let rd = ReachingDefinitions::compute(&design, &opts);
        let local = local_dependencies(&design);
        let spec = specialize_rd(&rd, &local, true);
        // Roomy budget: identical to the unbounded closure.
        let bounded = global_closure_bounded(&design, &rd, &spec, &local, 10_000).unwrap();
        assert_eq!(bounded, global_closure(&design, &rd, &spec, &local));
        // Starved budget: a structured, repeatable error.
        let e1 = global_closure_bounded(&design, &rd, &spec, &local, 1).unwrap_err();
        let e2 = global_closure_bounded(&design, &rd, &spec, &local, 1).unwrap_err();
        assert_eq!(e1, e2);
        assert_eq!(e1.limit, 1);
        assert_eq!(e1.iterations, 2);
        assert!(e1.to_string().contains("budget exhausted"));
    }

    #[test]
    fn specialization_filters_unread_definitions() {
        let src = "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is begin
               p : process
                 variable x : std_logic;
                 variable y : std_logic;
               begin
                 x := a;
                 y := a;
                 b <= y;
                 wait on a;
               end process p;
             end rtl;";
        let design = frontend(src).unwrap();
        let rd = ReachingDefinitions::compute(&design, &RdOptions::default());
        let local = local_dependencies(&design);
        let spec = specialize_rd(&rd, &local, true);
        // At label 3 (b <= y) only y is read, so RD†(3) mentions y but not x.
        let at3 = spec.present_at(3);
        assert!(at3.iter().any(|(n, _)| n == "y"));
        assert!(!at3.iter().any(|(n, _)| n == "x"));
        // Without specialisation x's definition is kept.
        let raw = specialize_rd(&rd, &local, false);
        assert!(raw.present_at(3).iter().any(|(n, _)| n == "x"));
    }
}
