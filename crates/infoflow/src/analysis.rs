//! The eager one-shot entry points and their owned [`AnalysisResult`].
//!
//! These are compatibility façades over the session API: the design-based
//! wrappers ([`analyze`], [`analyze_with`], [`analyze_all`]) drive a
//! throwaway [`crate::Engine`] session, and the source-based
//! [`analyze_source`] drives an edit session ([`crate::Workspace`]) of one
//! update; each runs a lazy [`crate::Analysis`] to completion and
//! materialises an owned result.  Callers that query more than once,
//! analyse more than one design, or do not need every stage should hold an
//! [`crate::Engine`] (or a [`crate::Workspace`] over it) instead.

use crate::budget::Budget;
use crate::closure::SpecializedRd;
use crate::engine::{Engine, EngineError};
use crate::graph::FlowGraph;
use crate::improved::{ImprovedClosure, ImprovedOptions};
use crate::kemmerer::kemmerer_graph_from_matrix;
use crate::rm::ResourceMatrix;
use serde::{Deserialize, Serialize};
use vhdl1_dataflow::{RdOptions, ReachingDefinitions};
use vhdl1_syntax::Design;

/// Options of the complete Information Flow analysis.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`AnalysisOptions::builder`] (or start from [`Default::default`],
/// [`AnalysisOptions::base`] or [`AnalysisOptions::sequential_illustration`]
/// and mutate fields), so adding an option is never a breaking change for
/// downstream crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct AnalysisOptions {
    /// Options of the underlying Reaching Definitions analyses.
    pub rd: RdOptions,
    /// Apply the RD specialisation of Table 7 before the closure.  Disabling
    /// it is an ablation: the closure then follows every reaching definition,
    /// not only the ones actually read at a label.
    pub specialize_rd: bool,
    /// Run the improved analysis of Section 5.3 (incoming `n◦` / outgoing
    /// `n•` nodes) in addition to the base closure.
    pub improved: bool,
    /// Options of the improved analysis.
    pub improved_options: ImprovedOptions,
    /// Resource limits of every stage (unlimited by default).  The budget is
    /// part of the options and therefore of the engine's memo key, so
    /// analyses under different budgets never share cached stages.
    pub budget: Budget,
    /// Collect stage-level spans and metrics into the engine's
    /// [`crate::TraceSink`] (`vhdl1c --profile`).  Off by default: the
    /// disabled path performs no span allocation and no timing calls —
    /// every instrumentation site reduces to one `Option` check.  Tracing
    /// never changes any analysis artifact or report byte.
    pub trace: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            rd: RdOptions::default(),
            specialize_rd: true,
            improved: true,
            improved_options: ImprovedOptions::default(),
            budget: Budget::default(),
            trace: false,
        }
    }
}

impl AnalysisOptions {
    /// Options for analysing the straight-line illustration programs of
    /// Figures 3 and 4: processes do not repeat and final assignments are
    /// treated as outgoing values.
    pub fn sequential_illustration() -> Self {
        AnalysisOptions {
            rd: RdOptions {
                process_repeats: false,
                ..RdOptions::default()
            },
            specialize_rd: true,
            improved: true,
            improved_options: ImprovedOptions {
                finals_are_outgoing: true,
            },
            budget: Budget::default(),
            trace: false,
        }
    }

    /// Options for the base (non-improved) analysis.
    pub fn base() -> Self {
        AnalysisOptions {
            improved: false,
            ..AnalysisOptions::default()
        }
    }

    /// Starts a builder from the default (paper-faithful) options.
    ///
    /// # Examples
    ///
    /// ```
    /// use vhdl1_infoflow::AnalysisOptions;
    ///
    /// let opts = AnalysisOptions::builder().improved(false).trace(true).build();
    /// assert!(!opts.improved);
    /// assert!(opts.trace);
    /// ```
    pub fn builder() -> AnalysisOptionsBuilder {
        AnalysisOptionsBuilder {
            opts: AnalysisOptions::default(),
        }
    }

    /// Starts a builder from these options (e.g. from
    /// [`AnalysisOptions::base`]), for changing a field without struct
    /// update syntax — which `#[non_exhaustive]` forbids downstream.
    pub fn to_builder(self) -> AnalysisOptionsBuilder {
        AnalysisOptionsBuilder { opts: self }
    }
}

/// Builder of [`AnalysisOptions`] — the construction path for downstream
/// crates, since the options struct is `#[non_exhaustive]`.
///
/// Obtained from [`AnalysisOptions::builder`] (defaults) or
/// [`AnalysisOptions::to_builder`] (any starting point); finished with
/// [`AnalysisOptionsBuilder::build`].
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptionsBuilder {
    opts: AnalysisOptions,
}

impl Default for AnalysisOptionsBuilder {
    fn default() -> Self {
        AnalysisOptions::builder()
    }
}

impl AnalysisOptionsBuilder {
    /// Sets the Reaching Definitions options.
    pub fn rd(mut self, rd: RdOptions) -> Self {
        self.opts.rd = rd;
        self
    }

    /// Sets whether the RD specialisation of Table 7 runs.
    pub fn specialize_rd(mut self, on: bool) -> Self {
        self.opts.specialize_rd = on;
        self
    }

    /// Sets whether the improved analysis of Section 5.3 runs.
    pub fn improved(mut self, on: bool) -> Self {
        self.opts.improved = on;
        self
    }

    /// Sets the options of the improved analysis.
    pub fn improved_options(mut self, improved_options: ImprovedOptions) -> Self {
        self.opts.improved_options = improved_options;
        self
    }

    /// Sets the resource budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.opts.budget = budget;
        self
    }

    /// Sets whether stage-level tracing is collected.
    pub fn trace(mut self, on: bool) -> Self {
        self.opts.trace = on;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> AnalysisOptions {
        self.opts
    }
}

/// Every artefact produced by the analysis pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisResult {
    /// Name of the analysed architecture.
    pub design_name: String,
    /// The options used.
    pub options: AnalysisOptions,
    /// The Reaching Definitions artefacts (Section 4).
    pub rd: ReachingDefinitions,
    /// The local Resource Matrix `RM_lo` (Table 6).
    pub local: ResourceMatrix,
    /// The specialised Reaching Definitions (Table 7).
    pub specialized: SpecializedRd,
    /// The global Resource Matrix `RM_gl` of the base closure (Table 8).
    pub global: ResourceMatrix,
    /// The improved closure (Table 9), if requested.
    pub improved: Option<ImprovedClosure>,
}

impl AnalysisResult {
    /// The information-flow graph of the analysis: the improved graph when
    /// the improved analysis was run, the base graph otherwise.
    ///
    /// Builds a fresh graph on every call (the owned result has no memo
    /// slots); query [`crate::Analysis::flow_graph`] instead when the graph
    /// is needed more than once.
    pub fn flow_graph(&self) -> FlowGraph {
        match &self.improved {
            Some(imp) => FlowGraph::from_resource_matrix(&imp.matrix),
            None => FlowGraph::from_resource_matrix(&self.global),
        }
    }

    /// The information-flow graph of the base (non-improved) closure.
    pub fn base_flow_graph(&self) -> FlowGraph {
        FlowGraph::from_resource_matrix(&self.global)
    }

    /// The graph produced by Kemmerer's method on the same local Resource
    /// Matrix (the paper's comparison baseline).
    pub fn kemmerer_flow_graph(&self) -> FlowGraph {
        kemmerer_graph_from_matrix(&self.local)
    }
}

/// Runs the full analysis with default (paper-faithful) options.
///
/// # Examples
///
/// The canonical one-process copier: information flows from the input port
/// to the output port, and nowhere else:
///
/// ```
/// use vhdl1_infoflow::analyze;
///
/// let design = vhdl1_syntax::frontend(
///     "entity e is port(a : in std_logic; b : out std_logic); end e;
///      architecture rtl of e is begin
///        p : process begin b <= a; wait on a; end process p;
///      end rtl;")?;
/// let result = analyze(&design);
/// let graph = result.flow_graph();
/// assert!(graph.has_edge("a", "b"));
/// assert!(!graph.has_edge("b", "a"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyze(design: &Design) -> AnalysisResult {
    analyze_with(design, &AnalysisOptions::default())
}

/// Runs the full analysis with explicit options.
///
/// # Panics
///
/// Panics when `options.budget` is exhausted mid-pipeline (see
/// [`crate::Analysis::into_result`]); budget-aware callers should drive an
/// [`Engine`] and use [`crate::Analysis::try_into_result`] instead.
///
/// # Examples
///
/// [`AnalysisOptions::base`] skips the improved (Section 5.3) closure; the
/// result then carries no incoming/outgoing nodes:
///
/// ```
/// use vhdl1_infoflow::{analyze_with, AnalysisOptions};
///
/// let design = vhdl1_syntax::frontend(
///     "entity e is port(a : in std_logic; b : out std_logic); end e;
///      architecture rtl of e is begin
///        p : process begin b <= a; wait on a; end process p;
///      end rtl;")?;
/// let result = analyze_with(&design, &AnalysisOptions::base());
/// assert!(result.improved.is_none());
/// assert!(result.base_flow_graph().has_edge("a", "b"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyze_with(design: &Design, options: &AnalysisOptions) -> AnalysisResult {
    let mut batch = analyze_all([design], options);
    batch.pop().expect("one design in, one result out")
}

/// Parses, elaborates and analyzes a source text in one step — the
/// per-design entry point of batch drivers (`vhdl1c analyze`), where inputs
/// arrive as text rather than elaborated designs.
///
/// Internally this is a one-update edit session: it drives
/// [`crate::Workspace::update`] on a throwaway [`Engine`], so it shares the
/// session API's cache-probe and per-unit bookkeeping paths.
///
/// # Panics
///
/// Panics when `options.budget` is exhausted mid-pipeline, like
/// [`analyze_with`].
///
/// # Errors
///
/// Returns the front end's [`vhdl1_syntax::SyntaxError`] when the source
/// does not parse or elaborate.
///
/// # Examples
///
/// ```
/// use vhdl1_infoflow::{analyze_source, AnalysisOptions};
///
/// let result = analyze_source(
///     "entity e is port(a : in std_logic; b : out std_logic); end e;
///      architecture rtl of e is begin
///        p : process begin b <= a; wait on a; end process p;
///      end rtl;",
///     &AnalysisOptions::default(),
/// )?;
/// assert!(result.flow_graph().has_edge("a", "b"));
/// # Ok::<(), vhdl1_syntax::SyntaxError>(())
/// ```
pub fn analyze_source(
    src: &str,
    options: &AnalysisOptions,
) -> Result<AnalysisResult, vhdl1_syntax::SyntaxError> {
    let engine = Engine::with_options(*options);
    let analysis = match engine.workspace().update(src) {
        Ok(analysis) => analysis,
        Err(EngineError::Frontend { source, .. }) => return Err(source),
        Err(err) => panic!("analysis budget exhausted: {err}"),
    };
    Ok(analysis.into_result())
}

/// Analyzes every design of a batch with shared options, preserving order.
///
/// This is the sequential batch entry point; parallel drivers (the
/// `vhdl1c` worker pool) distribute the same per-design calls across
/// threads.
pub fn analyze_all<'d>(
    designs: impl IntoIterator<Item = &'d Design>,
    options: &AnalysisOptions,
) -> Vec<AnalysisResult> {
    let engine = Engine::with_options(*options);
    designs
        .into_iter()
        .map(|d| engine.analyze(d).into_result())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vhdl1_syntax::frontend;

    const COPY: &str = "entity e is port(a : in std_logic; b : out std_logic); end e;
         architecture rtl of e is begin
           p : process begin b <= a; wait on a; end process p;
         end rtl;";

    #[test]
    fn analyze_produces_flow_from_input_to_output() {
        let design = frontend(COPY).unwrap();
        let result = analyze(&design);
        let g = result.flow_graph();
        assert!(g.has_edge("a", "b"));
        assert_eq!(result.design_name, "rtl");
        assert!(result.improved.is_some());
    }

    #[test]
    fn base_option_skips_improved_analysis() {
        let design = frontend(COPY).unwrap();
        let result = analyze_with(&design, &AnalysisOptions::base());
        assert!(result.improved.is_none());
        assert!(result.flow_graph().has_edge("a", "b"));
    }

    #[test]
    fn kemmerer_graph_is_superset_of_rd_graph_edges_on_plain_nodes() {
        let design = frontend(
            "entity e is port(a : in std_logic; c : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic;
             begin
               p : process
                 variable tmp : std_logic;
               begin
                 tmp := a;
                 t <= tmp;
                 tmp := c;
                 b <= tmp;
                 wait on a, c;
               end process p;
             end rtl;",
        )
        .unwrap();
        let result = analyze(&design);
        let ours = result.flow_graph().merge_io_nodes();
        let kemmerer = result.kemmerer_flow_graph();
        for (f, t) in ours.edges() {
            assert!(
                kemmerer.has_edge_nodes(f, t),
                "edge {f} -> {t} reported by our analysis but not by Kemmerer"
            );
        }
        // And Kemmerer has strictly more edges (the spurious ones).
        assert!(kemmerer.edge_count() > ours.edge_count());
        assert!(
            kemmerer.has_edge("a", "b"),
            "spurious flow via the reused temporary"
        );
        assert!(
            !ours.has_edge("a", "b"),
            "our analysis kills the overwritten temporary"
        );
    }

    #[test]
    fn sequential_illustration_options() {
        let o = AnalysisOptions::sequential_illustration();
        assert!(!o.rd.process_repeats);
        assert!(o.improved_options.finals_are_outgoing);
    }

    #[test]
    fn analyze_source_runs_the_front_end() {
        let result = analyze_source(COPY, &AnalysisOptions::default()).unwrap();
        assert!(result.flow_graph().has_edge("a", "b"));
        assert!(analyze_source("entity broken", &AnalysisOptions::default()).is_err());
    }

    #[test]
    fn analyze_all_preserves_order() {
        let d1 = frontend(COPY).unwrap();
        let d2 = frontend(&COPY.replace("rtl", "rtl2")).unwrap();
        let results = analyze_all([&d1, &d2], &AnalysisOptions::default());
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].design_name, "rtl");
        assert_eq!(results[1].design_name, "rtl2");
    }
}
