//! Resource budgets and cooperative cancellation for analysis sessions.
//!
//! A [`Budget`] bounds every stage of the pipeline — front end, Reaching
//! Definitions, closures, simulation — plus an optional wall-clock deadline.
//! Budgets are **cooperative**: each stage checks its own counter at
//! iteration boundaries and the deadline/cancel flag is checked at *stage*
//! boundaries, so exhaustion surfaces as a structured
//! [`crate::EngineError::ResourceExhausted`] instead of a hang or abort.
//! Pure counter limits are deterministic (the same source and budget always
//! truncate at the same point); the wall-clock deadline and the
//! [`CancelFlag`] are not, which is why they are checked *before* a stage
//! is memoized rather than recorded into shared memo slots.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Per-stage resource limits of an analysis session.
///
/// Every field is optional; `None` means unlimited.  The budget is part of
/// [`crate::AnalysisOptions`] and therefore participates in the engine's
/// memo key: analyses under different budgets never share memo slots, which
/// keeps truncation points byte-identical across runs and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Budget {
    /// Maximum accepted source length in bytes (checked before lexing).
    pub max_source_bytes: Option<u64>,
    /// Maximum parser nesting depth (expressions, statements, blocks).
    /// Clamped to the parser's own stack-safety bound
    /// ([`vhdl1_syntax::DEFAULT_PARSE_DEPTH`]).
    pub max_parse_depth: Option<u32>,
    /// Maximum worklist iterations per Reaching Definitions fixpoint solve.
    pub max_dataflow_steps: Option<u64>,
    /// Maximum closure iterations (Table 8 worklist pops; Table 9 rounds
    /// plus applied additions).
    pub max_closure_iterations: Option<u64>,
    /// Maximum total fact count in an ALFP solver run.
    pub max_alfp_facts: Option<u64>,
    /// Maximum semi-naive rounds in an ALFP solver run.
    pub max_alfp_rounds: Option<u64>,
    /// Maximum delta cycles in a smoke simulation (further capped by the
    /// caller's own `max_deltas` argument).
    pub max_sim_deltas: Option<u64>,
    /// Maximum total statement steps in a smoke simulation, summed over all
    /// processes and delta cycles.
    pub max_sim_steps: Option<u64>,
    /// Wall-clock deadline in milliseconds, measured from the creation of
    /// each [`crate::Analysis`] handle and checked at stage boundaries.
    /// Unlike every other limit, deadline exhaustion is **not** memoized.
    pub deadline_ms: Option<u64>,
}

impl Budget {
    /// No limits at all — the default.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A deliberately tight budget for adversarial or untrusted inputs:
    /// small sources, shallow nesting, and fixpoint/simulation caps low
    /// enough that the hostile corpus family exhausts them.
    pub fn tight() -> Budget {
        Budget {
            max_source_bytes: Some(16_384),
            max_parse_depth: Some(64),
            max_dataflow_steps: Some(20_000),
            max_closure_iterations: Some(10_000),
            max_alfp_facts: Some(50_000),
            max_alfp_rounds: Some(10_000),
            max_sim_deltas: Some(1_000),
            max_sim_steps: Some(200_000),
            deadline_ms: None,
        }
    }

    /// A generous serving budget: large enough for any realistic design,
    /// small enough that nothing can spin unboundedly.
    pub fn standard() -> Budget {
        Budget {
            max_source_bytes: Some(4 * 1024 * 1024),
            max_parse_depth: None,
            max_dataflow_steps: Some(2_000_000),
            max_closure_iterations: Some(1_000_000),
            max_alfp_facts: Some(5_000_000),
            max_alfp_rounds: Some(1_000_000),
            max_sim_deltas: Some(20_000),
            max_sim_steps: Some(20_000_000),
            deadline_ms: None,
        }
    }

    /// Whether every field is `None` (no limits configured).
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::default()
    }

    /// Parses a named preset: `"tight"`, `"standard"` or `"unlimited"`.
    pub fn preset(name: &str) -> Option<Budget> {
        match name {
            "tight" => Some(Budget::tight()),
            "standard" => Some(Budget::standard()),
            "unlimited" => Some(Budget::unlimited()),
            _ => None,
        }
    }
}

/// A cooperative cancellation flag shared between an analysis and an
/// external watchdog.
///
/// Cancellation is observed at stage boundaries (the same places the
/// wall-clock deadline is checked): a cancelled analysis finishes its
/// current stage and then reports
/// [`crate::EngineError::ResourceExhausted`] with the `deadline` stage.
/// Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// Creates a fresh, uncancelled flag.
    pub fn new() -> CancelFlag {
        CancelFlag::default()
    }

    /// Requests cancellation; observed at the next stage boundary.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        assert_eq!(Budget::preset("tight"), Some(Budget::tight()));
        assert_eq!(Budget::preset("standard"), Some(Budget::standard()));
        assert_eq!(Budget::preset("unlimited"), Some(Budget::unlimited()));
        assert_eq!(Budget::preset("bogus"), None);
        assert!(Budget::unlimited().is_unlimited());
        assert!(!Budget::tight().is_unlimited());
    }

    #[test]
    fn cancel_flag_is_shared_between_clones() {
        let flag = CancelFlag::new();
        let observer = flag.clone();
        assert!(!observer.is_cancelled());
        flag.cancel();
        assert!(observer.is_cancelled());
    }
}
