//! The static/dynamic cross-check: Isadora-style witnessed flows and mined
//! no-flow properties (`vhdl1-dynflow`) measured against the static flow
//! graphs of Section 5.
//!
//! Three artifacts per design:
//!
//! - **Soundness.** Every dynamically witnessed dependence `(src, resource)`
//!   must be *statically predicted*: the merged flow graph must contain a
//!   path from `src` to the resource.  Path, not edge — the paper's graph is
//!   deliberately non-transitive, so a multi-hop dynamic dependence appears
//!   as a chain of edges.  A witnessed dependence with no static path is a
//!   counterexample to the paper's soundness claim and is surfaced as a
//!   [`DynFlowReport::soundness_violations`] entry (a hard CI failure).
//! - **Precision.** A static edge never exercised dynamically is *expected*
//!   conservatism for a sound analysis, recorded in
//!   [`DynFlowReport::unwitnessed_static`].
//! - **Coverage.** After Meza/Kastner (arXiv:2304.08263): the fraction of
//!   static flow-graph edges dynamically exercised.  An edge `(u, v)` counts
//!   as covered when some perturbation source `s` disturbed both endpoints
//!   (`u` is `s` itself or diverged under it, and `v` diverged under it).
//!   Reported for the merged flow graph and the Kemmerer baseline.

use crate::graph::FlowGraph;
use crate::rm::Node;
use std::collections::{BTreeMap, BTreeSet};
use vhdl1_dynflow::WitnessReport;

/// A mined candidate `no-flow(from, to)` property: the pair never diverged
/// within the configured stimulus rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoFlowProperty {
    /// The input port that was perturbed.
    pub from: String,
    /// The output port that never diverged.
    pub to: String,
    /// Whether the static analysis agrees (no path `from → to` in the
    /// merged flow graph).  Disagreement — static predicts a flow the
    /// stimulus never witnessed — is the precision gap, not a bug.
    pub static_agrees: bool,
}

/// The result of [`crate::Analysis::dynamic_flows`]: dynamic witnesses from
/// differential simulation cross-checked against the static flow graphs.
#[derive(Debug, Clone, PartialEq)]
pub struct DynFlowReport {
    /// Stimulus rounds per perturbation source.
    pub rounds: u64,
    /// Stimulus seed.
    pub seed: u64,
    /// Witnessed `(input, output)` flows, each backed by a concrete pair of
    /// diverging executions.
    pub witnessed: Vec<(String, String)>,
    /// Dynamically witnessed dependences `(src, resource)` with **no
    /// static path** `src → resource` in the merged flow graph — each one a
    /// machine-checked counterexample to the analysis's soundness.
    pub soundness_violations: Vec<(String, String)>,
    /// Static merged-graph edges never exercised by any perturbation
    /// (expected conservatism of a sound analysis).
    pub unwitnessed_static: Vec<(String, String)>,
    /// Mined `no-flow(src, sink)` candidate properties over the
    /// `inputs × outputs` pairs that never diverged.
    pub no_flow_properties: Vec<NoFlowProperty>,
    /// Merged-graph edges dynamically exercised.
    pub covered_edges: usize,
    /// Total merged-graph edges.
    pub static_edges: usize,
    /// Kemmerer-baseline edges dynamically exercised.
    pub kemmerer_covered: usize,
    /// Total Kemmerer-baseline edges.
    pub kemmerer_edges: usize,
    /// Delta cycles consumed by the differential simulation.
    pub total_deltas: u64,
    /// Statement steps consumed by the differential simulation.
    pub total_steps: u64,
}

impl DynFlowReport {
    /// Fraction of merged-graph edges dynamically exercised (1.0 for an
    /// edgeless graph: there was nothing to cover).
    pub fn coverage(&self) -> f64 {
        if self.static_edges == 0 {
            1.0
        } else {
            self.covered_edges as f64 / self.static_edges as f64
        }
    }

    /// Whether no witnessed dependence escaped the static prediction.
    pub fn is_sound(&self) -> bool {
        self.soundness_violations.is_empty()
    }
}

/// Cross-checks a witness report against the merged flow graph and the
/// Kemmerer baseline.
pub(crate) fn cross_check(
    witness: &WitnessReport,
    merged: &FlowGraph,
    kemmerer: &FlowGraph,
) -> DynFlowReport {
    // Static reachability per perturbation source, computed once per source.
    let mut reach: BTreeMap<&str, BTreeSet<Node>> = BTreeMap::new();
    for src in &witness.sources {
        reach.insert(src, merged.reachable_from(&Node::res(src.clone())));
    }

    let mut soundness_violations = Vec::new();
    for src in &witness.sources {
        let reachable = &reach[src.as_str()];
        for resource in witness.diverged(src) {
            if !reachable.contains(&Node::res(resource.clone())) {
                soundness_violations.push((src.clone(), resource));
            }
        }
    }

    let edge_coverage = |graph: &FlowGraph| -> (usize, Vec<(String, String)>) {
        let mut covered = 0usize;
        let mut unwitnessed = Vec::new();
        for (u, v) in graph.edges() {
            let (u, v) = (u.name(), v.name());
            let exercised = witness.sources.iter().any(|s| {
                let diverged = &witness.divergence[s];
                (s == u || diverged.contains(u)) && diverged.contains(v)
            });
            if exercised {
                covered += 1;
            } else {
                unwitnessed.push((u.to_string(), v.to_string()));
            }
        }
        (covered, unwitnessed)
    };
    let (covered_edges, unwitnessed_static) = edge_coverage(merged);
    let (kemmerer_covered, _) = edge_coverage(kemmerer);

    let no_flow_properties = witness
        .no_flows
        .iter()
        .map(|(from, to)| NoFlowProperty {
            from: from.clone(),
            to: to.clone(),
            static_agrees: !reach[from.as_str()].contains(&Node::res(to.clone())),
        })
        .collect();

    DynFlowReport {
        rounds: witness.rounds,
        seed: witness.seed,
        witnessed: witness.witnessed.clone(),
        soundness_violations,
        unwitnessed_static,
        no_flow_properties,
        covered_edges,
        static_edges: merged.edge_count(),
        kemmerer_covered,
        kemmerer_edges: kemmerer.edge_count(),
        total_deltas: witness.total_deltas,
        total_steps: witness.total_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(static_edges: usize, covered: usize) -> DynFlowReport {
        DynFlowReport {
            rounds: 8,
            seed: 1,
            witnessed: vec![],
            soundness_violations: vec![],
            unwitnessed_static: vec![],
            no_flow_properties: vec![],
            covered_edges: covered,
            static_edges,
            kemmerer_covered: 0,
            kemmerer_edges: 0,
            total_deltas: 0,
            total_steps: 0,
        }
    }

    #[test]
    fn coverage_of_an_edgeless_graph_is_total() {
        assert_eq!(report(0, 0).coverage(), 1.0);
        assert_eq!(report(4, 1).coverage(), 0.25);
        assert!(report(0, 0).is_sound());
    }
}
