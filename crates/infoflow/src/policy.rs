//! Information-flow policies and Common Criteria style flow audits.
//!
//! The Covert Channel analysis of the Common Criteria (Chapter 14, the
//! paper's motivation) asks the designer to justify every information flow in
//! the system.  This module provides the bookkeeping: a [`Policy`] declares
//! which flows between resources are permitted (either as an explicit edge
//! whitelist or as a lattice of security levels), and [`audit`] reports every
//! edge of an information-flow graph that the policy does not cover.

use crate::graph::FlowGraph;
use crate::rm::Node;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use vhdl1_syntax::Ident;

/// A security level in a totally ordered lattice (`0` = public/low, larger =
/// more confidential).
pub type Level = u32;

/// A flow policy.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Policy {
    /// Security level per resource name; flows from a higher to a strictly
    /// lower level are violations.  Resources without a level are
    /// unconstrained by the lattice.
    pub levels: BTreeMap<Ident, Level>,
    /// Explicitly permitted flows (by resource name), e.g. declassification
    /// through an encryption unit.
    pub allowed: BTreeSet<(Ident, Ident)>,
}

impl Policy {
    /// Creates an empty (fully permissive) policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the security level of a resource.
    pub fn with_level(mut self, name: impl Into<Ident>, level: Level) -> Self {
        self.levels.insert(name.into(), level);
        self
    }

    /// Permits an explicit flow.
    pub fn with_allowed(mut self, from: impl Into<Ident>, to: impl Into<Ident>) -> Self {
        self.allowed.insert((from.into(), to.into()));
        self
    }

    /// Parses the textual policy format used by `vhdl1c --policy` files.
    ///
    /// One directive per line; blank lines and `#` comments are ignored:
    ///
    /// ```text
    /// # resource levels (0 = public, larger = more confidential)
    /// level key 2
    /// level bus 0
    /// # intended flows (declassifications)
    /// allow key -> ciphertext
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    ///
    /// # Examples
    ///
    /// ```
    /// use vhdl1_infoflow::Policy;
    ///
    /// let p = Policy::parse_text("level key 2\nallow key -> ct\n").unwrap();
    /// assert!(!p.permits("key", "anything_leveled")
    ///     || p.levels.get("key") == Some(&2));
    /// assert!(p.permits("key", "ct"));
    /// ```
    pub fn parse_text(text: &str) -> Result<Policy, String> {
        let mut policy = Policy::new();
        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("level") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: `level` needs a resource name"))?;
                    let level: Level = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("line {lineno}: `level {name}` needs a number"))?;
                    if let Some(junk) = parts.next() {
                        return Err(format!(
                            "line {lineno}: unexpected `{junk}` after `level {name} {level}`"
                        ));
                    }
                    policy.levels.insert(name.to_string(), level);
                }
                Some("allow") => {
                    let rest: String = parts.collect::<Vec<_>>().join(" ");
                    let (from, to) = rest.split_once("->").ok_or_else(|| {
                        format!("line {lineno}: `allow` needs `from -> to`, got `{rest}`")
                    })?;
                    let (from, to) = (from.trim(), to.trim());
                    if from.is_empty()
                        || to.is_empty()
                        || from.contains(char::is_whitespace)
                        || to.contains(char::is_whitespace)
                    {
                        return Err(format!(
                            "line {lineno}: `allow` endpoints must be single resource \
                             names, got `{rest}`"
                        ));
                    }
                    policy.allowed.insert((from.to_string(), to.to_string()));
                }
                Some(other) => {
                    return Err(format!(
                        "line {lineno}: unknown directive `{other}` (expected `level` or `allow`)"
                    ))
                }
                None => unreachable!("empty lines are skipped"),
            }
        }
        Ok(policy)
    }

    /// Renders the policy in the [`Policy::parse_text`] format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, level) in &self.levels {
            let _ = writeln!(out, "level {name} {level}");
        }
        for (from, to) in &self.allowed {
            let _ = writeln!(out, "allow {from} -> {to}");
        }
        out
    }

    /// Whether a flow between two resource names is permitted.
    pub fn permits(&self, from: &str, to: &str) -> bool {
        if self.allowed.contains(&(from.to_string(), to.to_string())) {
            return true;
        }
        match (self.levels.get(from), self.levels.get(to)) {
            (Some(lf), Some(lt)) => lf <= lt,
            // Unclassified endpoints are unconstrained.
            _ => true,
        }
    }
}

/// A policy violation: an edge of the flow graph that the policy forbids.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Violation {
    /// Source node of the offending edge.
    pub from: Node,
    /// Target node of the offending edge.
    pub to: Node,
    /// Level of the source, if classified.
    pub from_level: Option<Level>,
    /// Level of the target, if classified.
    pub to_level: Option<Level>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "illicit flow {} -> {}", self.from, self.to)?;
        if let (Some(a), Some(b)) = (self.from_level, self.to_level) {
            write!(f, " (level {a} -> level {b})")?;
        }
        Ok(())
    }
}

/// The outcome of auditing a flow graph against a policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Every edge that violates the policy.
    pub violations: Vec<Violation>,
    /// Number of edges examined.
    pub edges_checked: usize,
}

impl AuditReport {
    /// Whether the graph satisfies the policy.
    pub fn is_secure(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Audits every edge of `graph` against `policy`.  Incoming/outgoing nodes
/// are compared by their underlying resource name.
pub fn audit(graph: &FlowGraph, policy: &Policy) -> AuditReport {
    let mut violations = Vec::new();
    let mut edges_checked = 0;
    for (from, to) in graph.edges() {
        edges_checked += 1;
        if !policy.permits(from.name(), to.name()) {
            violations.push(Violation {
                from: from.clone(),
                to: to.clone(),
                from_level: policy.levels.get(from.name()).copied(),
                to_level: policy.levels.get(to.name()).copied(),
            });
        }
    }
    violations.sort();
    AuditReport {
        violations,
        edges_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> FlowGraph {
        let mut g = FlowGraph::new();
        g.add_edge(Node::res("key"), Node::res("cipher"));
        g.add_edge(Node::res("cipher"), Node::res("bus"));
        g.add_edge(Node::res("key"), Node::res("debug"));
        g
    }

    #[test]
    fn lattice_violations_are_reported() {
        let policy = Policy::new()
            .with_level("key", 2)
            .with_level("cipher", 2)
            .with_level("bus", 0)
            .with_level("debug", 0)
            .with_allowed("cipher", "bus"); // declassification through the cipher
        let report = audit(&graph(), &policy);
        assert_eq!(report.edges_checked, 3);
        assert!(!report.is_secure());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].from, Node::res("key"));
        assert_eq!(report.violations[0].to, Node::res("debug"));
        assert!(report.violations[0].to_string().contains("illicit flow"));
    }

    #[test]
    fn unclassified_resources_are_unconstrained() {
        let policy = Policy::new().with_level("key", 2);
        let report = audit(&graph(), &policy);
        assert!(report.is_secure());
    }

    #[test]
    fn explicit_allow_list_overrides_lattice() {
        let policy = Policy::new()
            .with_level("key", 2)
            .with_level("debug", 0)
            .with_allowed("key", "debug");
        assert!(policy.permits("key", "debug"));
        assert!(audit(&graph(), &policy).is_secure());
    }

    #[test]
    fn policy_text_roundtrips() {
        let policy = Policy::new()
            .with_level("key", 2)
            .with_level("bus", 0)
            .with_allowed("key", "ciphertext");
        let text = policy.to_text();
        assert_eq!(Policy::parse_text(&text).unwrap(), policy);
    }

    #[test]
    fn policy_text_accepts_comments_and_blank_lines() {
        let p = Policy::parse_text("# header\n\nlevel key 2  # trailing\nallow a -> b\n").unwrap();
        assert_eq!(p.levels.get("key"), Some(&2));
        assert!(p.allowed.contains(&("a".to_string(), "b".to_string())));
    }

    #[test]
    fn policy_text_rejects_malformed_lines() {
        assert!(Policy::parse_text("level key").is_err());
        assert!(Policy::parse_text("level key notanumber").is_err());
        assert!(Policy::parse_text("allow a b").is_err());
        assert!(Policy::parse_text("deny a -> b").is_err());
        // Trailing junk is an error, not silently ignored.
        assert!(Policy::parse_text("level key 2 oops").is_err());
        assert!(Policy::parse_text("allow key -> ct extra").is_err());
        assert!(Policy::parse_text("allow -> ct").is_err());
    }

    #[test]
    fn annotated_nodes_compare_by_name() {
        let mut g = FlowGraph::new();
        g.add_edge(Node::incoming("key"), Node::outgoing("bus"));
        let policy = Policy::new().with_level("key", 1).with_level("bus", 0);
        let report = audit(&g, &policy);
        assert_eq!(report.violations.len(), 1);
    }
}
