//! ALFP / Datalog encodings of the analyses (the paper's implementation
//! vehicle, Section 6: "Both the presented analyses and Kemmerer's method
//! have been implemented using the Succinct Solver").
//!
//! The native Rust implementation in [`crate::closure`] is the one used for
//! benchmarking; the clause systems generated here demonstrate the paper's
//! implementation route and serve as an independent cross-check: the flow
//! graph extracted from the least model of the clause system must coincide
//! with the graph of the native analysis (see the `alfp_crosscheck`
//! integration test).

use crate::analysis::AnalysisResult;
use crate::graph::FlowGraph;
use crate::rm::{Access, Node};
use alfp_solver::{Model, Program, SolveError, Symbol, Term};
use std::collections::HashMap;
use vhdl1_dataflow::Def;
use vhdl1_syntax::Label;

fn node_symbol(n: &Node) -> String {
    match n {
        Node::Res(x) => format!("res:{x}"),
        Node::Incoming(x) => format!("in:{x}"),
        Node::Outgoing(x) => format!("out:{x}"),
    }
}

fn symbol_node(s: &str) -> Node {
    match s.split_once(':') {
        Some(("res", x)) => Node::res(x),
        Some(("in", x)) => Node::incoming(x),
        Some(("out", x)) => Node::outgoing(x),
        _ => Node::res(s),
    }
}

fn access_symbol(a: Access) -> &'static str {
    match a {
        Access::M0 => "m0",
        Access::M1 => "m1",
        Access::R0 => "r0",
        Access::R1 => "r1",
    }
}

/// Memoised interning of the encoding's symbols: each distinct node, label
/// or resource name is formatted and interned once, and facts are emitted
/// through the solver's interned fast path with no per-fact string
/// formatting.
struct SymbolCache {
    nodes: HashMap<Node, Symbol>,
    labels: HashMap<Label, Symbol>,
    resources: HashMap<String, Symbol>,
}

impl SymbolCache {
    fn new() -> SymbolCache {
        SymbolCache {
            nodes: HashMap::new(),
            labels: HashMap::new(),
            resources: HashMap::new(),
        }
    }

    fn node(&mut self, p: &mut Program, n: &Node) -> Symbol {
        if let Some(&s) = self.nodes.get(n) {
            return s;
        }
        let s = p.intern(&node_symbol(n));
        self.nodes.insert(n.clone(), s);
        s
    }

    fn label(&mut self, p: &mut Program, l: Label) -> Symbol {
        if let Some(&s) = self.labels.get(&l) {
            return s;
        }
        let s = p.intern(&format!("l{l}"));
        self.labels.insert(l, s);
        s
    }

    /// Symbol of the plain-resource node `res:<name>`.
    fn resource(&mut self, p: &mut Program, name: &str) -> Symbol {
        if let Some(&s) = self.resources.get(name) {
            return s;
        }
        let s = p.intern(&format!("res:{name}"));
        self.resources.insert(name.to_string(), s);
        s
    }
}

/// Encodes the RD-guided global closure (Table 8) as a clause program.
///
/// Relations:
///
/// * `rm_lo(n, l, a)` — the local Resource Matrix,
/// * `rd_dag(n, l_def, l_use)` — the specialised `RD†`,
/// * `rd_phi(s, l_def, l_wait)` — the specialised `RD†ϕ`,
/// * `co_occur(l1, l2)` — the cross-flow co-occurrence of wait labels,
/// * `rm_gl(n, l, a)` — the derived global Resource Matrix,
/// * `flow(n1, n2)` — the edges of the information-flow graph.
pub fn encode_closure(result: &AnalysisResult) -> Program {
    let mut p = Program::new();
    let mut syms = SymbolCache::new();
    let rm_lo = p.intern("rm_lo");
    let rd_dag = p.intern("rd_dag");
    let rd_init = p.intern("rd_init");
    let rd_phi = p.intern("rd_phi");
    let co_occur = p.intern("co_occur");
    let wait_label = p.intern("wait_label");
    let access_syms =
        [Access::M0, Access::M1, Access::R0, Access::R1].map(|a| (a, p.intern(access_symbol(a))));
    let access = |a: Access| {
        access_syms
            .iter()
            .find(|(k, _)| *k == a)
            .expect("all accesses")
            .1
    };

    // Facts: the local Resource Matrix.
    for entry in result.local.iter() {
        let node = syms.node(&mut p, entry.node);
        let label = syms.label(&mut p, entry.label);
        p.fact_interned(rm_lo, vec![node, label, access(entry.access)]);
    }

    // Facts: the specialised Reaching Definitions.
    for (l, defs) in &result.specialized.present {
        for (n, d) in defs {
            let res = syms.resource(&mut p, n);
            let l_use = syms.label(&mut p, *l);
            if let Def::At(l_def) = d {
                let l_def = syms.label(&mut p, *l_def);
                p.fact_interned(rd_dag, vec![res, l_def, l_use]);
            } else {
                p.fact_interned(rd_init, vec![res, l_use]);
            }
        }
    }
    for (l, defs) in &result.specialized.active {
        for (s, l_def) in defs {
            let res = syms.resource(&mut p, s);
            let l_def = syms.label(&mut p, *l_def);
            let l_wait = syms.label(&mut p, *l);
            p.fact_interned(rd_phi, vec![res, l_def, l_wait]);
        }
    }

    // Facts: co-occurrence of wait labels in some synchronisation tuple.
    let wait_labels: Vec<_> = result
        .rd
        .cfg
        .processes
        .iter()
        .flat_map(|pr| pr.wait_labels())
        .collect();
    for &l1 in &wait_labels {
        let s1 = syms.label(&mut p, l1);
        for &l2 in &wait_labels {
            if result.rd.cross.co_occur(l1, l2) {
                let s2 = syms.label(&mut p, l2);
                p.fact_interned(co_occur, vec![s1, s2]);
            }
        }
        p.fact_interned(wait_label, vec![s1]);
    }

    // [Initialization]: rm_gl(N, L, A) :- rm_lo(N, L, A).
    p.rule(
        "rm_gl",
        vec![Term::var("N"), Term::var("L"), Term::var("A")],
    )
    .pos(
        "rm_lo",
        vec![Term::var("N"), Term::var("L"), Term::var("A")],
    )
    .build();

    // [Present values and local variables]:
    // rm_gl(N, L, r0) :- rd_dag(NP, LDEF, L), rm_gl(N, LDEF, r0).
    p.rule(
        "rm_gl",
        vec![Term::var("N"), Term::var("L"), Term::cst("r0")],
    )
    .pos(
        "rd_dag",
        vec![Term::var("NP"), Term::var("LDEF"), Term::var("L")],
    )
    .pos(
        "rm_gl",
        vec![Term::var("N"), Term::var("LDEF"), Term::cst("r0")],
    )
    .build();

    // [Synchronized values]:
    // rm_gl(S, L, r0) :- rd_dag(SP, LI, L), wait_label(LI), co_occur(LI, LJ),
    //                    rd_phi(SP, LPP, LJ), rm_gl(S, LPP, r0).
    p.rule(
        "rm_gl",
        vec![Term::var("S"), Term::var("L"), Term::cst("r0")],
    )
    .pos(
        "rd_dag",
        vec![Term::var("SP"), Term::var("LI"), Term::var("L")],
    )
    .pos("wait_label", vec![Term::var("LI")])
    .pos("co_occur", vec![Term::var("LI"), Term::var("LJ")])
    .pos(
        "rd_phi",
        vec![Term::var("SP"), Term::var("LPP"), Term::var("LJ")],
    )
    .pos(
        "rm_gl",
        vec![Term::var("S"), Term::var("LPP"), Term::cst("r0")],
    )
    .build();

    // Graph extraction: flow(N1, N2) :- rm_gl(N1, L, r0), rm_gl(N2, L, m0|m1).
    for m in ["m0", "m1"] {
        p.rule("flow", vec![Term::var("N1"), Term::var("N2")])
            .pos(
                "rm_gl",
                vec![Term::var("N1"), Term::var("L"), Term::cst("r0")],
            )
            .pos("rm_gl", vec![Term::var("N2"), Term::var("L"), Term::cst(m)])
            .build();
    }

    p
}

/// Encodes Kemmerer's method as a clause program: direct flows from the local
/// Resource Matrix followed by a transitive closure.
pub fn encode_kemmerer(result: &AnalysisResult) -> Program {
    let mut p = Program::new();
    let mut syms = SymbolCache::new();
    let rm_lo = p.intern("rm_lo");
    for entry in result.local.iter() {
        let node = syms.node(&mut p, entry.node);
        let label = syms.label(&mut p, entry.label);
        let access = p.intern(access_symbol(entry.access));
        p.fact_interned(rm_lo, vec![node, label, access]);
    }
    for m in ["m0", "m1"] {
        p.rule("direct", vec![Term::var("N1"), Term::var("N2")])
            .pos(
                "rm_lo",
                vec![Term::var("N1"), Term::var("L"), Term::cst("r0")],
            )
            .pos("rm_lo", vec![Term::var("N2"), Term::var("L"), Term::cst(m)])
            .build();
    }
    p.rule("flow", vec![Term::var("X"), Term::var("Y")])
        .pos("direct", vec![Term::var("X"), Term::var("Y")])
        .build();
    p.rule("flow", vec![Term::var("X"), Term::var("Z")])
        .pos("flow", vec![Term::var("X"), Term::var("Y")])
        .pos("direct", vec![Term::var("Y"), Term::var("Z")])
        .build();
    p
}

/// Extracts the information-flow graph from the `flow` relation of a model.
pub fn graph_from_model(model: &Model) -> FlowGraph {
    let mut g = FlowGraph::new();
    // Decode each distinct symbol once; edges and nodes then reuse the
    // decoded `Node`s instead of re-parsing strings per tuple.
    let mut nodes: HashMap<Symbol, Node> = HashMap::new();
    let mut node_of = |s: Symbol| -> Node {
        nodes
            .entry(s)
            .or_insert_with(|| symbol_node(model.resolve(s)))
            .clone()
    };
    if let Some(flow) = model.relation_ref("flow") {
        for tuple in flow.iter() {
            if let [from, to] = tuple {
                let (from, to) = (node_of(*from), node_of(*to));
                g.add_edge(from, to);
            }
        }
    }
    for rel in [model.relation_ref("rm_lo"), model.relation_ref("rm_gl")]
        .into_iter()
        .flatten()
    {
        for tuple in rel.iter() {
            if let Some(first) = tuple.first() {
                g.add_node(node_of(*first));
            }
        }
    }
    g
}

/// Solves the encoded base closure and returns the resulting graph.
///
/// # Errors
///
/// Propagates [`SolveError`] from the solver (the generated clause systems
/// are always safe and stratified, so errors indicate an encoding bug).
pub fn solve_closure(result: &AnalysisResult) -> Result<FlowGraph, SolveError> {
    let model = encode_closure(result).solve()?;
    Ok(graph_from_model(&model))
}

/// [`solve_closure`] under explicit solver resource limits.
///
/// # Errors
///
/// Propagates [`SolveError`], including
/// [`SolveError::ResourceExhausted`](alfp_solver::SolveError) when a limit
/// of `limits` is hit.
pub fn solve_closure_bounded(
    result: &AnalysisResult,
    limits: &alfp_solver::SolveLimits,
) -> Result<FlowGraph, SolveError> {
    let model = encode_closure(result).solve_bounded(limits)?;
    Ok(graph_from_model(&model))
}

/// Solves the encoded Kemmerer analysis and returns the resulting graph.
///
/// # Errors
///
/// Propagates [`SolveError`] from the solver.
pub fn solve_kemmerer(result: &AnalysisResult) -> Result<FlowGraph, SolveError> {
    let model = encode_kemmerer(result).solve()?;
    Ok(graph_from_model(&model))
}

/// [`solve_kemmerer`] under explicit solver resource limits.
///
/// # Errors
///
/// Propagates [`SolveError`], including
/// [`SolveError::ResourceExhausted`](alfp_solver::SolveError) when a limit
/// of `limits` is hit.
pub fn solve_kemmerer_bounded(
    result: &AnalysisResult,
    limits: &alfp_solver::SolveLimits,
) -> Result<FlowGraph, SolveError> {
    let model = encode_kemmerer(result).solve_bounded(limits)?;
    Ok(graph_from_model(&model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze_with, AnalysisOptions};
    use vhdl1_syntax::frontend;

    fn result_for(src: &str, opts: &AnalysisOptions) -> AnalysisResult {
        analyze_with(&frontend(src).unwrap(), opts)
    }

    const TEMP_REUSE: &str = "entity e is port(inp : in std_logic); end e;
         architecture rtl of e is begin
           p : process
             variable a : std_logic;
             variable b : std_logic;
             variable outa : std_logic;
             variable outb : std_logic;
             variable tmp : std_logic;
           begin
             tmp := a;
             outa := tmp;
             tmp := b;
             outb := tmp;
           end process p;
         end rtl;";

    #[test]
    fn alfp_closure_matches_native_closure() {
        let opts = AnalysisOptions {
            rd: vhdl1_dataflow::RdOptions {
                process_repeats: false,
                ..Default::default()
            },
            improved: false,
            ..AnalysisOptions::default()
        };
        let result = result_for(TEMP_REUSE, &opts);
        let native = result.base_flow_graph();
        let alfp = solve_closure(&result).unwrap();
        for (f, t) in native.edges() {
            assert!(
                alfp.has_edge_nodes(f, t),
                "missing edge {f} -> {t} in ALFP model"
            );
        }
        for (f, t) in alfp.edges() {
            assert!(
                native.has_edge_nodes(f, t),
                "extra edge {f} -> {t} in ALFP model"
            );
        }
    }

    #[test]
    fn alfp_kemmerer_matches_native_kemmerer() {
        let result = result_for(TEMP_REUSE, &AnalysisOptions::base());
        let native = result.kemmerer_flow_graph();
        let alfp = solve_kemmerer(&result).unwrap();
        for (f, t) in native.edges() {
            assert!(alfp.has_edge_nodes(f, t), "missing edge {f} -> {t}");
        }
        assert!(
            alfp.has_edge("a", "outb"),
            "Kemmerer's spurious edge must be present"
        );
    }

    #[test]
    fn symbols_roundtrip() {
        for n in [Node::res("x"), Node::incoming("a"), Node::outgoing("b")] {
            assert_eq!(symbol_node(&node_symbol(&n)), n);
        }
    }

    #[test]
    fn cross_process_flows_agree_with_native() {
        let src = "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic;
             begin
               p1 : process begin t <= a; wait on a; end process p1;
               p2 : process begin b <= t; wait on t; end process p2;
             end rtl;";
        let result = result_for(src, &AnalysisOptions::base());
        let native = result.base_flow_graph();
        let alfp = solve_closure(&result).unwrap();
        assert_eq!(
            native.edges().collect::<Vec<_>>(),
            alfp.edges().collect::<Vec<_>>(),
            "edge sets must be identical"
        );
        assert!(alfp.has_edge("a", "b"));
    }
}
