//! The information-flow graph produced by the analysis (Section 5).
//!
//! Nodes are variables and signals (plus incoming `n◦` and outgoing `n•`
//! nodes of the improved analysis); a directed edge `n1 → n2` means that
//! information *might* flow from `n1` to `n2`.  The graph is in general
//! **non-transitive** (Figure 3), which is exactly what distinguishes the
//! RD-based analysis from Kemmerer's transitive-closure method.
//!
//! Edges are stored as forward and backward adjacency maps, so neighbour
//! queries and the reachability-based operations (Kemmerer's transitive
//! closure in particular) never scan the whole edge set.

use crate::rm::{Access, Node, ResourceMatrix};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;
use vhdl1_syntax::Label;

/// Per-node label annotations for DOT rendering: which labelled blocks of
/// the design access each graph node.  Derived from the local Resource
/// Matrix and persisted with the artifact, so a disk-served analysis can
/// render an annotated graph without re-elaborating the source.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GraphLabels {
    /// The labels at which each node is accessed (any access kind).
    pub at: BTreeMap<Node, BTreeSet<Label>>,
}

impl GraphLabels {
    /// Collects the annotations of a (local) Resource Matrix.
    pub fn of(rm: &ResourceMatrix) -> GraphLabels {
        let mut at: BTreeMap<Node, BTreeSet<Label>> = BTreeMap::new();
        for entry in rm.iter() {
            at.entry(entry.node.clone())
                .or_default()
                .insert(entry.label);
        }
        GraphLabels { at }
    }

    /// The labels at which `node` is accessed (empty when unknown).
    pub fn labels_of(&self, node: &Node) -> BTreeSet<Label> {
        self.at.get(node).cloned().unwrap_or_default()
    }
}

/// A directed information-flow graph.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlowGraph {
    nodes: BTreeSet<Node>,
    succ: BTreeMap<Node, BTreeSet<Node>>,
    pred: BTreeMap<Node, BTreeSet<Node>>,
    edge_count: usize,
}

impl FlowGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the graph induced by a (global) Resource Matrix: for every
    /// label, everything read (`R0`) at that label flows into everything
    /// modified (`M0`/`M1`) at that label.
    pub fn from_resource_matrix(rm: &ResourceMatrix) -> FlowGraph {
        let mut g = FlowGraph::new();
        for node in rm.nodes() {
            g.add_node(node.clone());
        }
        for label in rm.labels() {
            let reads: Vec<Node> = rm
                .at_label(label)
                .filter(|e| e.access == Access::R0)
                .map(|e| e.node.clone())
                .collect();
            let mods: Vec<Node> = rm
                .at_label(label)
                .filter(|e| e.access.is_modification())
                .map(|e| e.node.clone())
                .collect();
            for m in &mods {
                for r in &reads {
                    g.add_edge(r.clone(), m.clone());
                }
            }
        }
        g
    }

    /// Adds a node.
    pub fn add_node(&mut self, n: Node) {
        self.nodes.insert(n);
    }

    /// Adds an edge (and both endpoints).
    pub fn add_edge(&mut self, from: Node, to: Node) {
        self.nodes.insert(from.clone());
        self.nodes.insert(to.clone());
        if self
            .succ
            .entry(from.clone())
            .or_default()
            .insert(to.clone())
        {
            self.pred.entry(to).or_default().insert(from);
            self.edge_count += 1;
        }
    }

    /// The nodes of the graph.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// The edges of the graph, in `(from, to)` lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (&Node, &Node)> {
        self.succ
            .iter()
            .flat_map(|(f, ts)| ts.iter().map(move |t| (f, t)))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether an edge exists between the *plain* resources with these names
    /// (convenience for tests and examples).
    pub fn has_edge(&self, from: &str, to: &str) -> bool {
        self.has_edge_nodes(&Node::res(from), &Node::res(to))
    }

    /// Whether an edge exists between two nodes.
    pub fn has_edge_nodes(&self, from: &Node, to: &Node) -> bool {
        self.succ.get(from).is_some_and(|ts| ts.contains(to))
    }

    /// Successors of a node.
    pub fn successors(&self, n: &Node) -> BTreeSet<&Node> {
        self.succ.get(n).into_iter().flatten().collect()
    }

    /// Predecessors of a node.
    pub fn predecessors(&self, n: &Node) -> BTreeSet<&Node> {
        self.pred.get(n).into_iter().flatten().collect()
    }

    /// Nodes reachable from `n` following edges (excluding `n` itself unless
    /// it lies on a cycle).
    pub fn reachable_from(&self, n: &Node) -> BTreeSet<Node> {
        let mut seen: BTreeSet<Node> = BTreeSet::new();
        let mut queue: VecDeque<&Node> = self.succ.get(n).into_iter().flatten().collect();
        while let Some(next) = queue.pop_front() {
            if seen.insert(next.clone()) {
                queue.extend(self.succ.get(next).into_iter().flatten());
            }
        }
        seen
    }

    /// The transitive closure of the graph (used by the Kemmerer baseline and
    /// by the non-transitivity check).
    pub fn transitive_closure(&self) -> FlowGraph {
        let mut g = self.clone();
        for n in &self.nodes {
            for r in self.reachable_from(n) {
                g.add_edge(n.clone(), r);
            }
        }
        g
    }

    /// Whether the graph equals its own transitive closure.
    pub fn is_transitive(&self) -> bool {
        // The closure only ever adds edges, so equal edge counts mean equal
        // graphs.
        self.transitive_closure().edge_count == self.edge_count
    }

    /// Restricts the graph to nodes whose *name* satisfies the predicate,
    /// dropping all other nodes and their edges.
    pub fn restrict<F: Fn(&Node) -> bool>(&self, keep: F) -> FlowGraph {
        let mut g = FlowGraph::new();
        for n in &self.nodes {
            if keep(n) {
                g.add_node(n.clone());
            }
        }
        for (f, t) in self.edges() {
            if keep(f) && keep(t) {
                g.add_edge(f.clone(), t.clone());
            }
        }
        g
    }

    /// Merges incoming and outgoing nodes with their plain resource node
    /// (dropping resulting self loops), as done for the presentation of
    /// Figure 5 in the paper ("we have merged incoming and outgoing nodes").
    pub fn merge_io_nodes(&self) -> FlowGraph {
        let merge = |n: &Node| Node::res(n.name().to_string());
        let mut g = FlowGraph::new();
        for n in &self.nodes {
            g.add_node(merge(n));
        }
        for (f, t) in self.edges() {
            let (mf, mt) = (merge(f), merge(t));
            if mf != mt {
                g.add_edge(mf, mt);
            }
        }
        g
    }

    /// Applies a renaming to every node's underlying name, merging nodes that
    /// map to the same name and dropping resulting self loops.  Useful for
    /// presenting graphs the way the paper does (e.g. identifying the `b_*`
    /// output ports of the ShiftRows workload with their `a_*` inputs in
    /// Figure 5).
    pub fn map_names<F: Fn(&str) -> String>(&self, rename: F) -> FlowGraph {
        let map = |n: &Node| match n {
            Node::Res(x) => Node::Res(rename(x)),
            Node::Incoming(x) => Node::Incoming(rename(x)),
            Node::Outgoing(x) => Node::Outgoing(rename(x)),
        };
        let mut g = FlowGraph::new();
        for n in &self.nodes {
            g.add_node(map(n));
        }
        for (f, t) in self.edges() {
            let (mf, mt) = (map(f), map(t));
            if mf != mt {
                g.add_edge(mf, mt);
            }
        }
        g
    }

    /// Edges present in `self` but not in `other`.
    pub fn edge_difference(&self, other: &FlowGraph) -> BTreeSet<(Node, Node)> {
        self.edges()
            .filter(|(f, t)| !other.has_edge_nodes(f, t))
            .map(|(f, t)| (f.clone(), t.clone()))
            .collect()
    }

    /// Renders the graph in Graphviz DOT syntax.
    pub fn to_dot(&self, name: &str) -> String {
        self.render_dot(name, None)
    }

    /// [`FlowGraph::to_dot`] with per-node label annotations: nodes the
    /// design accesses carry a `tooltip` listing the labels of the accessing
    /// blocks.
    pub fn to_dot_with(&self, name: &str, labels: &GraphLabels) -> String {
        self.render_dot(name, Some(labels))
    }

    fn render_dot(&self, name: &str, labels: Option<&GraphLabels>) -> String {
        let mut ids: BTreeMap<&Node, String> = BTreeMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            ids.insert(n, format!("n{i}"));
        }
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=LR;");
        for (n, id) in &ids {
            let shape = match n {
                Node::Res(_) => "ellipse",
                Node::Incoming(_) => "diamond",
                Node::Outgoing(_) => "box",
            };
            let at = labels.map(|l| l.labels_of(n)).unwrap_or_default();
            if at.is_empty() {
                let _ = writeln!(out, "  {id} [label=\"{n}\", shape={shape}];");
            } else {
                let list = at
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = writeln!(
                    out,
                    "  {id} [label=\"{n}\", shape={shape}, tooltip=\"accessed at {list}\"];"
                );
            }
        }
        for (f, t) in self.edges() {
            let _ = writeln!(out, "  {} -> {};", ids[f], ids[t]);
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> FlowGraph {
        // a -> b -> c
        let mut g = FlowGraph::new();
        g.add_edge(Node::res("a"), Node::res("b"));
        g.add_edge(Node::res("b"), Node::res("c"));
        g
    }

    #[test]
    fn edges_and_reachability() {
        let g = chain();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge("a", "b"));
        assert!(!g.has_edge("a", "c"));
        assert_eq!(
            g.reachable_from(&Node::res("a")),
            BTreeSet::from([Node::res("b"), Node::res("c")])
        );
    }

    #[test]
    fn duplicate_edges_are_not_double_counted() {
        let mut g = chain();
        g.add_edge(Node::res("a"), Node::res("b"));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edges().count(), 2);
    }

    #[test]
    fn transitive_closure_and_transitivity_check() {
        let g = chain();
        assert!(!g.is_transitive());
        let tc = g.transitive_closure();
        assert!(tc.has_edge("a", "c"));
        assert!(tc.is_transitive());
        assert_eq!(
            tc.edge_difference(&g),
            BTreeSet::from([(Node::res("a"), Node::res("c"))])
        );
    }

    #[test]
    fn from_resource_matrix_builds_read_to_modify_edges() {
        let mut rm = ResourceMatrix::new();
        rm.insert(Node::res("b"), 1, Access::M0);
        rm.insert(Node::res("a"), 1, Access::R0);
        rm.insert(Node::res("c"), 2, Access::M1);
        rm.insert(Node::res("b"), 2, Access::R0);
        rm.insert(Node::res("t"), 3, Access::R1); // synchronisation reads make no edges
        let g = FlowGraph::from_resource_matrix(&rm);
        assert!(g.has_edge("a", "b"));
        assert!(g.has_edge("b", "c"));
        assert!(!g.has_edge("a", "c"));
        assert!(g.nodes().any(|n| n.name() == "t"));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn restriction_keeps_subgraph() {
        let g = chain();
        let r = g.restrict(|n| n.name() != "b");
        assert_eq!(r.node_count(), 2);
        assert_eq!(r.edge_count(), 0);
    }

    #[test]
    fn merge_io_nodes_collapses_annotations() {
        let mut g = FlowGraph::new();
        g.add_edge(Node::incoming("a"), Node::res("b"));
        g.add_edge(Node::res("b"), Node::outgoing("b"));
        let m = g.merge_io_nodes();
        assert!(m.has_edge("a", "b"));
        assert_eq!(m.edge_count(), 1, "self loop b -> b• must be dropped");
        assert_eq!(m.node_count(), 2);
    }

    #[test]
    fn map_names_merges_and_drops_self_loops() {
        let mut g = FlowGraph::new();
        g.add_edge(Node::res("a_in"), Node::res("a_out"));
        g.add_edge(Node::res("a_in"), Node::res("b_out"));
        let merged = g.map_names(|n| {
            n.trim_end_matches("_in")
                .trim_end_matches("_out")
                .to_string()
        });
        assert_eq!(merged.node_count(), 2);
        assert_eq!(merged.edge_count(), 1);
        assert!(merged.has_edge("a", "b"));
    }

    #[test]
    fn dot_output_mentions_every_node_and_edge() {
        let g = chain();
        let dot = g.to_dot("test");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.matches("->").count() == 2);
    }

    #[test]
    fn predecessors_and_successors() {
        let g = chain();
        assert_eq!(g.successors(&Node::res("a")).len(), 1);
        assert_eq!(g.predecessors(&Node::res("c")).len(), 1);
        assert!(g.successors(&Node::res("c")).is_empty());
    }
}
