//! Local dependency analysis (Table 6).
//!
//! The inference system `B ⊢ ss : RM` computes, per process, the Resource
//! Matrix of *local* dependencies: which resources are read and modified at
//! each label, taking implicit flows from enclosing `if`/`while` conditions
//! into account through the block set `B`.

use crate::rm::{Access, Node, ResourceMatrix};
use std::collections::BTreeSet;
use vhdl1_syntax::{Design, Expr, Ident, Stmt};

/// Computes the local Resource Matrix `RM_lo = ⋃_i RM_i` where
/// `∅ ⊢ ss_i : RM_i` for every process of the design.
pub fn local_dependencies(design: &Design) -> ResourceMatrix {
    let mut rm = ResourceMatrix::new();
    for process in &design.processes {
        rm.extend_from(&local_dependencies_process(design, process.index));
    }
    rm
}

/// Computes the single-process contribution `RM_i` where `∅ ⊢ ss_i : RM_i`
/// — the unit the incremental engine caches per process.  Labels are
/// globally unique, so merging these with [`ResourceMatrix::extend_from`]
/// in any order reproduces [`local_dependencies`] exactly.
///
/// An out-of-range `pidx` yields an empty matrix.
pub fn local_dependencies_process(design: &Design, pidx: usize) -> ResourceMatrix {
    let mut rm = ResourceMatrix::new();
    if let Some(process) = design.processes.get(pidx) {
        let fs_body = design.process_free_signals(process.index);
        analyse_stmt(
            design,
            process.index,
            &process.body,
            &BTreeSet::new(),
            &fs_body,
            &mut rm,
        );
    }
    rm
}

/// Reads contributed by an expression: `FV(e) ∪ FS(e)` in the scope of
/// process `pidx`.
fn expr_reads(design: &Design, pidx: usize, e: &Expr) -> BTreeSet<Ident> {
    let mut out = design.free_vars(pidx, e);
    out.extend(design.free_signals(e));
    out
}

fn analyse_stmt(
    design: &Design,
    pidx: usize,
    stmt: &Stmt,
    block_set: &BTreeSet<Ident>,
    fs_body: &BTreeSet<Ident>,
    rm: &mut ResourceMatrix,
) {
    match stmt {
        Stmt::Null { .. } => {}
        Stmt::VarAssign {
            label,
            target,
            expr,
        } => {
            rm.insert(Node::res(target.name.clone()), *label, Access::M0);
            let mut reads = expr_reads(design, pidx, expr);
            reads.extend(block_set.iter().cloned());
            for n in reads {
                rm.insert(Node::res(n), *label, Access::R0);
            }
        }
        Stmt::SignalAssign {
            label,
            target,
            expr,
        } => {
            rm.insert(Node::res(target.name.clone()), *label, Access::M1);
            let mut reads = expr_reads(design, pidx, expr);
            reads.extend(block_set.iter().cloned());
            for n in reads {
                rm.insert(Node::res(n), *label, Access::R0);
            }
        }
        Stmt::Wait { label, on, until } => {
            // All free signals of the process body are synchronised here.
            for s in fs_body {
                rm.insert(Node::res(s.clone()), *label, Access::R1);
            }
            // The block set, the waited-on signals and the condition are read.
            let mut reads: BTreeSet<Ident> = block_set.clone();
            reads.extend(on.iter().cloned());
            reads.extend(expr_reads(design, pidx, until));
            for n in reads {
                rm.insert(Node::res(n), *label, Access::R0);
            }
        }
        Stmt::Seq(a, b) => {
            analyse_stmt(design, pidx, a, block_set, fs_body, rm);
            analyse_stmt(design, pidx, b, block_set, fs_body, rm);
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let mut extended = block_set.clone();
            extended.extend(expr_reads(design, pidx, cond));
            analyse_stmt(design, pidx, then_branch, &extended, fs_body, rm);
            analyse_stmt(design, pidx, else_branch, &extended, fs_body, rm);
        }
        Stmt::While { cond, body, .. } => {
            let mut extended = block_set.clone();
            extended.extend(expr_reads(design, pidx, cond));
            analyse_stmt(design, pidx, body, &extended, fs_body, rm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vhdl1_syntax::frontend;

    fn rm_for(body: &str) -> ResourceMatrix {
        let src = format!(
            "entity e is port(a : in std_logic; c : in std_logic; b : out std_logic); end e;
             architecture rtl of e is
               signal t : std_logic;
             begin
               p : process
                 variable x : std_logic;
                 variable y : std_logic;
               begin
                 {body}
               end process p;
             end rtl;"
        );
        local_dependencies(&frontend(&src).unwrap())
    }

    #[test]
    fn variable_assignment_records_m0_and_reads() {
        // 1: x := a and y
        let rm = rm_for("x := a and y; wait on a;");
        assert!(rm.contains(&Node::res("x"), 1, Access::M0));
        assert!(rm.contains(&Node::res("a"), 1, Access::R0));
        assert!(rm.contains(&Node::res("y"), 1, Access::R0));
        assert!(!rm.contains(&Node::res("x"), 1, Access::R0));
    }

    #[test]
    fn signal_assignment_records_m1() {
        let rm = rm_for("t <= x; wait on a;");
        assert!(rm.contains(&Node::res("t"), 1, Access::M1));
        assert!(rm.contains(&Node::res("x"), 1, Access::R0));
        assert!(!rm.contains(&Node::res("t"), 1, Access::M0));
    }

    #[test]
    fn implicit_flows_from_conditions() {
        // 1: if c 2: x := a 3: null; 4: wait
        let rm = rm_for("if c = '1' then x := a; else null; end if; wait on a;");
        assert!(rm.contains(&Node::res("x"), 2, Access::M0));
        assert!(rm.contains(&Node::res("a"), 2, Access::R0));
        // The condition variable is read wherever the branch modifies something.
        assert!(rm.contains(&Node::res("c"), 2, Access::R0));
        // The condition label itself carries no entries (Table 6).
        assert!(rm.at_label(1).next().is_none());
    }

    #[test]
    fn nested_conditions_accumulate_block_set() {
        let rm = rm_for("if c = '1' then if a = '1' then x := y; end if; end if; wait on a;");
        // x := y is label 3; both c and a are in its block set.
        assert!(rm.contains(&Node::res("c"), 3, Access::R0));
        assert!(rm.contains(&Node::res("a"), 3, Access::R0));
        assert!(rm.contains(&Node::res("y"), 3, Access::R0));
    }

    #[test]
    fn while_condition_flows_into_body() {
        let rm = rm_for("while c = '1' loop x := a; end loop; wait on a;");
        assert!(rm.contains(&Node::res("c"), 2, Access::R0));
        assert!(rm.contains(&Node::res("x"), 2, Access::M0));
    }

    #[test]
    fn wait_synchronises_all_free_signals_of_the_process() {
        // Free signals of the body: a (read), t (assigned), c (in condition).
        // Labels: 1 t<=a, 2 if-cond, 3 x:=a, 4 implicit null (else), 5 wait.
        let rm = rm_for("t <= a; if c = '1' then x := a; end if; wait on a until c = '1';");
        let wait_label = 5;
        assert!(rm.contains(&Node::res("t"), wait_label, Access::R1));
        assert!(rm.contains(&Node::res("a"), wait_label, Access::R1));
        assert!(rm.contains(&Node::res("c"), wait_label, Access::R1));
        // The waited-on signal and the condition's names are read (R0).
        assert!(rm.contains(&Node::res("a"), wait_label, Access::R0));
        assert!(rm.contains(&Node::res("c"), wait_label, Access::R0));
    }

    #[test]
    fn null_contributes_nothing() {
        let rm = rm_for("null; wait on a;");
        assert!(rm.at_label(1).next().is_none());
    }

    #[test]
    fn program_a_of_the_paper() {
        // (a): [c := b]^1; [b := a]^2 with plain variables.
        let src = "entity e is port(inp : in std_logic); end e;
             architecture rtl of e is begin
               p : process
                 variable a : std_logic;
                 variable b : std_logic;
                 variable c : std_logic;
               begin
                 c := b;
                 b := a;
               end process p;
             end rtl;";
        let rm = local_dependencies(&frontend(src).unwrap());
        assert!(rm.contains(&Node::res("c"), 1, Access::M0));
        assert!(rm.contains(&Node::res("b"), 1, Access::R0));
        assert!(rm.contains(&Node::res("b"), 2, Access::M0));
        assert!(rm.contains(&Node::res("a"), 2, Access::R0));
        assert_eq!(rm.len(), 4);
    }
}
