//! Stage-level tracing: spans, merged snapshots, and metrics exposition.
//!
//! The [`crate::Engine`] counts stage executions ([`crate::EngineStats`])
//! but says nothing about *where time and budget go* per design.  This
//! module adds that observability layer without any dependency and without
//! taxing the un-instrumented path:
//!
//! * [`TraceSink`] — a sharded span collector.  Worker threads append
//!   [`SpanRecord`]s to one of a fixed set of mutex-guarded shards (picked
//!   by thread id, so in the common one-engine-per-batch case each worker
//!   keeps writing the same uncontended shard); [`TraceSink::snapshot`]
//!   merges the shards into one deterministically ordered
//!   [`TraceSnapshot`].
//! * [`SpanRecord`] — one computed stage: design, stage name, parent stage
//!   (from a per-thread span stack, so nesting is recorded where it really
//!   happens), wall-clock nanoseconds, plus two **deterministic** counters:
//!   `work` (stage-specific effort — simulation deltas, closure matrix
//!   entries, worklist labels, or the budget units consumed when the stage
//!   was cut short) and `items` (artifact size — dense rows, graph edges,
//!   signals).
//! * Memo hits never allocate a span: they bump a per-stage atomic counter
//!   ([`TraceSnapshot::memo_hits`]), keeping the hot repeat-query path at
//!   one atomic add.
//! * [`TraceEvent`] — deadline/cancel trips observed at stage boundaries
//!   (the watchdog story of `vhdl1c --deadline-ms`).
//! * [`render_prometheus`] — Prometheus text-format exposition over a
//!   snapshot plus the engine counters: the metrics endpoint groundwork a
//!   future `vhdl1d` daemon mounts as `/metrics`.
//!
//! # What is deterministic
//!
//! `work`, `items`, span counts, memo-hit counts and the engine counters
//! depend only on the inputs and the options — they are byte-identical
//! across runs and worker counts.  `wall_ns` and event timings are
//! wall-clock and vary run to run.  Consumers that gate on profiles (the
//! `xtask profile-series` fold) must use only the deterministic side.
//!
//! # Zero overhead when disabled
//!
//! Tracing is off unless [`crate::AnalysisOptions::trace`] is set.  When
//! off, the engine holds no sink at all: every instrumentation site is a
//! single `Option` discriminant check — no allocation, no `Instant::now`,
//! no atomics (guarded by the `engine_cold_vs_warm` bench series, which
//! runs untraced).

use crate::engine::EngineStats;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Stable stage names of every traced span, in pipeline order.  Indexes
/// into the memo-hit counters of a [`TraceSink`].
pub const STAGES: [&str; 10] = [
    "frontend",
    "rd",
    "local",
    "specialized",
    "global",
    "improved",
    "flow_graph",
    "kemmerer",
    "smoke",
    "dynamic_flows",
];

fn stage_index(stage: &str) -> Option<usize> {
    STAGES.iter().position(|s| *s == stage)
}

/// One computed stage of one design's analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Name of the analysed design.
    pub design: String,
    /// Stage name (one of [`STAGES`]).
    pub stage: &'static str,
    /// The innermost enclosing span on the same thread when this stage
    /// started, if any — flow-graph builds nest the closures they force,
    /// for example.
    pub parent: Option<&'static str>,
    /// Wall-clock duration of the computation.  **Non-deterministic.**
    pub wall_ns: u64,
    /// Deterministic stage-specific work counter: simulation delta cycles,
    /// closure matrix entries, dataflow labels — or, when the stage
    /// exhausted its budget, the budget units consumed.
    pub work: u64,
    /// Deterministic artifact size: dense rows, graph edges, signals.
    pub items: u64,
}

/// A deadline or cancellation trip observed at a stage boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Name of the design whose analysis was refused further work.
    pub design: String,
    /// `"deadline"` (the engine's own wall-clock gate) or `"cancel"` (an
    /// external [`crate::CancelFlag`], typically a watchdog).
    pub kind: &'static str,
    /// Milliseconds elapsed since the analysis handle was created.
    /// **Non-deterministic.**
    pub elapsed_ms: u64,
}

/// Live timing state of a span in flight.  Created by [`TraceSink::begin`];
/// closed by [`TraceSink::end`].  Dropping an unfinished timer (a panicking
/// stage) unwinds the per-thread span stack so later spans are not
/// misattributed.
#[derive(Debug)]
pub struct SpanTimer {
    stage: &'static str,
    parent: Option<&'static str>,
    start: Instant,
    done: bool,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if !self.done {
            pop_stack(self.stage);
        }
    }
}

thread_local! {
    /// The per-thread stack of in-flight span stages — parents are
    /// attributed where nesting actually happens, per worker thread.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn push_stack(stage: &'static str) -> Option<&'static str> {
    SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(stage);
        parent
    })
}

fn pop_stack(stage: &'static str) {
    SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        // Pop through any entries a panicking nested stage failed to
        // remove, up to and including this span's own entry.
        while let Some(top) = stack.pop() {
            if top == stage {
                break;
            }
        }
    });
}

/// Number of span-buffer shards.  Threads pick a shard by thread-id hash,
/// so a batch pool's workers mostly write disjoint shards and the mutexes
/// are uncontended ("lock-free-ish" without unsafe code).
const SHARDS: usize = 16;

fn shard_index() -> usize {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::hash::DefaultHasher::new();
    std::thread::current().id().hash(&mut hasher);
    (hasher.finish() as usize) % SHARDS
}

/// Collects spans, memo hits and deadline events for one [`crate::Engine`].
///
/// Shared by every worker thread of a batch; cheap to write (one shard
/// mutex per computed span, one atomic per memo hit) and merged once at
/// [`TraceSink::snapshot`] time.
#[derive(Debug, Default)]
pub struct TraceSink {
    shards: [Mutex<Vec<SpanRecord>>; SHARDS],
    hits: [AtomicU64; STAGES.len()],
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceSink {
    /// Creates an empty sink.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// Opens a span: records the enclosing parent from the per-thread span
    /// stack and starts the clock.
    pub fn begin(&self, stage: &'static str) -> SpanTimer {
        SpanTimer {
            stage,
            parent: push_stack(stage),
            start: Instant::now(),
            done: false,
        }
    }

    /// Closes a span, recording its design, wall time and deterministic
    /// counters.
    pub fn end(&self, mut timer: SpanTimer, design: &str, work: u64, items: u64) {
        timer.done = true;
        pop_stack(timer.stage);
        let record = SpanRecord {
            design: design.to_string(),
            stage: timer.stage,
            parent: timer.parent,
            wall_ns: u64::try_from(timer.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            work,
            items,
        };
        self.shards[shard_index()]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(record);
    }

    /// Counts a memo hit on `stage` — no span is allocated.
    pub fn memo_hit(&self, stage: &'static str) {
        if let Some(i) = stage_index(stage) {
            self.hits[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a deadline/cancel trip.
    pub fn event(&self, design: &str, kind: &'static str, elapsed_ms: u64) {
        self.events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(TraceEvent {
                design: design.to_string(),
                kind,
                elapsed_ms,
            });
    }

    /// Merges every shard into one deterministically ordered snapshot.
    ///
    /// Spans sort by `(design, pipeline position, work, items)` — a total
    /// order independent of which worker computed what, so everything
    /// except the wall-clock fields is byte-stable across worker counts.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut spans: Vec<SpanRecord> = Vec::new();
        for shard in &self.shards {
            spans.extend(
                shard
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .iter()
                    .cloned(),
            );
        }
        spans.sort_by(|a, b| {
            (a.design.as_str(), stage_index(a.stage), a.work, a.items).cmp(&(
                b.design.as_str(),
                stage_index(b.stage),
                b.work,
                b.items,
            ))
        });
        let mut events = self
            .events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        events.sort_by(|a, b| (&a.design, a.kind).cmp(&(&b.design, b.kind)));
        TraceSnapshot {
            spans,
            memo_hits: std::array::from_fn(|i| self.hits[i].load(Ordering::Relaxed)),
            events,
        }
    }
}

/// Per-stage aggregation of a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageAgg {
    /// Stage name (one of [`STAGES`]).
    pub stage: &'static str,
    /// Number of computed spans.
    pub count: u64,
    /// Total wall time across spans.  **Non-deterministic.**
    pub wall_ns: u64,
    /// Total *self* wall time: wall time minus the wall time of directly
    /// nested child spans.  **Non-deterministic.**
    pub self_ns: u64,
    /// Sum of the deterministic work counters.
    pub work: u64,
    /// Sum of the deterministic artifact sizes.
    pub items: u64,
    /// Memo hits on this stage.
    pub memo_hits: u64,
}

/// A merged, deterministically ordered view of everything a [`TraceSink`]
/// collected.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSnapshot {
    /// Every computed span, sorted by `(design, stage)`.
    pub spans: Vec<SpanRecord>,
    /// Memo hits per stage, indexed like [`STAGES`].
    pub memo_hits: [u64; STAGES.len()],
    /// Deadline/cancel events, sorted by `(design, kind)`.
    pub events: Vec<TraceEvent>,
}

impl TraceSnapshot {
    /// Aggregates the snapshot per stage, in [`STAGES`] order.  Self time
    /// subtracts each span's directly nested children (same design, parent
    /// pointing at the span's stage), so summing `self_ns` across stages
    /// never double-counts nesting.
    pub fn stage_totals(&self) -> Vec<StageAgg> {
        let mut totals: Vec<StageAgg> = STAGES
            .iter()
            .enumerate()
            .map(|(i, stage)| StageAgg {
                stage,
                memo_hits: self.memo_hits[i],
                ..StageAgg::default()
            })
            .collect();
        for span in &self.spans {
            let Some(i) = stage_index(span.stage) else {
                continue;
            };
            let child_ns: u64 = self
                .spans
                .iter()
                .filter(|c| c.parent == Some(span.stage) && c.design == span.design)
                .map(|c| c.wall_ns)
                .sum();
            totals[i].count += 1;
            totals[i].wall_ns += span.wall_ns;
            totals[i].self_ns += span.wall_ns.saturating_sub(child_ns);
            totals[i].work += span.work;
            totals[i].items += span.items;
        }
        totals
    }

    /// Sum of per-stage self time — by construction at most the total wall
    /// time the computing threads spent inside spans.
    pub fn total_self_ns(&self) -> u64 {
        self.stage_totals().iter().map(|t| t.self_ns).sum()
    }

    /// Sum of the deterministic work counters across every span.
    pub fn total_work(&self) -> u64 {
        self.spans.iter().map(|s| s.work).sum()
    }

    /// Sum of the deterministic artifact sizes across every span.
    pub fn total_items(&self) -> u64 {
        self.spans.iter().map(|s| s.items).sum()
    }
}

/// Renders a snapshot plus the engine counters in the Prometheus text
/// exposition format (version 0.0.4) — the `/metrics` payload a serving
/// daemon would return.
///
/// Counter values are cumulative over the engine's lifetime; stage labels
/// use the stable names of [`STAGES`].
pub fn render_prometheus(snapshot: &TraceSnapshot, stats: &EngineStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP vhdl1_stage_runs_total Stage computations (memo hits excluded)."
    );
    let _ = writeln!(out, "# TYPE vhdl1_stage_runs_total counter");
    let totals = snapshot.stage_totals();
    for t in &totals {
        let _ = writeln!(
            out,
            "vhdl1_stage_runs_total{{stage=\"{}\"}} {}",
            t.stage, t.count
        );
    }
    let _ = writeln!(
        out,
        "# HELP vhdl1_stage_self_seconds_total Self wall time per stage."
    );
    let _ = writeln!(out, "# TYPE vhdl1_stage_self_seconds_total counter");
    for t in &totals {
        let _ = writeln!(
            out,
            "vhdl1_stage_self_seconds_total{{stage=\"{}\"}} {:.9}",
            t.stage,
            t.self_ns as f64 / 1e9
        );
    }
    let _ = writeln!(
        out,
        "# HELP vhdl1_stage_memo_hits_total Memoized stage queries served without recomputation."
    );
    let _ = writeln!(out, "# TYPE vhdl1_stage_memo_hits_total counter");
    for t in &totals {
        let _ = writeln!(
            out,
            "vhdl1_stage_memo_hits_total{{stage=\"{}\"}} {}",
            t.stage, t.memo_hits
        );
    }
    let _ = writeln!(
        out,
        "# HELP vhdl1_stage_work_total Deterministic work units per stage."
    );
    let _ = writeln!(out, "# TYPE vhdl1_stage_work_total counter");
    for t in &totals {
        let _ = writeln!(
            out,
            "vhdl1_stage_work_total{{stage=\"{}\"}} {}",
            t.stage, t.work
        );
    }
    let _ = writeln!(
        out,
        "# HELP vhdl1_engine_cache_hits_total Source memo-table hits."
    );
    let _ = writeln!(out, "# TYPE vhdl1_engine_cache_hits_total counter");
    let _ = writeln!(out, "vhdl1_engine_cache_hits_total {}", stats.cache_hits);
    let _ = writeln!(
        out,
        "# HELP vhdl1_engine_cache_misses_total Source memo-table misses."
    );
    let _ = writeln!(out, "# TYPE vhdl1_engine_cache_misses_total counter");
    let _ = writeln!(
        out,
        "vhdl1_engine_cache_misses_total {}",
        stats.cache_misses
    );
    let _ = writeln!(
        out,
        "# HELP vhdl1_store_hits_total Persistent-artifact hits (memory misses served from disk)."
    );
    let _ = writeln!(out, "# TYPE vhdl1_store_hits_total counter");
    let _ = writeln!(out, "vhdl1_store_hits_total {}", stats.store_hits);
    let _ = writeln!(
        out,
        "# HELP vhdl1_store_misses_total Persistent-artifact misses (absent, corrupt, or stale)."
    );
    let _ = writeln!(out, "# TYPE vhdl1_store_misses_total counter");
    let _ = writeln!(out, "vhdl1_store_misses_total {}", stats.store_misses);
    let _ = writeln!(
        out,
        "# HELP vhdl1_store_writes_total Persistent artifacts written through to disk."
    );
    let _ = writeln!(out, "# TYPE vhdl1_store_writes_total counter");
    let _ = writeln!(out, "vhdl1_store_writes_total {}", stats.store_writes);
    let _ = writeln!(
        out,
        "# HELP vhdl1_units_reused_total Per-process stages reused across workspace updates."
    );
    let _ = writeln!(out, "# TYPE vhdl1_units_reused_total counter");
    let _ = writeln!(out, "vhdl1_units_reused_total {}", stats.units_reused);
    let _ = writeln!(
        out,
        "# HELP vhdl1_units_recomputed_total Per-process stages recomputed across workspace updates."
    );
    let _ = writeln!(out, "# TYPE vhdl1_units_recomputed_total counter");
    let _ = writeln!(
        out,
        "vhdl1_units_recomputed_total {}",
        stats.units_recomputed
    );
    let _ = writeln!(
        out,
        "# HELP vhdl1_deadline_events_total Deadline/cancel trips observed at stage boundaries."
    );
    let _ = writeln!(out, "# TYPE vhdl1_deadline_events_total counter");
    let _ = writeln!(out, "vhdl1_deadline_events_total {}", snapshot.events.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_merge_sorted_and_carry_parents() {
        let sink = TraceSink::new();
        let outer = sink.begin("flow_graph");
        let inner = sink.begin("global");
        sink.end(inner, "d1", 5, 2);
        sink.end(outer, "d1", 0, 3);
        let lone = sink.begin("rd");
        sink.end(lone, "d0", 7, 1);
        let snap = sink.snapshot();
        let got: Vec<(&str, &'static str, Option<&'static str>)> = snap
            .spans
            .iter()
            .map(|s| (s.design.as_str(), s.stage, s.parent))
            .collect();
        assert_eq!(
            got,
            vec![
                ("d0", "rd", None),
                ("d1", "global", Some("flow_graph")),
                ("d1", "flow_graph", None),
            ]
        );
    }

    #[test]
    fn self_time_subtracts_nested_children() {
        let snap = TraceSnapshot {
            spans: vec![
                SpanRecord {
                    design: "d".into(),
                    stage: "global",
                    parent: Some("flow_graph"),
                    wall_ns: 40,
                    work: 0,
                    items: 0,
                },
                SpanRecord {
                    design: "d".into(),
                    stage: "flow_graph",
                    parent: None,
                    wall_ns: 100,
                    work: 0,
                    items: 0,
                },
            ],
            ..TraceSnapshot::default()
        };
        let totals = snap.stage_totals();
        let graph = totals.iter().find(|t| t.stage == "flow_graph").unwrap();
        assert_eq!(graph.wall_ns, 100);
        assert_eq!(graph.self_ns, 60);
        assert_eq!(snap.total_self_ns(), 100); // 60 + 40, no double count
    }

    #[test]
    fn memo_hits_count_without_span_allocation() {
        let sink = TraceSink::new();
        sink.memo_hit("rd");
        sink.memo_hit("rd");
        sink.memo_hit("smoke");
        let snap = sink.snapshot();
        assert!(snap.spans.is_empty());
        assert_eq!(snap.memo_hits[stage_index("rd").unwrap()], 2);
        assert_eq!(snap.memo_hits[stage_index("smoke").unwrap()], 1);
    }

    #[test]
    fn dropped_timer_unwinds_the_stack() {
        let sink = TraceSink::new();
        {
            let _abandoned = sink.begin("rd"); // dropped without end()
        }
        let span = sink.begin("local");
        assert_eq!(span.parent, None, "abandoned span must not leak a parent");
        sink.end(span, "d", 0, 0);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let sink = TraceSink::new();
        let t = sink.begin("rd");
        sink.end(t, "d", 3, 4);
        sink.event("d", "deadline", 12);
        let text = render_prometheus(&sink.snapshot(), &EngineStats::default());
        assert!(text.contains("vhdl1_stage_runs_total{stage=\"rd\"} 1"));
        assert!(text.contains("vhdl1_stage_work_total{stage=\"rd\"} 3"));
        assert!(text.contains("vhdl1_engine_cache_misses_total 0"));
        assert!(text.contains("vhdl1_deadline_events_total 1"));
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_once(' ')
                        .is_some_and(|(name, value)| !name.is_empty() && !value.is_empty()),
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn events_sort_deterministically() {
        let sink = TraceSink::new();
        sink.event("b", "deadline", 1);
        sink.event("a", "cancel", 2);
        let snap = sink.snapshot();
        assert_eq!(snap.events[0].design, "a");
        assert_eq!(snap.events[1].design, "b");
    }
}
