//! # `vhdl1-infoflow` — the Information Flow analysis of Section 5
//!
//! This crate is the primary contribution of the reproduced paper,
//! *Information Flow Analysis for VHDL* (Tolstrup, Nielson & Nielson,
//! PaCT 2005): a flow-sensitive information-flow analysis for VHDL1 whose
//! result is a (generally non-transitive) directed graph over the variables
//! and signals of a design.
//!
//! The pipeline:
//!
//! 1. [`local`] — the inference system of Table 6 builds the local Resource
//!    Matrix `RM_lo` (which resources are read/modified at each label,
//!    including implicit flows from branch conditions);
//! 2. [`closure`] — Table 7 specialises the Reaching Definitions results of
//!    `vhdl1-dataflow`, and Table 8 closes `RM_lo` along admissible
//!    definition-use chains into the global matrix `RM_gl`;
//! 3. [`improved`] — Table 9 adds incoming (`n◦`) and outgoing (`n•`) nodes
//!    modelling the environment process `π`;
//! 4. [`graph`] — the matrix induces the information-flow graph, exportable
//!    to Graphviz;
//! 5. [`kemmerer`] — the flow-insensitive baseline the paper compares
//!    against; [`policy`] — Common Criteria style flow audits.
//!
//! The primary entry point is the demand-driven [`engine`] API: a
//! long-lived [`Engine`] session hands out lazy, memoized [`Analysis`]
//! handles whose stage queries compute on first demand and return borrowed
//! artifacts.  [`Engine::workspace`] opens an edit session ([`Workspace`])
//! that re-analyses successive revisions incrementally, reusing the
//! per-process stages of every process whose content fingerprint is
//! unchanged.  The eager [`analyze`]/[`analyze_with`] one-shots remain as
//! compatibility wrappers materialising an owned [`AnalysisResult`].
//!
//! ```
//! use vhdl1_infoflow::analyze;
//!
//! let design = vhdl1_syntax::frontend(
//!     "entity e is port(a : in std_logic; b : out std_logic); end e;
//!      architecture rtl of e is begin
//!        p : process begin b <= a; wait on a; end process p;
//!      end rtl;")?;
//! let result = analyze(&design);
//! let graph = result.flow_graph();
//! assert!(graph.has_edge("a", "b"));
//! println!("{}", graph.to_dot("copy"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alfp_encoding;
pub mod analysis;
pub mod budget;
pub mod closure;
pub mod dynflow;
pub mod engine;
pub mod graph;
pub mod improved;
pub mod kemmerer;
pub mod local;
pub mod policy;
pub mod rm;
pub mod store;
pub mod trace;

pub use analysis::{
    analyze, analyze_all, analyze_source, analyze_with, AnalysisOptions, AnalysisOptionsBuilder,
    AnalysisResult,
};
pub use budget::{Budget, CancelFlag};
pub use closure::{
    global_closure, global_closure_bounded, specialize_rd, table8_step, ClosureExhausted,
    SpecializedRd,
};
pub use dynflow::{DynFlowReport, NoFlowProperty};
pub use engine::{
    fnv1a64, options_fingerprint, Analysis, CachePolicy, Engine, EngineConfig, EngineError,
    EnginePhase, EngineStage, EngineStats, SmokeReport, Workspace, DYNFLOW_MAX_DELTAS,
};
pub use graph::{FlowGraph, GraphLabels};
pub use improved::{improved_closure, improved_closure_bounded, ImprovedClosure, ImprovedOptions};
pub use kemmerer::{kemmerer_graph, kemmerer_graph_from_matrix};
pub use local::{local_dependencies, local_dependencies_process};
pub use policy::{audit, AuditReport, Policy, Violation};
pub use rm::{Access, Node, ResourceMatrix, RmEntry};
pub use store::{Artifact, ArtifactStore, DesignSummary, UnitArtifact, ARTIFACT_VERSION};
pub use trace::{render_prometheus, SpanRecord, StageAgg, TraceEvent, TraceSink, TraceSnapshot};
