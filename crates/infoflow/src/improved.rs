//! The improved Information Flow analysis of Section 5.3 (Table 9).
//!
//! The base analysis answers "which resources may influence which resources",
//! but it cannot distinguish the *initial* value of a resource from values it
//! obtains during execution, nor relate values to the environment.  The
//! improvement adds, for every relevant resource `n`, an **incoming** node
//! `n◦` (its initial value or a value injected by the environment at a
//! synchronisation point) and, for every `out` port, an **outgoing** node
//! `n•` (the value the environment can observe), modelled through the
//! environment process `π` of Section 5.3.

use crate::closure::{table8_step, ClosureExhausted, SpecializedRd};
use crate::rm::{Access, Node, ResourceMatrix};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use vhdl1_dataflow::{BlockKind, Def, ReachingDefinitions};
use vhdl1_syntax::{Design, Ident, Label};

/// Options of the improved analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ImprovedOptions {
    /// Treat the variables assigned by the final statements of each process
    /// as outgoing values.  This reproduces the sequential illustration of
    /// Figure 4, where the last assignment of program (b) is considered
    /// "outcoming"; designs with entities normally rely on `out` ports
    /// instead.
    pub finals_are_outgoing: bool,
}

/// Result of the improved closure: the extended global Resource Matrix plus
/// the synthetic labels allocated for the outgoing assignments of the
/// environment process `π`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImprovedClosure {
    /// The extended global Resource Matrix.
    pub matrix: ResourceMatrix,
    /// Synthetic label `l_{n•}` per outgoing resource.
    pub outgoing_labels: BTreeMap<Ident, Label>,
}

/// Runs the combined fixpoint of Table 8 and Table 9, starting from the local
/// Resource Matrix.
pub fn improved_closure(
    design: &Design,
    rd: &ReachingDefinitions,
    spec: &SpecializedRd,
    local: &ResourceMatrix,
    options: &ImprovedOptions,
) -> ImprovedClosure {
    match improved_closure_bounded(design, rd, spec, local, options, u64::MAX) {
        Ok(closure) => closure,
        Err(e) => unreachable!("unbounded closure cannot exhaust: {e}"),
    }
}

/// [`improved_closure`] under an iteration budget: every fixpoint round and
/// every applied addition charges one iteration, so the charge tracks actual
/// work and a given design and budget always exhaust at the same
/// (deterministic) point.
///
/// # Errors
///
/// Returns [`ClosureExhausted`] when the fixpoint does not converge within
/// `max_iterations`.
pub fn improved_closure_bounded(
    design: &Design,
    rd: &ReachingDefinitions,
    spec: &SpecializedRd,
    local: &ResourceMatrix,
    options: &ImprovedOptions,
    max_iterations: u64,
) -> Result<ImprovedClosure, ClosureExhausted> {
    let mut iterations: u64 = 0;
    let mut charge = |amount: u64| -> Result<(), ClosureExhausted> {
        iterations = iterations.saturating_add(amount);
        if iterations > max_iterations {
            return Err(ClosureExhausted {
                iterations,
                limit: max_iterations,
            });
        }
        Ok(())
    };
    let mut global = local.clone();
    let wait_labels: BTreeSet<Label> = rd
        .cfg
        .processes
        .iter()
        .flat_map(|p| p.wait_labels())
        .collect();
    let input_signals: BTreeSet<Ident> = design.input_signals().into_iter().collect();
    let output_signals: BTreeSet<Ident> = design.output_signals().into_iter().collect();

    // Allocate the synthetic labels of the π process: one per outgoing value.
    let mut next_label = design.max_label() + 1;
    let mut outgoing_labels: BTreeMap<Ident, Label> = BTreeMap::new();
    let mut outgoing_defs: Vec<(Ident, Label, BTreeSet<Label>)> = Vec::new();
    for s in &output_signals {
        outgoing_labels.insert(s.clone(), next_label);
        // The outgoing value of an out port is formed from the active values
        // arriving at *any* synchronisation point ([Outcoming values]).
        outgoing_defs.push((s.clone(), next_label, wait_labels.clone()));
        next_label += 1;
    }
    if options.finals_are_outgoing {
        for pcfg in &rd.cfg.processes {
            for l in &pcfg.finals {
                if let Some(block) = pcfg.blocks.get(l) {
                    if let BlockKind::VarAssign { target, .. } = &block.kind {
                        let entry =
                            outgoing_labels
                                .entry(target.name.clone())
                                .or_insert_with(|| {
                                    let l = next_label;
                                    next_label += 1;
                                    l
                                });
                        outgoing_defs.push((target.name.clone(), *entry, BTreeSet::from([*l])));
                    }
                }
            }
        }
    }

    // [Outgoing values]: each outgoing value is modified at its synthetic
    // label; the resource's own (final) value is what the π process reads.
    for (n, l_out, _) in &outgoing_defs {
        global.insert(Node::outgoing(n.clone()), *l_out, Access::M1);
        global.insert(Node::res(n.clone()), *l_out, Access::R0);
    }

    loop {
        charge(1)?;
        let mut additions = table8_step(&global, rd, spec, &wait_labels);

        // [Initial values]: reading a value that may still be the initial one
        // reads the incoming node of that resource.
        for (&l, defs) in &spec.present {
            for (n, def) in defs {
                if *def == Def::Init {
                    let node = Node::incoming(n.clone());
                    if !global.contains(&node, l, Access::R0) {
                        additions.push((node, l, Access::R0));
                    }
                }
            }
        }

        // [Incoming values]: a present value obtained at a synchronisation
        // point may have been driven by the environment process π — only the
        // `in` ports of the entity are driven by π.
        for (&l, defs) in &spec.present {
            for (n, def) in defs {
                let Def::At(lp) = def else { continue };
                if wait_labels.contains(lp) && input_signals.contains(n) {
                    let node = Node::incoming(n.clone());
                    if !global.contains(&node, l, Access::R0) {
                        additions.push((node, l, Access::R0));
                    }
                }
            }
        }

        // [Outcoming values]: the active values arriving at a wait statement
        // determine the outgoing value; the resources read where those active
        // values were produced therefore flow to the outgoing node.
        for (n_out, l_out, at_labels) in &outgoing_defs {
            for l in at_labels {
                for (s, l_def) in spec.active_at(*l) {
                    // Only flows into the outgoing resource itself matter.
                    if &s != n_out {
                        continue;
                    }
                    for entry in global.at_label(l_def) {
                        if entry.access == Access::R0
                            && !global.contains(entry.node, *l_out, Access::R0)
                        {
                            additions.push((entry.node.clone(), *l_out, Access::R0));
                        }
                    }
                }
                // Sequential illustration mode: the "final" label is a plain
                // variable assignment, not a wait; copy its reads directly.
                if !wait_labels.contains(l) {
                    for entry in global.at_label(*l) {
                        if entry.access == Access::R0
                            && !global.contains(entry.node, *l_out, Access::R0)
                        {
                            additions.push((entry.node.clone(), *l_out, Access::R0));
                        }
                    }
                }
            }
        }

        if additions.is_empty() {
            break;
        }
        charge(additions.len() as u64)?;
        for (node, label, access) in additions {
            global.insert(node, label, access);
        }
    }

    Ok(ImprovedClosure {
        matrix: global,
        outgoing_labels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::specialize_rd;
    use crate::graph::FlowGraph;
    use crate::local::local_dependencies;
    use vhdl1_dataflow::RdOptions;
    use vhdl1_syntax::frontend;

    fn improved_graph(src: &str, rd_opts: &RdOptions, opts: &ImprovedOptions) -> FlowGraph {
        let design = frontend(src).unwrap();
        let rd = ReachingDefinitions::compute(&design, rd_opts);
        let local = local_dependencies(&design);
        let spec = specialize_rd(&rd, &local, true);
        let closure = improved_closure(&design, &rd, &spec, &local, opts);
        FlowGraph::from_resource_matrix(&closure.matrix)
    }

    /// Program (b) of the paper as a straight-line process over variables.
    const PROGRAM_B: &str = "entity e is port(inp : in std_logic); end e;
         architecture rtl of e is begin
           p : process
             variable a : std_logic;
             variable b : std_logic;
             variable c : std_logic;
           begin
             b := a;
             c := b;
           end process p;
         end rtl;";

    #[test]
    fn figure_4b_initial_value_of_b_does_not_reach_c() {
        let g = improved_graph(
            PROGRAM_B,
            &RdOptions {
                process_repeats: false,
                ..Default::default()
            },
            &ImprovedOptions {
                finals_are_outgoing: true,
            },
        );
        // The initial value of a flows into b (and transitively c): a◦ -> b.
        assert!(g.has_edge_nodes(&Node::incoming("a"), &Node::res("b")));
        assert!(g.has_edge_nodes(&Node::incoming("a"), &Node::res("c")));
        // The initial value of b must NOT reach c — it is overwritten first.
        assert!(!g.has_edge_nodes(&Node::incoming("b"), &Node::res("c")));
        // The resulting (outgoing) value of c is influenced by b and a◦.
        assert!(g.has_edge_nodes(&Node::res("c"), &Node::outgoing("c")));
        assert!(g.has_edge_nodes(&Node::res("b"), &Node::outgoing("c")));
        assert!(g.has_edge_nodes(&Node::incoming("a"), &Node::outgoing("c")));
        assert!(!g.has_edge_nodes(&Node::incoming("b"), &Node::outgoing("c")));
    }

    const PORTED: &str = "entity e is port(a : in std_logic; b : out std_logic); end e;
         architecture rtl of e is
           signal t : std_logic;
         begin
           p1 : process begin t <= a; wait on a; end process p1;
           p2 : process begin b <= t; wait on t; end process p2;
         end rtl;";

    #[test]
    fn incoming_port_values_flow_to_outputs() {
        let g = improved_graph(PORTED, &RdOptions::default(), &ImprovedOptions::default());
        // a's environment-provided value flows through t into b and to b•.
        assert!(g.has_edge_nodes(&Node::incoming("a"), &Node::res("t")));
        assert!(g.has_edge_nodes(&Node::res("t"), &Node::res("b")));
        assert!(g.has_edge_nodes(&Node::res("b"), &Node::outgoing("b")));
        assert!(g.has_edge_nodes(&Node::res("a"), &Node::outgoing("b")));
        // The internal signal t gets an incoming node only through the
        // [Initial values] rule (its initial value may reach a use); the
        // environment-driven [Incoming values] rule is restricted to `in`
        // ports, so b (an `out` port never read with an initial value) has none.
        assert!(!g
            .nodes()
            .any(|n| matches!(n, Node::Incoming(x) if x == "b")));
    }

    #[test]
    fn merged_view_matches_base_analysis_reachability() {
        let g = improved_graph(PORTED, &RdOptions::default(), &ImprovedOptions::default());
        let merged = g.merge_io_nodes();
        assert!(merged.has_edge("a", "t"));
        assert!(merged.has_edge("t", "b"));
    }

    #[test]
    fn bounded_improved_closure_exhausts_deterministically() {
        let design = frontend(PORTED).unwrap();
        let rd = ReachingDefinitions::compute(&design, &RdOptions::default());
        let local = local_dependencies(&design);
        let spec = specialize_rd(&rd, &local, true);
        let opts = ImprovedOptions::default();
        let roomy = improved_closure_bounded(&design, &rd, &spec, &local, &opts, 100_000).unwrap();
        assert_eq!(roomy, improved_closure(&design, &rd, &spec, &local, &opts));
        let e1 = improved_closure_bounded(&design, &rd, &spec, &local, &opts, 1).unwrap_err();
        let e2 = improved_closure_bounded(&design, &rd, &spec, &local, &opts, 1).unwrap_err();
        assert_eq!(e1, e2);
        assert_eq!(e1.limit, 1);
        assert!(e1.iterations > 1);
    }

    #[test]
    fn outgoing_labels_are_fresh() {
        let design = frontend(PORTED).unwrap();
        let rd = ReachingDefinitions::compute(&design, &RdOptions::default());
        let local = local_dependencies(&design);
        let spec = specialize_rd(&rd, &local, true);
        let closure = improved_closure(&design, &rd, &spec, &local, &ImprovedOptions::default());
        let max = design.max_label();
        for l in closure.outgoing_labels.values() {
            assert!(*l > max);
        }
        assert_eq!(closure.outgoing_labels.len(), 1);
    }
}
