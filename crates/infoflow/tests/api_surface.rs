//! Dependency-free public-API snapshot test.
//!
//! The crate's surface — its `pub mod`s and the names re-exported at the
//! root — is pinned in `tests/api_surface.golden`.  Accidental additions,
//! removals or renames fail this test; intentional changes regenerate the
//! golden with `UPDATE_GOLDEN=1 cargo test -p vhdl1-infoflow --test
//! api_surface`.
//!
//! The snapshot is extracted textually from `src/lib.rs` (no proc-macro or
//! rustdoc dependency); the `compile_time_surface_check` test below keeps
//! the extraction honest by `use`-ing every golden name, so a stale golden
//! cannot pass the build.

use std::fmt::Write as _;

fn surface() -> String {
    let lib = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/src/lib.rs"))
        .expect("lib.rs is readable");
    let mut mods: Vec<String> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    // `pub use` lists may span lines; strip to `;` before splitting.
    let flattened = lib.replace('\n', " ");
    for item in flattened.split(';') {
        // The first statement of a chunk may be preceded by doc comments or
        // attributes; locate the declaration inside the chunk.
        if let Some(at) = item.find("pub mod ") {
            mods.push(item[at + "pub mod ".len()..].trim().to_string());
        } else if let Some(at) = item.find("pub use ") {
            let u = item[at + "pub use ".len()..].trim();
            let (_path, list) = match u.split_once('{') {
                Some((p, rest)) => (p, rest.trim_end_matches('}')),
                None => ("", u.rsplit("::").next().unwrap_or(u)),
            };
            for name in list.split(',') {
                let name = name.trim();
                if !name.is_empty() {
                    names.push(name.rsplit("::").next().unwrap_or(name).to_string());
                }
            }
        }
    }
    mods.sort();
    names.sort();
    let mut out = String::new();
    let _ = writeln!(out, "# public modules");
    for m in &mods {
        let _ = writeln!(out, "mod {m}");
    }
    let _ = writeln!(out, "# root re-exports");
    for n in &names {
        let _ = writeln!(out, "{n}");
    }
    out
}

#[test]
fn public_api_matches_golden() {
    let actual = surface();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/api_surface.golden");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing golden `{path}` ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "the public API surface of vhdl1-infoflow changed; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and mention the change in CHANGES.md"
    );
}

/// Every name in the golden must actually resolve — imports fail the build
/// if the snapshot and the crate drift apart in the other direction.
#[test]
fn compile_time_surface_check() {
    #[allow(unused_imports)]
    use vhdl1_infoflow::{
        analyze, analyze_all, analyze_source, analyze_with, audit, fnv1a64, global_closure,
        improved_closure, kemmerer_graph, kemmerer_graph_from_matrix, local_dependencies,
        local_dependencies_process, options_fingerprint, render_prometheus, specialize_rd,
        table8_step, Access, Analysis, AnalysisOptions, AnalysisOptionsBuilder, AnalysisResult,
        Artifact, ArtifactStore, AuditReport, CachePolicy, DesignSummary, Engine, EngineConfig,
        EngineError, EnginePhase, EngineStats, FlowGraph, GraphLabels, ImprovedClosure,
        ImprovedOptions, Node, Policy, ResourceMatrix, RmEntry, SpanRecord, SpecializedRd,
        StageAgg, TraceEvent, TraceSink, TraceSnapshot, UnitArtifact, Violation, Workspace,
        ARTIFACT_VERSION,
    };
    // A couple of value-level touches so the imports are demonstrably live.
    let _ = fnv1a64(b"api");
    let _ = Engine::with_options(AnalysisOptions::base());
}
