//! End-to-end oracle tests of the dynamic flow-witness pipeline over seeded
//! `vhdl1-corpus` designs.
//!
//! Three properties, mirroring the cross-check artifacts of
//! `vhdl1_infoflow::dynflow`:
//!
//! - **Soundness** (differential): every dynamically witnessed dependence is
//!   statically predicted — the merged flow graph contains a path from the
//!   perturbed source to the diverged resource.  A witnessed dependence the
//!   static analysis misses would be a machine-checked counterexample to the
//!   paper's soundness claim.
//! - **Precision** (regression): deliberately leaky corpus variants witness
//!   their ground-truth violation edges within a bounded stimulus budget,
//!   and no variant ever witnesses a secret-to-public pair its generator
//!   declares flow-free.
//! - **Determinism**: `Analysis::dynamic_flows` is memoized per
//!   `(rounds, seed)` — repeated queries reuse the same computation — and
//!   independent engines reproduce identical reports.

use vhdl1_corpus::{generate, CorpusSpec};
use vhdl1_infoflow::{Engine, Node};

/// Soundness: across three corpus seeds and every non-hostile family, each
/// witnessed dynamic dependence must be a static merged-graph path.  Checked
/// twice — through the report's own `soundness_violations` field, and
/// independently by reachability over the merged graph (so a bug in the
/// cross-check itself cannot hide one).
#[test]
fn witnessed_flows_are_statically_predicted_across_seeds() {
    for seed in [7, 11, 23] {
        let engine = Engine::default();
        for d in generate(&CorpusSpec::new(seed, 8)) {
            let design = vhdl1_syntax::frontend(&d.source).expect("corpus designs elaborate");
            let analysis = engine.analyze(&design);
            let report = analysis
                .dynamic_flows(8, 1)
                .unwrap_or_else(|e| panic!("{}: dynamic_flows failed: {e}", d.name));
            assert!(
                report.soundness_violations.is_empty(),
                "{}: witnessed flows escaped the static prediction: {:?}",
                d.name,
                report.soundness_violations
            );
            let merged = analysis.merged_flow_graph().expect("merged graph");
            for (src, sink) in &report.witnessed {
                let reach = merged.reachable_from(&Node::res(src.clone()));
                assert!(
                    reach.contains(&Node::res(sink.clone())),
                    "{}: witnessed {src} -> {sink} has no static path",
                    d.name
                );
            }
        }
    }
}

/// Precision: every leaky variant's ground-truth violation edges are
/// dynamically witnessed within 32 rounds, and no design — leaky or clean —
/// witnesses a secret-to-public pair its generator declares flow-free.
#[test]
fn leaky_variants_witness_their_ground_truth_within_bounded_rounds() {
    let engine = Engine::default();
    let mut leaky_seen = 0;
    for d in generate(&CorpusSpec::new(7, 8)) {
        let design = vhdl1_syntax::frontend(&d.source).expect("corpus designs elaborate");
        let analysis = engine.analyze(&design);
        let report = analysis
            .dynamic_flows(32, 1)
            .unwrap_or_else(|e| panic!("{}: dynamic_flows failed: {e}", d.name));
        if d.leaky {
            leaky_seen += 1;
            for edge in &d.expected_violations {
                assert!(
                    report.witnessed.contains(edge),
                    "{}: expected violation {edge:?} not witnessed in 32 rounds; \
                     witnessed: {:?}",
                    d.name,
                    report.witnessed
                );
            }
        }
        for pair in d.expected_no_flows() {
            assert!(
                !report.witnessed.contains(&pair),
                "{}: {pair:?} is declared flow-free but was witnessed",
                d.name
            );
        }
    }
    assert!(leaky_seen >= 4, "corpus prefix must cover leaky variants");
}

/// Determinism: the dynflow query computes once per `(rounds, seed)` key,
/// distinct keys are independent computations, and a fresh engine reproduces
/// byte-identical reports.
#[test]
fn dynamic_flows_is_memoized_per_key_and_reproducible() {
    let d = &generate(&CorpusSpec::new(7, 4))[2]; // an sbox_core design
    let design = vhdl1_syntax::frontend(&d.source).expect("corpus designs elaborate");

    let engine = Engine::default();
    let analysis = engine.analyze(&design);
    let first = analysis.dynamic_flows(8, 1).expect("dynflow");
    let again = analysis.dynamic_flows(8, 1).expect("dynflow");
    assert!(
        std::sync::Arc::ptr_eq(&first, &again),
        "same (rounds, seed) must share one memoized report"
    );
    assert_eq!(engine.stats().dynamic_flows, 1, "one key, one computation");

    let other_seed = analysis.dynamic_flows(8, 2).expect("dynflow");
    assert_eq!(engine.stats().dynamic_flows, 2, "new key, new computation");
    assert_eq!(other_seed.rounds, 8);
    assert_eq!(other_seed.seed, 2);

    // A fresh engine reproduces the exact report (value equality, not
    // pointer identity): the sweep depends only on (design, rounds, seed).
    let fresh = Engine::default();
    let reproduced = fresh.analyze(&design).dynamic_flows(8, 1).expect("dynflow");
    assert_eq!(*first, *reproduced);
}
