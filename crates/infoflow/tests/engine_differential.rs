//! Differential property tests of the demand-driven engine against the
//! eager one-shot pipeline, over seeded `vhdl1-corpus` designs.
//!
//! For every generated design, every lazy query result must be identical to
//! the corresponding eager `analyze_with` artifact — in *both* demand
//! orders (graph-first, which pulls the whole pipeline in one go, and
//! rd-first, which walks the stages upstream-to-downstream) — and the
//! engine's memo table must be deterministic: re-analysing the same corpus
//! through a warm engine yields byte-for-byte the same graphs while
//! performing zero additional stage computations, mirroring the
//! worker-count-independence golden tests of `vhdl1c`.

use vhdl1_corpus::{generate, CorpusSpec};
use vhdl1_infoflow::{analyze_with, AnalysisOptions, Engine, EngineStats};

fn corpus_sources(seed: u64, count: usize) -> Vec<(String, String)> {
    generate(&CorpusSpec::new(seed, count))
        .into_iter()
        .map(|d| (d.name, d.source))
        .collect()
}

fn check_against_eager(options: AnalysisOptions, seed: u64, count: usize) {
    let sources = corpus_sources(seed, count);
    let engine = Engine::with_options(options);
    for (name, src) in &sources {
        let design = vhdl1_syntax::frontend(src).expect("corpus designs elaborate");
        let eager = analyze_with(&design, &options);

        // Graph-first order: the downstream query pulls in every upstream
        // stage transparently.
        let graph_first = engine.analyze(&design);
        assert_eq!(
            graph_first.flow_graph().unwrap(),
            &eager.flow_graph(),
            "{name}"
        );
        assert_eq!(
            graph_first.kemmerer_graph().unwrap(),
            &eager.kemmerer_flow_graph(),
            "{name}"
        );
        assert_eq!(graph_first.rd().unwrap(), &eager.rd, "{name}");
        assert_eq!(graph_first.local(), &eager.local, "{name}");
        assert_eq!(
            graph_first.specialized().unwrap(),
            &eager.specialized,
            "{name}"
        );
        assert_eq!(graph_first.global().unwrap(), &eager.global, "{name}");
        assert_eq!(
            graph_first.improved().unwrap(),
            eager.improved.as_ref(),
            "{name}"
        );

        // Rd-first order: stages demanded upstream-to-downstream.
        let rd_first = engine.analyze(&design);
        assert_eq!(rd_first.rd().unwrap(), &eager.rd, "{name}");
        assert_eq!(rd_first.local(), &eager.local, "{name}");
        assert_eq!(
            rd_first.specialized().unwrap(),
            &eager.specialized,
            "{name}"
        );
        assert_eq!(rd_first.global().unwrap(), &eager.global, "{name}");
        assert_eq!(
            rd_first.improved().unwrap(),
            eager.improved.as_ref(),
            "{name}"
        );
        assert_eq!(
            rd_first.base_flow_graph().unwrap(),
            &eager.base_flow_graph(),
            "{name}"
        );
        assert_eq!(
            rd_first.flow_graph().unwrap(),
            &eager.flow_graph(),
            "{name}"
        );

        // And the materialised owned result is the eager result.
        assert_eq!(rd_first.into_result(), eager, "{name}");
    }
}

#[test]
fn lazy_queries_match_eager_pipeline_in_both_orders() {
    check_against_eager(AnalysisOptions::default(), 7, 16);
}

#[test]
fn lazy_queries_match_eager_pipeline_under_base_options() {
    check_against_eager(AnalysisOptions::base(), 11, 12);
}

#[test]
fn warm_engine_reproduces_cold_results_without_recomputation() {
    let sources = corpus_sources(13, 12);
    let engine = Engine::default();

    // Cold pass: analyse every source through the content-hash cache.
    let cold_graphs: Vec<String> = sources
        .iter()
        .map(|(name, src)| {
            let a = engine.analyze_source(src).expect("corpus source analyses");
            a.flow_graph().unwrap().to_dot(name)
        })
        .collect();
    let cold = engine.stats();
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_misses as usize, sources.len());
    assert_eq!(cold.frontend as usize, sources.len());

    // Warm pass: byte-identical graphs, zero new stage computations.
    let warm_graphs: Vec<String> = sources
        .iter()
        .map(|(name, src)| {
            let a = engine.analyze_source(src).expect("cached source analyses");
            a.flow_graph().unwrap().to_dot(name)
        })
        .collect();
    assert_eq!(cold_graphs, warm_graphs);
    let warm = engine.stats();
    assert_eq!(warm.cache_hits as usize, sources.len());
    assert_eq!(
        EngineStats {
            cache_hits: cold.cache_hits,
            ..warm
        },
        cold,
        "a warm pass must perform no frontend or stage work"
    );

    // Determinism across engines: a fresh engine reproduces the same bytes.
    let other = Engine::default();
    for ((name, src), cold_dot) in sources.iter().zip(&cold_graphs) {
        let a = other.analyze_source(src).expect("corpus source analyses");
        assert_eq!(&a.flow_graph().unwrap().to_dot(name), cold_dot);
    }
}
