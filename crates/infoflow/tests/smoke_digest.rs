//! Pinned smoke-digest regression tests.
//!
//! `Analysis::smoke` folds every delta cycle's changed-signal values — not
//! just the final quiescent state — into `SmokeReport::state_digest`, so the
//! digest witnesses the whole settling *trajectory*.  These constants pin
//! the digests of two seed-7 corpus designs: any change to simulator
//! scheduling, driver resolution, value formatting, or the digest recipe
//! shows up here as a concrete before/after, instead of silently shifting
//! what the smoke gate certifies.
//!
//! When a change to the simulator or digest recipe is *intentional*, rerun
//! the pipeline and update the constants alongside the change.

use vhdl1_corpus::{generate, CorpusSpec};
use vhdl1_infoflow::Engine;

fn smoke_of(name: &str) -> (u64, u64) {
    let corpus = generate(&CorpusSpec::new(7, 8));
    let d = corpus
        .iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("{name} not in the seed-7 corpus prefix"));
    let design = vhdl1_syntax::frontend(&d.source).expect("corpus designs elaborate");
    let engine = Engine::default();
    let smoke = engine.analyze(&design).smoke(10_000).expect("smoke run");
    (smoke.deltas, smoke.state_digest)
}

#[test]
fn fsm_trajectory_digest_is_pinned() {
    assert_eq!(smoke_of("fsm_s7_001"), (2, 0xb24c_51c2_abcf_94b3));
}

#[test]
fn cross_flow_trajectory_digest_is_pinned() {
    assert_eq!(smoke_of("cross_flow_s7_003"), (2, 0xb9fa_4c8a_c5ac_112e));
}
