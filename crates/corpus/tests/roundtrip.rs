//! The pretty-printer round-trip property over real workloads:
//! `parse(pretty(parse(src)))` equals `parse(src)` for every generated
//! corpus design and for the AES-128 sources of the paper's evaluation.

use aes_vhdl::vhdl::{
    add_round_key_vhdl, aes128_vhdl, aes_round_vhdl, mix_columns_vhdl, shift_rows_vhdl,
    sub_bytes_vhdl,
};
use vhdl1_corpus::{generate, CorpusSpec};
use vhdl1_syntax::{parse, pretty_program};

fn assert_roundtrip(name: &str, src: &str) {
    let first = parse(src).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
    let printed = pretty_program(&first);
    let second =
        parse(&printed).unwrap_or_else(|e| panic!("{name}: pretty output does not parse: {e}"));
    assert_eq!(first, second, "{name}: AST changed across pretty-printing");
}

#[test]
fn corpus_designs_roundtrip() {
    for seed in [0, 7, 42] {
        for d in generate(&CorpusSpec::new(seed, 16)) {
            assert_roundtrip(&d.name, &d.source);
        }
    }
}

#[test]
fn corpus_sources_are_pretty_fixed_points() {
    // Generated sources are produced by the pretty printer, so printing the
    // reparsed program must reproduce them byte for byte.
    for d in generate(&CorpusSpec::new(7, 8)) {
        let printed = pretty_program(&parse(&d.source).unwrap());
        assert_eq!(printed, d.source, "{} drifted", d.name);
    }
}

#[test]
fn aes_component_sources_roundtrip() {
    assert_roundtrip("shift_rows", &shift_rows_vhdl());
    assert_roundtrip("add_round_key", &add_round_key_vhdl(16));
    assert_roundtrip("sub_bytes", &sub_bytes_vhdl(1));
    assert_roundtrip("mix_columns", &mix_columns_vhdl());
}

#[test]
fn aes_round_and_full_sources_roundtrip() {
    assert_roundtrip("aes_round", &aes_round_vhdl());
    assert_roundtrip("aes128", &aes128_vhdl());
}

#[test]
fn corpus_designs_simulate_to_quiescence() {
    // The generator's simulation-safety contract, checked through the real
    // simulator (the CLI's `--smoke` path uses the same entry points).
    for d in generate(&CorpusSpec::new(21, 8)) {
        let design = vhdl1_syntax::frontend(&d.source).unwrap();
        let mut sim = vhdl1_sim::Simulator::new(&design)
            .unwrap_or_else(|e| panic!("{}: simulator rejects the design: {e}", d.name));
        sim.run_until_quiescent(10_000)
            .unwrap_or_else(|e| panic!("{}: does not reach quiescence: {e}", d.name));
    }
}
