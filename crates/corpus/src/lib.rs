//! # `vhdl1-corpus` — seeded generator of VHDL1 design corpora
//!
//! The reproduced paper evaluates its Information Flow analysis on a single
//! workload (the AES-128 case study).  This crate turns the analyzer into a
//! bulk pipeline component: it generates *corpora* — deterministic, seeded
//! collections of well-typed VHDL1 designs drawn from parameterized families
//! (combinational pipelines, FSMs with secret-dependent branching,
//! S-box/accumulator crypto cores, multi-process cross-flow designs) — each
//! with embedded information-flow **ground truth**.  Deliberately leaky
//! variants know which flow edges a policy audit must flag; clean variants
//! know the audit must stay silent.  The `vhdl1-cli` batch driver consumes
//! these corpora, and CI uses the ground truth as an end-to-end oracle.
//!
//! Sources are emitted through [`vhdl1_syntax::pretty`], so every generated
//! design exercises the real lexer and parser (no AST side channel), and the
//! same `(seed, count)` always produces byte-identical output.
//!
//! ```
//! use vhdl1_corpus::{generate, CorpusSpec};
//!
//! let corpus = generate(&CorpusSpec::new(7, 8));
//! assert_eq!(corpus.len(), 8);
//! // Generated sources round-trip through the real front end.
//! for design in &corpus {
//!     vhdl1_syntax::frontend(&design.source).unwrap();
//! }
//! // The second family cycle is leaky: those designs carry their expected
//! // violation edges as ground truth.
//! assert!(corpus.iter().any(|d| !d.expected_violations.is_empty()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edit;
mod families;
pub mod manifest;
pub mod rng;

pub use edit::{edit_stream, EditRevision, EditStream};
pub use manifest::{parse_manifest, write_manifest};
pub use rng::Rng;

use std::fmt;

/// The parameterized design families the generator can draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// Combinational mixing pipeline with a key folded into the data path.
    Pipeline,
    /// State machine whose transitions branch on a (possibly secret) word —
    /// the implicit-flow stress family.
    Fsm,
    /// Rotating accumulator with a small S-box style substitution chain.
    SboxCore,
    /// Multi-process producer/mixer/sink design with signal cross-flow.
    CrossFlow,
    /// Adversarial stress designs: deeply nested expressions, pathological
    /// sensitivity fan-in, fixpoint-stressing signal chains, oversized
    /// literals, and truncated/garbage byte streams.  Opt-in only — not part
    /// of [`Family::ALL`] — and built to exhaust resource budgets or trip
    /// the front end, never to crash the pipeline.
    Hostile,
}

impl Family {
    /// All *well-behaved* families, in the fixed order the generator cycles
    /// through.  [`Family::Hostile`] is deliberately excluded: adversarial
    /// designs are generated only when asked for by name.
    pub const ALL: [Family; 4] = [
        Family::Pipeline,
        Family::Fsm,
        Family::SboxCore,
        Family::CrossFlow,
    ];

    /// The family's stable lower-case name (used in manifests and reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            Family::Pipeline => "pipeline",
            Family::Fsm => "fsm",
            Family::SboxCore => "sbox_core",
            Family::CrossFlow => "cross_flow",
            Family::Hostile => "hostile",
        }
    }

    /// Parses a family from its [`Family::as_str`] name.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Family> {
        if s == Family::Hostile.as_str() {
            return Some(Family::Hostile);
        }
        Family::ALL.into_iter().find(|f| f.as_str() == s)
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// What to generate: a seed, a design count, and the families to cycle
/// through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Root seed; the same seed always yields a byte-identical corpus.
    pub seed: u64,
    /// Number of designs to generate.
    pub count: usize,
    /// Families to cycle through (round-robin).  Defaults to [`Family::ALL`].
    pub families: Vec<Family>,
}

impl CorpusSpec {
    /// A spec over all families.
    pub fn new(seed: u64, count: usize) -> CorpusSpec {
        CorpusSpec {
            seed,
            count,
            families: Family::ALL.to_vec(),
        }
    }

    /// Restricts the spec to the given families.
    pub fn with_families(mut self, families: Vec<Family>) -> CorpusSpec {
        assert!(
            !families.is_empty(),
            "corpus spec needs at least one family"
        );
        self.families = families;
        self
    }
}

/// One generated design: concrete source text plus its flow ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedDesign {
    /// Unique design name (also the architecture name of the source).
    pub name: String,
    /// The family the design was drawn from.
    pub family: Family,
    /// Whether this is a deliberately leaky variant.
    pub leaky: bool,
    /// The VHDL1 source text (pretty-printed, re-parseable).
    pub source: String,
    /// Input ports carrying secrets (security level 1 in the derived policy).
    pub secret_inputs: Vec<String>,
    /// Output ports observable by the environment (security level 0).
    pub public_outputs: Vec<String>,
    /// Intended secret-to-public flows (declassified by the derived policy,
    /// e.g. a key reaching the ciphertext through the cipher itself).
    pub allowed_flows: Vec<(String, String)>,
    /// Ground truth: flow edges a policy audit must report.  Empty exactly
    /// for clean variants.
    pub expected_violations: Vec<(String, String)>,
    /// Whether the *front end* is expected to reject this design (truncated
    /// or garbage sources from the hostile family).  A structured error is
    /// the correct outcome for these; a successful analysis is a wrong
    /// answer, and a panic is always a bug.
    pub expect_error: bool,
}

impl GeneratedDesign {
    /// Every secret-to-public flow the design actually implements: the
    /// declassified [`GeneratedDesign::allowed_flows`] plus (for leaky
    /// variants) the [`GeneratedDesign::expected_violations`].  These are the
    /// pairs a dynamic flow-witness oracle should be able to observe given
    /// enough stimulus; each pair is `(secret input, public output)`.
    pub fn expected_dynamic_flows(&self) -> Vec<(String, String)> {
        let mut flows = self.allowed_flows.clone();
        for edge in &self.expected_violations {
            if !flows.contains(edge) {
                flows.push(edge.clone());
            }
        }
        flows
    }

    /// Every `(secret input, public output)` pair the design does *not*
    /// implement: the complement of [`GeneratedDesign::expected_dynamic_flows`]
    /// over the full secret × public grid.  A dynamic oracle must never
    /// witness one of these — doing so means the generator's ground truth and
    /// the design source disagree.
    pub fn expected_no_flows(&self) -> Vec<(String, String)> {
        let flows = self.expected_dynamic_flows();
        let mut out = Vec::new();
        for secret in &self.secret_inputs {
            for sink in &self.public_outputs {
                let pair = (secret.clone(), sink.clone());
                if !flows.contains(&pair) {
                    out.push(pair);
                }
            }
        }
        out
    }
}

/// Generates the corpus described by `spec`.
///
/// Deterministic: each design draws from an independent child generator
/// derived from `(spec.seed, index)`, so a corpus is byte-identical across
/// runs and prefixes agree — `generate(seed, 50)[..25]` equals
/// `generate(seed, 25)`.  Within each family, even indices are clean and odd
/// indices are leaky, so every prefix of at least two designs per family
/// exercises both kinds.
///
/// # Examples
///
/// ```
/// use vhdl1_corpus::{generate, CorpusSpec, Family};
///
/// let spec = CorpusSpec::new(7, 8).with_families(vec![Family::Fsm]);
/// let corpus = generate(&spec);
/// assert!(corpus.iter().all(|d| d.family == Family::Fsm));
/// assert_eq!(corpus.iter().filter(|d| d.leaky).count(), 4);
/// ```
pub fn generate(spec: &CorpusSpec) -> Vec<GeneratedDesign> {
    assert!(
        !spec.families.is_empty(),
        "corpus spec needs at least one family"
    );
    let root = Rng::new(spec.seed);
    (0..spec.count)
        .map(|i| {
            let family = spec.families[i % spec.families.len()];
            // Odd occurrences of each family are leaky, even ones clean.
            let occurrence = i / spec.families.len();
            let leaky = occurrence % 2 == 1;
            let mut rng = root.derive(i as u64);
            let name = format!("{}_s{}_{i:03}", family.as_str(), spec.seed);
            generate_one(family, &name, &mut rng, leaky)
        })
        .collect()
}

/// Generates a single design of the given family.
pub fn generate_one(family: Family, name: &str, rng: &mut Rng, leaky: bool) -> GeneratedDesign {
    match family {
        Family::Pipeline => families::pipeline(name, rng, leaky),
        Family::Fsm => families::fsm(name, rng, leaky),
        Family::SboxCore => families::sbox_core(name, rng, leaky),
        Family::CrossFlow => families::cross_flow(name, rng, leaky),
        Family::Hostile => families::hostile(name, rng, leaky),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = generate(&CorpusSpec::new(7, 12));
        let b = generate(&CorpusSpec::new(7, 12));
        assert_eq!(a, b);
        let c = generate(&CorpusSpec::new(8, 12));
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn prefixes_agree() {
        let long = generate(&CorpusSpec::new(3, 20));
        let short = generate(&CorpusSpec::new(3, 5));
        assert_eq!(&long[..5], &short[..]);
    }

    #[test]
    fn families_cycle_and_leaky_alternates_per_family() {
        let corpus = generate(&CorpusSpec::new(1, 16));
        for (i, d) in corpus.iter().enumerate() {
            assert_eq!(d.family, Family::ALL[i % 4]);
            assert_eq!(d.leaky, (i / 4) % 2 == 1);
            assert_eq!(d.leaky, !d.expected_violations.is_empty());
        }
    }

    #[test]
    fn every_design_elaborates() {
        for d in generate(&CorpusSpec::new(99, 16)) {
            let design = vhdl1_syntax::frontend(&d.source)
                .unwrap_or_else(|e| panic!("{} does not elaborate: {e}\n{}", d.name, d.source));
            assert_eq!(design.name, d.name);
            for secret in &d.secret_inputs {
                assert!(
                    design.input_signals().contains(secret),
                    "{}: secret `{secret}` is not an input",
                    d.name
                );
            }
            for out in &d.public_outputs {
                assert!(
                    design.output_signals().contains(out),
                    "{}: public sink `{out}` is not an output",
                    d.name
                );
            }
        }
    }

    #[test]
    fn hostile_is_opt_in_only() {
        assert!(
            !Family::ALL.contains(&Family::Hostile),
            "hostile designs must never appear in a default corpus"
        );
        assert_eq!(Family::from_str("hostile"), Some(Family::Hostile));
        let spec = CorpusSpec::new(11, 10).with_families(vec![Family::Hostile]);
        assert_eq!(
            generate(&spec),
            generate(&spec),
            "hostile must be deterministic"
        );
    }

    #[test]
    fn hostile_designs_parse_or_expect_error() {
        let mut saw_expect_error = false;
        for seed in [3, 11, 42] {
            let spec = CorpusSpec::new(seed, 10).with_families(vec![Family::Hostile]);
            for d in generate(&spec) {
                assert_eq!(d.family, Family::Hostile);
                assert_eq!(d.leaky, !d.expected_violations.is_empty());
                match vhdl1_syntax::frontend(&d.source) {
                    Ok(design) => {
                        assert!(
                            !d.expect_error,
                            "{}: expected a front-end rejection but it elaborated",
                            d.name
                        );
                        assert_eq!(design.name, d.name);
                    }
                    Err(e) => {
                        assert!(
                            d.expect_error,
                            "{}: unexpected front-end error: {e}",
                            d.name
                        );
                        assert!(!d.leaky, "garbage designs carry no flow ground truth");
                        saw_expect_error = true;
                    }
                }
            }
        }
        assert!(
            saw_expect_error,
            "no truncated/garbage hostile design generated"
        );
    }

    #[test]
    fn expected_flow_partition_covers_the_secret_public_grid() {
        for d in generate(&CorpusSpec::new(7, 16)) {
            let flows = d.expected_dynamic_flows();
            let no_flows = d.expected_no_flows();
            // Violations are always expected dynamic flows; allowed flows too.
            for edge in d.expected_violations.iter().chain(&d.allowed_flows) {
                assert!(flows.contains(edge), "{}: {edge:?} missing", d.name);
            }
            // The two sets partition the secret × public grid (allowed flows
            // may extend beyond it, e.g. from non-secret inputs).
            for secret in &d.secret_inputs {
                for sink in &d.public_outputs {
                    let pair = (secret.clone(), sink.clone());
                    assert_ne!(
                        flows.contains(&pair),
                        no_flows.contains(&pair),
                        "{}: {pair:?} must be exactly one of flow / no-flow",
                        d.name
                    );
                }
            }
            for pair in &no_flows {
                assert!(!flows.contains(pair), "{}: {pair:?} in both sets", d.name);
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let corpus = generate(&CorpusSpec::new(5, 40));
        let names: std::collections::BTreeSet<_> = corpus.iter().map(|d| &d.name).collect();
        assert_eq!(names.len(), corpus.len());
    }
}
