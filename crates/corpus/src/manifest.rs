//! The corpus stream format: how generated designs (and their ground truth)
//! travel between `vhdl1c gen` and `vhdl1c analyze`.
//!
//! A manifest is a concatenation of design chunks.  Each chunk starts with
//! metadata lines prefixed `--!` — a VHDL comment, so every chunk is also a
//! valid VHDL1 compilation unit on its own — followed by the pretty-printed
//! source:
//!
//! ```text
//! --! design name=pipeline_s7_000 family=pipeline leaky=0
//! --! secret key
//! --! public data_out tap
//! --! allow key->data_out
//! --! expect key->tap
//! entity pipeline_s7_000_e is
//! ...
//! ```
//!
//! `secret`/`public`/`allow`/`expect` lines are space-separated lists and
//! may be absent when empty.  The format is line-based and append-only
//! friendly, which is what lets `vhdl1c gen | vhdl1c analyze` stream.

use crate::{Family, GeneratedDesign};
use std::fmt::Write as _;

/// Serialises a corpus into the manifest stream format.
pub fn write_manifest(designs: &[GeneratedDesign]) -> String {
    let mut out = String::new();
    for d in designs {
        let _ = writeln!(
            out,
            "--! design name={} family={} leaky={}{}",
            d.name,
            d.family.as_str(),
            u8::from(d.leaky),
            if d.expect_error {
                " expect_error=1"
            } else {
                ""
            }
        );
        if !d.secret_inputs.is_empty() {
            let _ = writeln!(out, "--! secret {}", d.secret_inputs.join(" "));
        }
        if !d.public_outputs.is_empty() {
            let _ = writeln!(out, "--! public {}", d.public_outputs.join(" "));
        }
        for (from, to) in &d.allowed_flows {
            let _ = writeln!(out, "--! allow {from}->{to}");
        }
        for (from, to) in &d.expected_violations {
            let _ = writeln!(out, "--! expect {from}->{to}");
        }
        out.push_str(&d.source);
        if !d.source.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

/// Parses a manifest stream back into designs.
///
/// # Errors
///
/// Returns a description of the first malformed metadata line.  Source text
/// is *not* parsed here — the analyzer does that — but every chunk must be
/// introduced by a `--! design` line.
pub fn parse_manifest(text: &str) -> Result<Vec<GeneratedDesign>, String> {
    let mut designs: Vec<GeneratedDesign> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if let Some(meta) = line.trim_start().strip_prefix("--!") {
            let meta = meta.trim();
            let (kind, rest) = meta.split_once(' ').unwrap_or((meta, ""));
            match kind {
                "design" => designs.push(parse_design_line(rest, lineno)?),
                "secret" | "public" | "allow" | "expect" => {
                    let d = designs.last_mut().ok_or_else(|| {
                        format!("line {lineno}: `--! {kind}` before `--! design`")
                    })?;
                    match kind {
                        "secret" => d.secret_inputs.extend(words(rest)),
                        "public" => d.public_outputs.extend(words(rest)),
                        "allow" => d.allowed_flows.push(parse_edge(rest, lineno)?),
                        _ => d.expected_violations.push(parse_edge(rest, lineno)?),
                    }
                }
                other => return Err(format!("line {lineno}: unknown metadata `--! {other}`")),
            }
        } else {
            let d = designs.last_mut().ok_or_else(|| {
                format!("line {lineno}: source text before any `--! design` header")
            })?;
            d.source.push_str(line);
            d.source.push('\n');
        }
    }
    Ok(designs)
}

fn words(s: &str) -> impl Iterator<Item = String> + '_ {
    s.split_whitespace().map(str::to_string)
}

fn parse_edge(s: &str, lineno: usize) -> Result<(String, String), String> {
    let (from, to) = s
        .trim()
        .split_once("->")
        .ok_or_else(|| format!("line {lineno}: expected `from->to`, got `{s}`"))?;
    Ok((from.trim().to_string(), to.trim().to_string()))
}

fn parse_design_line(rest: &str, lineno: usize) -> Result<GeneratedDesign, String> {
    let mut name = None;
    let mut family = None;
    let mut leaky = false;
    let mut expect_error = false;
    for field in rest.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key=value`, got `{field}`"))?;
        match key {
            "name" => name = Some(value.to_string()),
            "family" => {
                family = Some(
                    Family::from_str(value)
                        .ok_or_else(|| format!("line {lineno}: unknown family `{value}`"))?,
                )
            }
            "leaky" => leaky = value == "1",
            "expect_error" => expect_error = value == "1",
            other => return Err(format!("line {lineno}: unknown design field `{other}`")),
        }
    }
    Ok(GeneratedDesign {
        name: name.ok_or_else(|| format!("line {lineno}: design header without name"))?,
        family: family.ok_or_else(|| format!("line {lineno}: design header without family"))?,
        leaky,
        source: String::new(),
        secret_inputs: vec![],
        public_outputs: vec![],
        allowed_flows: vec![],
        expected_violations: vec![],
        expect_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, CorpusSpec};

    #[test]
    fn manifest_roundtrips() {
        let corpus = generate(&CorpusSpec::new(7, 8));
        let text = write_manifest(&corpus);
        let back = parse_manifest(&text).unwrap();
        assert_eq!(corpus, back);
    }

    #[test]
    fn manifest_chunks_are_valid_vhdl() {
        // The metadata lines are comments, so the whole stream lexes/parses
        // as a sequence of design units.
        let corpus = generate(&CorpusSpec::new(7, 4));
        let text = write_manifest(&corpus);
        let program = vhdl1_syntax::parse(&text).unwrap();
        assert_eq!(program.units.len(), 2 * corpus.len());
    }

    #[test]
    fn hostile_manifest_roundtrips() {
        use crate::Family;
        let spec = CorpusSpec::new(42, 10).with_families(vec![Family::Hostile]);
        let corpus = generate(&spec);
        let text = write_manifest(&corpus);
        let back = parse_manifest(&text).unwrap();
        assert_eq!(corpus, back);
        assert!(
            back.iter().any(|d| d.expect_error),
            "expect_error must survive the roundtrip"
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_manifest("--! design").is_err());
        assert!(parse_manifest("--! design name=x family=fsm\n--! allow broken").is_err());
        assert!(parse_manifest("--! frobnicate x").is_err());
        assert!(parse_manifest("entity e is end e;").is_err());
        assert!(parse_manifest("--! secret key").is_err());
        // Both identity fields of the design header are mandatory.
        assert!(parse_manifest("--! design family=fsm").is_err());
        assert!(parse_manifest("--! design name=x").is_err());
        assert!(parse_manifest("--! design name=x family=unknown_family").is_err());
    }

    #[test]
    fn empty_manifest_is_empty() {
        assert_eq!(parse_manifest("").unwrap(), vec![]);
    }
}
