//! Deterministic pseudo-random generator for corpus generation.
//!
//! SplitMix64: tiny, fast, full-period, and — crucially for the corpus
//! contract — stable across platforms and releases.  The same seed always
//! produces byte-identical corpora, which the batch driver's tests and the
//! CI smoke job rely on.

/// A deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Derives an independent child generator for subtask `tag`.
    ///
    /// Used to give every design in a corpus its own stream, so inserting or
    /// removing one family never shifts the randomness of the others.
    pub fn derive(&self, tag: u64) -> Rng {
        let mut child = Rng {
            state: self.state ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        };
        child.next_u64(); // decorrelate from the parent state
        child
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "Rng::below(0)");
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniform choice from a slice.
    pub fn pick<'x, T>(&mut self, xs: &'x [T]) -> &'x T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_are_independent_of_sibling_draws() {
        let root = Rng::new(42);
        let mut child_a = root.derive(3);
        // Drawing from another child must not affect child 3's stream.
        let mut other = root.derive(9);
        other.next_u64();
        let mut child_a2 = root.derive(3);
        assert_eq!(child_a.next_u64(), child_a2.next_u64());
    }

    #[test]
    fn bounds_are_respected() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
            let v = rng.range(3, 5);
            assert!((3..=5).contains(&v));
        }
        assert!(["a", "b"].contains(rng.pick(&["a", "b"])));
    }
}
