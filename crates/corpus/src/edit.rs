//! Edit-stream generator: a base multi-process design plus a deterministic
//! sequence of single-process mutations.
//!
//! The incremental re-analysis workload: every revision differs from its
//! predecessor in exactly one process body (a binary operator swap), which
//! preserves the design's label layout, signal table and process count — so
//! the per-process content fingerprints of every *untouched* process are
//! unchanged across the edit.  Replaying the stream through
//! `vhdl1_infoflow::Workspace::update` must therefore recompute exactly one
//! process per revision and reuse the rest, while producing reports
//! byte-identical to analyzing each revision from scratch.
//!
//! The design shape is a mixing chain: process `p0` combines the first
//! input with the shared key into `t0`, each middle process `pi` folds the
//! next input into `t(i-1)`, and the last process drives the sole output —
//! so every process is live (reachable from the output) and an operator
//! swap anywhere genuinely changes the dataflow solution of the touched
//! process.

use crate::rng::Rng;

/// The binary operators the mutation cycle swaps between.  All three parse
/// to a single elementary block, so swapping one for another never changes
/// the label layout.
const OPS: [&str; 3] = ["and", "or", "xor"];

/// One revision of an edit stream: the full source after the edit plus
/// which process the edit touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditRevision {
    /// Full source text of this revision.
    pub source: String,
    /// Index of the (single) process whose body changed relative to the
    /// previous revision.
    pub touched_process: usize,
}

/// A base design plus a deterministic sequence of single-process edits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditStream {
    /// Design (architecture) name, shared by every revision.
    pub name: String,
    /// Number of processes in the design (stable across revisions).
    pub processes: usize,
    /// The unedited base source.
    pub base: String,
    /// Successive revisions; revision `j` is revision `j-1` (or the base,
    /// for `j = 0`) with exactly one process body changed.
    pub revisions: Vec<EditRevision>,
}

impl EditStream {
    /// The base source followed by every revision source, in replay order.
    pub fn sources(&self) -> Vec<&str> {
        std::iter::once(self.base.as_str())
            .chain(self.revisions.iter().map(|r| r.source.as_str()))
            .collect()
    }
}

/// Generates a deterministic edit stream: a `processes`-process design and
/// `edits` cumulative single-process mutations.
///
/// Same `(seed, processes, edits)` always yields byte-identical sources,
/// and every revision elaborates through the real front end.
///
/// Every edit moves the touched process to an operator it has never held
/// in this stream, so on a cold engine each revision recomputes exactly
/// one process and reuses the rest — no edit ever degenerates into a
/// unit-cache or whole-design-cache hit.
///
/// # Panics
///
/// Panics when `processes < 2` (the chain needs a head and a sink) or when
/// `edits` exceeds the fresh operator assignments the pool can express
/// (`processes * 2` for the three-operator pool).
///
/// # Examples
///
/// ```
/// use vhdl1_corpus::edit_stream;
///
/// let stream = edit_stream(7, 8, 3);
/// assert_eq!(stream.revisions.len(), 3);
/// for src in stream.sources() {
///     vhdl1_syntax::frontend(src).unwrap();
/// }
/// // Each revision touches exactly one process: all lines equal but one.
/// let base: Vec<&str> = stream.base.lines().collect();
/// let first: Vec<&str> = stream.revisions[0].source.lines().collect();
/// assert_eq!(base.len(), first.len());
/// assert_eq!(base.iter().zip(&first).filter(|(a, b)| a != b).count(), 1);
/// ```
pub fn edit_stream(seed: u64, processes: usize, edits: usize) -> EditStream {
    assert!(processes >= 2, "edit stream needs at least two processes");
    assert!(
        edits <= processes * (OPS.len() - 1),
        "edit stream of {edits} edits exhausts the {} fresh operator \
         assignments of a {processes}-process design",
        processes * (OPS.len() - 1)
    );
    let name = format!("edit_s{seed}_p{processes}");
    let mut rng = Rng::new(seed).derive(processes as u64);
    // One operator per process; mutations rotate the touched process's
    // operator to a different member of `OPS`.
    let mut ops: Vec<usize> = (0..processes)
        .map(|_| rng.below(OPS.len() as u64) as usize)
        .collect();
    let base = render(&name, &ops);
    // Every edit gives the touched process an operator it has *never*
    // held in this stream: operator toggles that revisit an earlier state
    // would turn the touched process into a unit-cache hit (and a
    // full-vector round trip into a whole-design hit), blurring the
    // recompute-exactly-one-process contract the replay tests assert.
    let mut used: Vec<std::collections::BTreeSet<usize>> =
        ops.iter().map(|&op| [op].into_iter().collect()).collect();
    let mut revisions = Vec::with_capacity(edits);
    for _ in 0..edits {
        let (touched, next_op) = loop {
            let touched = rng.below(processes as u64) as usize;
            let step = 1 + rng.below(OPS.len() as u64 - 1) as usize;
            let candidate = (ops[touched] + step) % OPS.len();
            if !used[touched].contains(&candidate) {
                break (touched, candidate);
            }
        };
        used[touched].insert(next_op);
        ops[touched] = next_op;
        revisions.push(EditRevision {
            source: render(&name, &ops),
            touched_process: touched,
        });
    }
    EditStream {
        name,
        processes,
        base,
        revisions,
    }
}

/// Renders the design for one operator assignment.  One process per line,
/// so a single-process edit is a single-line diff.
fn render(name: &str, ops: &[usize]) -> String {
    let n = ops.len();
    let mut src = String::new();
    src.push_str(&format!("entity {name} is port("));
    for i in 0..n - 1 {
        src.push_str(&format!("a{i} : in std_logic; "));
    }
    src.push_str("k : in std_logic; o : out std_logic); end ");
    src.push_str(name);
    src.push_str(";\n");
    src.push_str(&format!("architecture {name} of {name} is\n"));
    for i in 0..n - 1 {
        src.push_str(&format!("  signal t{i} : std_logic;\n"));
    }
    src.push_str("begin\n");
    for (i, &op) in ops.iter().enumerate() {
        let op = OPS[op];
        let (target, lhs, rhs) = if i == 0 {
            ("t0".to_string(), "a0".to_string(), "k".to_string())
        } else if i == n - 1 {
            ("o".to_string(), format!("t{}", i - 1), "k".to_string())
        } else {
            (format!("t{i}"), format!("t{}", i - 1), format!("a{i}"))
        };
        src.push_str(&format!(
            "  p{i} : process begin {target} <= {lhs} {op} {rhs}; wait on {lhs}, {rhs}; end process p{i};\n"
        ));
    }
    src.push_str(&format!("end {name};\n"));
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        assert_eq!(edit_stream(7, 8, 5), edit_stream(7, 8, 5));
        assert_ne!(edit_stream(7, 8, 5), edit_stream(8, 8, 5));
    }

    #[test]
    fn all_sources_in_a_stream_are_distinct() {
        for seed in [1, 7, 42] {
            let stream = edit_stream(seed, 4, 8);
            let sources: std::collections::BTreeSet<_> = stream.sources().into_iter().collect();
            assert_eq!(sources.len(), stream.revisions.len() + 1);
        }
    }

    #[test]
    fn every_revision_elaborates_with_stable_shape() {
        let stream = edit_stream(11, 8, 4);
        for src in stream.sources() {
            let design = vhdl1_syntax::frontend(src).unwrap();
            assert_eq!(design.name, stream.name);
            assert_eq!(design.processes.len(), 8);
        }
    }

    #[test]
    fn each_edit_touches_exactly_the_named_process() {
        let stream = edit_stream(3, 6, 6);
        let mut prev = stream.base.clone();
        for rev in &stream.revisions {
            let changed: Vec<usize> = prev
                .lines()
                .zip(rev.source.lines())
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(changed.len(), 1, "one line per edit");
            let line = rev.source.lines().nth(changed[0]).unwrap();
            assert!(
                line.trim_start()
                    .starts_with(&format!("p{} :", rev.touched_process)),
                "changed line `{line}` is not process {}",
                rev.touched_process
            );
            prev = rev.source.clone();
        }
    }

    #[test]
    fn untouched_processes_keep_their_fingerprints() {
        let stream = edit_stream(5, 8, 3);
        let mut prev = vhdl1_syntax::frontend(&stream.base).unwrap();
        for rev in &stream.revisions {
            let design = vhdl1_syntax::frontend(&rev.source).unwrap();
            let before = vhdl1_syntax::unit_fingerprints(&prev);
            let after = vhdl1_syntax::unit_fingerprints(&design);
            for (i, (b, a)) in before.iter().zip(&after).enumerate() {
                if i == rev.touched_process {
                    assert_ne!(b, a, "edited process {i} must re-fingerprint");
                } else {
                    assert_eq!(b, a, "untouched process {i} must keep its fingerprint");
                }
            }
            prev = design;
        }
    }
}
