//! Parameterized design families.
//!
//! Every builder returns a [`GeneratedDesign`]: a well-typed VHDL1 program
//! (emitted through [`vhdl1_syntax::pretty`], so it round-trips through the
//! real lexer and parser) together with its information-flow ground truth —
//! which inputs are secret, which outputs are public sinks, which flows are
//! intended (`allowed_flows`), and which flow edges a policy audit must flag
//! (`expected_violations`, non-empty exactly for the deliberately leaky
//! variants).
//!
//! Designs are simulation-safe by construction: every process suspends in a
//! `wait on` over its *input* signals only (never on a signal the process
//! itself drives), so a batch smoke-simulation always reaches quiescence.

use crate::rng::Rng;
use crate::{Family, GeneratedDesign};
use vhdl1_syntax::{
    Architecture, BinOp, Concurrent, Decl, DesignUnit, Entity, Expr, Port, PortMode, Process,
    Program, Slice, Span, Stmt, Target, Type,
};

fn vec8() -> Type {
    Type::vector_downto(7, 0)
}

fn in_port(name: &str, ty: Type) -> Port {
    Port {
        name: name.into(),
        mode: PortMode::In,
        ty,
        span: Span::NONE,
    }
}

fn out_port(name: &str, ty: Type) -> Port {
    Port {
        name: name.into(),
        mode: PortMode::Out,
        ty,
        span: Span::NONE,
    }
}

fn var8(name: impl Into<String>) -> Decl {
    Decl::Variable {
        name: name.into(),
        ty: vec8(),
        init: None,
        span: Span::NONE,
    }
}

fn var_assign(name: &str, expr: Expr) -> Stmt {
    Stmt::VarAssign {
        label: 0,
        target: Target::whole(name),
        expr,
    }
}

fn sig_assign(name: &str, expr: Expr) -> Stmt {
    Stmt::SignalAssign {
        label: 0,
        target: Target::whole(name),
        expr,
    }
}

fn wait_on(signals: &[&str]) -> Stmt {
    Stmt::Wait {
        label: 0,
        on: signals.iter().map(|s| s.to_string()).collect(),
        until: Expr::one(),
    }
}

/// A random 8-bit binary literal.
fn bits8(rng: &mut Rng) -> Expr {
    Expr::Vector((0..8).map(|_| *rng.pick(&['0', '1'])).collect())
}

/// A random byte-wide mixing step `acc = acc OP operand`.
fn mix_step(rng: &mut Rng, acc: &str, operand: Expr) -> Stmt {
    let op = *rng.pick(&[BinOp::Xor, BinOp::Add, BinOp::Sub, BinOp::And, BinOp::Or]);
    var_assign(acc, Expr::binary(op, Expr::name(acc), operand))
}

/// A one-bit left rotation of the byte variable `v`: `v := v(6..0) & v(7)`.
fn rotate_step(v: &str) -> Stmt {
    var_assign(
        v,
        Expr::binary(
            BinOp::Concat,
            Expr::slice(v, Slice::downto(6, 0)),
            Expr::slice(v, Slice::downto(7, 7)),
        ),
    )
}

fn program(name: &str, ports: Vec<Port>, decls: Vec<Decl>, body: Vec<Concurrent>) -> Program {
    Program {
        units: vec![
            DesignUnit::Entity(Entity {
                name: format!("{name}_e"),
                ports,
            }),
            DesignUnit::Architecture(Architecture {
                name: name.into(),
                entity: format!("{name}_e"),
                decls,
                body,
            }),
        ],
    }
}

fn process(name: &str, decls: Vec<Decl>, stmts: Vec<Stmt>) -> Concurrent {
    Concurrent::Process(Process {
        name: name.into(),
        decls,
        body: Stmt::seq(stmts),
    })
}

fn owned_pairs(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
    pairs
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect()
}

/// Combinational pipeline: the secret key is xor-folded into the data path
/// over `12..=32` mixing stages.  The leaky variant taps an intermediate
/// (key-tainted) stage onto the `tap` port; the clean variant forwards the
/// public input instead.
pub(crate) fn pipeline(name: &str, rng: &mut Rng, leaky: bool) -> GeneratedDesign {
    let stages = rng.range(12, 32) as usize;
    let mut stmts = vec![var_assign(
        "v_0",
        Expr::binary(BinOp::Xor, Expr::name("data_in"), Expr::name("key")),
    )];
    let mut decls = vec![var8("v_0")];
    for i in 1..=stages {
        let prev = format!("v_{}", i - 1);
        let cur = format!("v_{i}");
        decls.push(var8(&cur));
        stmts.push(var_assign(&cur, Expr::name(&prev)));
        if rng.chance(1, 2) {
            stmts.push(rotate_step(&cur));
        }
        let constant = bits8(rng);
        stmts.push(mix_step(rng, &cur, constant));
    }
    let last = format!("v_{stages}");
    stmts.push(sig_assign("data_out", Expr::name(&last)));
    // The tap: a key-tainted intermediate stage when leaky, the public
    // input otherwise.
    let tap_stage = format!("v_{}", rng.range(0, stages as u64));
    stmts.push(sig_assign(
        "tap",
        if leaky {
            Expr::name(&tap_stage)
        } else {
            Expr::name("data_in")
        },
    ));
    stmts.push(wait_on(&["data_in", "key"]));

    let source = vhdl1_syntax::pretty_program(&program(
        name,
        vec![
            in_port("data_in", vec8()),
            in_port("key", vec8()),
            out_port("data_out", vec8()),
            out_port("tap", vec8()),
        ],
        vec![],
        vec![process("mix", decls, stmts)],
    ));
    GeneratedDesign {
        name: name.into(),
        family: Family::Pipeline,
        leaky,
        source,
        secret_inputs: vec!["key".into()],
        public_outputs: vec!["data_out".into(), "tap".into()],
        allowed_flows: owned_pairs(&[("key", "data_out")]),
        expected_violations: if leaky {
            owned_pairs(&[("key", "tap")])
        } else {
            vec![]
        },
    }
}

/// A state machine whose transition is chosen by a branch condition: the
/// leaky variant branches on the *secret* configuration word (an implicit
/// flow into the state, observable at `observe`), the clean variant on the
/// public request line.
pub(crate) fn fsm(name: &str, rng: &mut Rng, leaky: bool) -> GeneratedDesign {
    let sentinel = bits8(rng);
    let fast = Expr::Int(rng.range(1, 3) as i64);
    let slow = Expr::Int(rng.range(4, 7) as i64);
    let cond = if leaky {
        Expr::binary(BinOp::Eq, Expr::name("secret"), sentinel)
    } else {
        Expr::binary(BinOp::Eq, Expr::name("req"), Expr::one())
    };
    let mut step_stmts = vec![Stmt::If {
        label: 0,
        cond,
        then_branch: Box::new(var_assign(
            "next_state",
            Expr::binary(BinOp::Add, Expr::name("state"), fast),
        )),
        else_branch: Box::new(var_assign(
            "next_state",
            Expr::binary(BinOp::Add, Expr::name("state"), slow),
        )),
    }];
    // A post-transition diffusion chain: state-machine bookkeeping that
    // stretches the definition-use chains the closure must follow.
    for _ in 0..rng.range(8, 24) {
        if rng.chance(1, 3) {
            step_stmts.push(rotate_step("next_state"));
        } else {
            let constant = bits8(rng);
            step_stmts.push(mix_step(rng, "next_state", constant));
        }
    }
    step_stmts.push(sig_assign("state", Expr::name("next_state")));
    step_stmts.push(wait_on(&["step"]));
    let observer = vec![
        sig_assign("observe", Expr::name("state")),
        wait_on(&["state"]),
    ];

    let source = vhdl1_syntax::pretty_program(&program(
        name,
        vec![
            in_port("step", Type::StdLogic),
            in_port("req", Type::StdLogic),
            in_port("secret", vec8()),
            out_port("observe", vec8()),
        ],
        vec![Decl::Signal {
            name: "state".into(),
            ty: vec8(),
            init: Some(Expr::Vector("00000000".into())),
            span: Span::NONE,
        }],
        vec![
            process("transition", vec![var8("next_state")], step_stmts),
            process("observer", vec![], observer),
        ],
    ));
    GeneratedDesign {
        name: name.into(),
        family: Family::Fsm,
        leaky,
        source,
        secret_inputs: vec!["secret".into()],
        public_outputs: vec!["observe".into()],
        allowed_flows: vec![],
        expected_violations: if leaky {
            owned_pairs(&[("secret", "observe")])
        } else {
            vec![]
        },
    }
}

/// A miniature S-box/accumulator crypto core: a rotating accumulator is
/// key-mixed and substituted through a small if-chain.  The leaky variant
/// exposes the key-tainted substitution value on the `dbg` port; the clean
/// variant echoes the public data input there.
pub(crate) fn sbox_core(name: &str, rng: &mut Rng, leaky: bool) -> GeneratedDesign {
    let subs = rng.range(8, 20);
    let mut stmts = vec![
        var_assign(
            "t",
            Expr::binary(
                BinOp::Concat,
                Expr::slice("acc", Slice::downto(6, 0)),
                Expr::slice("acc", Slice::downto(7, 7)),
            ),
        ),
        var_assign(
            "t",
            Expr::binary(BinOp::Xor, Expr::name("t"), Expr::name("key")),
        ),
    ];
    // Substitution: a chain of constant rewrites, a tiny stand-in for an
    // S-box lookup (keeps the nonlinearity that makes the flow interesting).
    for _ in 0..subs {
        let probe = bits8(rng);
        let image = bits8(rng);
        let diffusion = bits8(rng);
        stmts.push(Stmt::If {
            label: 0,
            cond: Expr::binary(BinOp::Eq, Expr::name("t"), probe),
            then_branch: Box::new(var_assign("t", image)),
            else_branch: Box::new(mix_step(rng, "t", diffusion)),
        });
    }
    stmts.push(sig_assign(
        "acc",
        Expr::binary(BinOp::Xor, Expr::name("t"), Expr::name("din")),
    ));
    stmts.push(sig_assign("cout", Expr::name("t")));
    stmts.push(sig_assign(
        "dbg",
        if leaky {
            Expr::name("t")
        } else {
            Expr::name("din")
        },
    ));
    stmts.push(wait_on(&["din", "key"]));

    let source = vhdl1_syntax::pretty_program(&program(
        name,
        vec![
            in_port("din", vec8()),
            in_port("key", vec8()),
            out_port("cout", vec8()),
            out_port("dbg", vec8()),
        ],
        vec![Decl::Signal {
            name: "acc".into(),
            ty: vec8(),
            init: Some(Expr::Vector("00000000".into())),
            span: Span::NONE,
        }],
        vec![process("core", vec![var8("t")], stmts)],
    ));
    GeneratedDesign {
        name: name.into(),
        family: Family::SboxCore,
        leaky,
        source,
        secret_inputs: vec!["key".into()],
        public_outputs: vec!["cout".into(), "dbg".into()],
        allowed_flows: owned_pairs(&[("key", "cout")]),
        expected_violations: if leaky {
            owned_pairs(&[("key", "dbg")])
        } else {
            vec![]
        },
    }
}

/// A four-process design with signal cross-flow: two producers feed a
/// select-gated mixer feeding the sinks.  Producer A folds the secret
/// configuration word into its stream (intended, like a keyed transform);
/// the leaky variant adds a monitor process that taps producer A's internal
/// signal straight onto the `mon` port.
pub(crate) fn cross_flow(name: &str, rng: &mut Rng, leaky: bool) -> GeneratedDesign {
    let b_const = Expr::Int(rng.range(1, 9) as i64);
    let producer_a = vec![
        sig_assign(
            "s_a",
            Expr::binary(BinOp::Xor, Expr::name("a_in"), Expr::name("secret_cfg")),
        ),
        wait_on(&["a_in", "secret_cfg"]),
    ];
    let producer_b = vec![
        sig_assign("s_b", Expr::binary(BinOp::Add, Expr::name("b_in"), b_const)),
        wait_on(&["b_in"]),
    ];
    let mut mixer = vec![Stmt::If {
        label: 0,
        cond: Expr::binary(BinOp::Eq, Expr::name("sel"), Expr::one()),
        then_branch: Box::new(var_assign("m", Expr::name("s_a"))),
        else_branch: Box::new(var_assign("m", Expr::name("s_b"))),
    }];
    // Whitening chain between select and publish, as a real mixer would
    // balance the paths; also the family's label-count scaling knob.
    for _ in 0..rng.range(6, 18) {
        if rng.chance(1, 3) {
            mixer.push(rotate_step("m"));
        } else {
            let constant = bits8(rng);
            mixer.push(mix_step(rng, "m", constant));
        }
    }
    mixer.push(sig_assign("s_mix", Expr::name("m")));
    mixer.push(wait_on(&["s_a", "s_b", "sel"]));
    // One sink process per output.  A single process doing both assignments
    // behind `wait on s_mix, s_b` would couple the flows: the analysis
    // (faithfully to the paper) treats the sensitivity list as read at the
    // synchronisation point, so an internal signal sampled after a shared
    // wait receives flows from *everything* waited on — and the secret
    // would reach `z_out` through the wait even though `z_out` only reads
    // `s_b`.  Separate processes keep the clean variant's ground truth
    // genuinely clean.
    let sink_y = vec![
        sig_assign("y_out", Expr::name("s_mix")),
        wait_on(&["s_mix"]),
    ];
    let sink_z = vec![sig_assign("z_out", Expr::name("s_b")), wait_on(&["s_b"])];
    let monitor = vec![
        sig_assign("mon", Expr::name(if leaky { "s_a" } else { "s_b" })),
        wait_on(if leaky { &["s_a"] } else { &["s_b"] }),
    ];

    let source = vhdl1_syntax::pretty_program(&program(
        name,
        vec![
            in_port("a_in", vec8()),
            in_port("b_in", vec8()),
            in_port("sel", Type::StdLogic),
            in_port("secret_cfg", vec8()),
            out_port("y_out", vec8()),
            out_port("z_out", vec8()),
            out_port("mon", vec8()),
        ],
        ["s_a", "s_b", "s_mix"]
            .iter()
            .map(|s| Decl::Signal {
                name: s.to_string(),
                ty: vec8(),
                init: None,
                span: Span::NONE,
            })
            .collect(),
        vec![
            process("producer_a", vec![], producer_a),
            process("producer_b", vec![], producer_b),
            process("mixer", vec![var8("m")], mixer),
            process("sink_y", vec![], sink_y),
            process("sink_z", vec![], sink_z),
            process("monitor", vec![], monitor),
        ],
    ));
    GeneratedDesign {
        name: name.into(),
        family: Family::CrossFlow,
        leaky,
        source,
        secret_inputs: vec!["secret_cfg".into()],
        public_outputs: vec!["y_out".into(), "z_out".into(), "mon".into()],
        allowed_flows: owned_pairs(&[("secret_cfg", "y_out")]),
        expected_violations: if leaky {
            owned_pairs(&[("secret_cfg", "mon")])
        } else {
            vec![]
        },
    }
}
