//! Parameterized design families.
//!
//! Every builder returns a [`GeneratedDesign`]: a well-typed VHDL1 program
//! (emitted through [`vhdl1_syntax::pretty`], so it round-trips through the
//! real lexer and parser) together with its information-flow ground truth —
//! which inputs are secret, which outputs are public sinks, which flows are
//! intended (`allowed_flows`), and which flow edges a policy audit must flag
//! (`expected_violations`, non-empty exactly for the deliberately leaky
//! variants).
//!
//! Designs are simulation-safe by construction: every process suspends in a
//! `wait on` over its *input* signals only (never on a signal the process
//! itself drives), so a batch smoke-simulation always reaches quiescence.

use crate::rng::Rng;
use crate::{Family, GeneratedDesign};
use vhdl1_syntax::{
    Architecture, BinOp, Concurrent, Decl, DesignUnit, Entity, Expr, Port, PortMode, Process,
    Program, Slice, Span, Stmt, Target, Type,
};

fn vec8() -> Type {
    Type::vector_downto(7, 0)
}

fn in_port(name: &str, ty: Type) -> Port {
    Port {
        name: name.into(),
        mode: PortMode::In,
        ty,
        span: Span::NONE,
    }
}

fn out_port(name: &str, ty: Type) -> Port {
    Port {
        name: name.into(),
        mode: PortMode::Out,
        ty,
        span: Span::NONE,
    }
}

fn var8(name: impl Into<String>) -> Decl {
    Decl::Variable {
        name: name.into(),
        ty: vec8(),
        init: None,
        span: Span::NONE,
    }
}

fn var_assign(name: &str, expr: Expr) -> Stmt {
    Stmt::VarAssign {
        label: 0,
        target: Target::whole(name),
        expr,
    }
}

fn sig_assign(name: &str, expr: Expr) -> Stmt {
    Stmt::SignalAssign {
        label: 0,
        target: Target::whole(name),
        expr,
    }
}

fn wait_on(signals: &[&str]) -> Stmt {
    Stmt::Wait {
        label: 0,
        on: signals.iter().map(|s| s.to_string()).collect(),
        until: Expr::one(),
    }
}

/// A random 8-bit binary literal.
fn bits8(rng: &mut Rng) -> Expr {
    Expr::Vector((0..8).map(|_| *rng.pick(&['0', '1'])).collect())
}

/// A random byte-wide mixing step `acc = acc OP operand`.
///
/// The ops are all *difference-preserving* (bijective in `acc` for a fixed
/// operand): two runs entering a mix chain with different values leave with
/// different values.  The static analysis never distinguishes binops (every
/// op reads both operands), but masking ops like `and`/`or` would let a
/// constant operand annihilate the twin-run difference a dynamic
/// flow-witness oracle drives through the chain — a long enough masked
/// chain becomes dynamically constant and its statically (correctly)
/// reported flows can never be witnessed.  A five-way pick keeps the RNG
/// draw pattern (and thus every other generated constant) stable.
fn mix_step(rng: &mut Rng, acc: &str, operand: Expr) -> Stmt {
    let op = *rng.pick(&[BinOp::Xor, BinOp::Add, BinOp::Sub, BinOp::Add, BinOp::Xor]);
    var_assign(acc, Expr::binary(op, Expr::name(acc), operand))
}

/// A one-bit left rotation of the byte variable `v`: `v := v(6..0) & v(7)`.
fn rotate_step(v: &str) -> Stmt {
    var_assign(
        v,
        Expr::binary(
            BinOp::Concat,
            Expr::slice(v, Slice::downto(6, 0)),
            Expr::slice(v, Slice::downto(7, 7)),
        ),
    )
}

fn program(name: &str, ports: Vec<Port>, decls: Vec<Decl>, body: Vec<Concurrent>) -> Program {
    Program {
        units: vec![
            DesignUnit::Entity(Entity {
                name: format!("{name}_e"),
                ports,
            }),
            DesignUnit::Architecture(Architecture {
                name: name.into(),
                entity: format!("{name}_e"),
                decls,
                body,
            }),
        ],
    }
}

fn process(name: &str, decls: Vec<Decl>, stmts: Vec<Stmt>) -> Concurrent {
    Concurrent::Process(Process {
        name: name.into(),
        decls,
        body: Stmt::seq(stmts),
    })
}

fn owned_pairs(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
    pairs
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect()
}

/// Combinational pipeline: the secret key is xor-folded into the data path
/// over `12..=32` mixing stages.  The leaky variant taps an intermediate
/// (key-tainted) stage onto the `tap` port; the clean variant forwards the
/// public input instead.
pub(crate) fn pipeline(name: &str, rng: &mut Rng, leaky: bool) -> GeneratedDesign {
    let stages = rng.range(12, 32) as usize;
    let mut stmts = vec![var_assign(
        "v_0",
        Expr::binary(BinOp::Xor, Expr::name("data_in"), Expr::name("key")),
    )];
    let mut decls = vec![var8("v_0")];
    for i in 1..=stages {
        let prev = format!("v_{}", i - 1);
        let cur = format!("v_{i}");
        decls.push(var8(&cur));
        stmts.push(var_assign(&cur, Expr::name(&prev)));
        if rng.chance(1, 2) {
            stmts.push(rotate_step(&cur));
        }
        let constant = bits8(rng);
        stmts.push(mix_step(rng, &cur, constant));
    }
    let last = format!("v_{stages}");
    stmts.push(sig_assign("data_out", Expr::name(&last)));
    // The tap: a key-tainted intermediate stage when leaky, the public
    // input otherwise.
    let tap_stage = format!("v_{}", rng.range(0, stages as u64));
    stmts.push(sig_assign(
        "tap",
        if leaky {
            Expr::name(&tap_stage)
        } else {
            Expr::name("data_in")
        },
    ));
    stmts.push(wait_on(&["data_in", "key"]));

    let source = vhdl1_syntax::pretty_program(&program(
        name,
        vec![
            in_port("data_in", vec8()),
            in_port("key", vec8()),
            out_port("data_out", vec8()),
            out_port("tap", vec8()),
        ],
        vec![],
        vec![process("mix", decls, stmts)],
    ));
    GeneratedDesign {
        name: name.into(),
        family: Family::Pipeline,
        leaky,
        source,
        secret_inputs: vec!["key".into()],
        public_outputs: vec!["data_out".into(), "tap".into()],
        allowed_flows: owned_pairs(&[("key", "data_out")]),
        expected_violations: if leaky {
            owned_pairs(&[("key", "tap")])
        } else {
            vec![]
        },
        expect_error: false,
    }
}

/// A state machine whose transition is chosen by a branch condition: the
/// leaky variant branches on the *secret* configuration word (an implicit
/// flow into the state, observable at `observe`), the clean variant on the
/// public request line.
pub(crate) fn fsm(name: &str, rng: &mut Rng, leaky: bool) -> GeneratedDesign {
    let sentinel = bits8(rng);
    let fast = Expr::Int(rng.range(1, 3) as i64);
    let slow = Expr::Int(rng.range(4, 7) as i64);
    let cond = if leaky {
        Expr::binary(BinOp::Eq, Expr::name("secret"), sentinel)
    } else {
        Expr::binary(BinOp::Eq, Expr::name("req"), Expr::one())
    };
    let mut step_stmts = vec![Stmt::If {
        label: 0,
        cond,
        then_branch: Box::new(var_assign(
            "next_state",
            Expr::binary(BinOp::Add, Expr::name("state"), fast),
        )),
        else_branch: Box::new(var_assign(
            "next_state",
            Expr::binary(BinOp::Add, Expr::name("state"), slow),
        )),
    }];
    // A post-transition diffusion chain: state-machine bookkeeping that
    // stretches the definition-use chains the closure must follow.
    for _ in 0..rng.range(8, 24) {
        if rng.chance(1, 3) {
            step_stmts.push(rotate_step("next_state"));
        } else {
            let constant = bits8(rng);
            step_stmts.push(mix_step(rng, "next_state", constant));
        }
    }
    step_stmts.push(sig_assign("state", Expr::name("next_state")));
    step_stmts.push(wait_on(&["step"]));
    let observer = vec![
        sig_assign("observe", Expr::name("state")),
        wait_on(&["state"]),
    ];

    let source = vhdl1_syntax::pretty_program(&program(
        name,
        vec![
            in_port("step", Type::StdLogic),
            in_port("req", Type::StdLogic),
            in_port("secret", vec8()),
            out_port("observe", vec8()),
        ],
        vec![Decl::Signal {
            name: "state".into(),
            ty: vec8(),
            init: Some(Expr::Vector("00000000".into())),
            span: Span::NONE,
        }],
        vec![
            process("transition", vec![var8("next_state")], step_stmts),
            process("observer", vec![], observer),
        ],
    ));
    GeneratedDesign {
        name: name.into(),
        family: Family::Fsm,
        leaky,
        source,
        secret_inputs: vec!["secret".into()],
        public_outputs: vec!["observe".into()],
        allowed_flows: vec![],
        expected_violations: if leaky {
            owned_pairs(&[("secret", "observe")])
        } else {
            vec![]
        },
        expect_error: false,
    }
}

/// A miniature S-box/accumulator crypto core: a rotating accumulator is
/// key-mixed and substituted through a small if-chain.  The leaky variant
/// exposes the key-tainted substitution value on the `dbg` port; the clean
/// variant echoes the public data input there.
pub(crate) fn sbox_core(name: &str, rng: &mut Rng, leaky: bool) -> GeneratedDesign {
    let subs = rng.range(8, 20);
    let mut stmts = vec![
        var_assign(
            "t",
            Expr::binary(
                BinOp::Concat,
                Expr::slice("acc", Slice::downto(6, 0)),
                Expr::slice("acc", Slice::downto(7, 7)),
            ),
        ),
        var_assign(
            "t",
            Expr::binary(BinOp::Xor, Expr::name("t"), Expr::name("key")),
        ),
    ];
    // Substitution: a chain of constant rewrites, a tiny stand-in for an
    // S-box lookup (keeps the nonlinearity that makes the flow interesting).
    for _ in 0..subs {
        let probe = bits8(rng);
        let image = bits8(rng);
        let diffusion = bits8(rng);
        stmts.push(Stmt::If {
            label: 0,
            cond: Expr::binary(BinOp::Eq, Expr::name("t"), probe),
            then_branch: Box::new(var_assign("t", image)),
            else_branch: Box::new(mix_step(rng, "t", diffusion)),
        });
    }
    stmts.push(sig_assign(
        "acc",
        Expr::binary(BinOp::Xor, Expr::name("t"), Expr::name("din")),
    ));
    stmts.push(sig_assign("cout", Expr::name("t")));
    stmts.push(sig_assign(
        "dbg",
        if leaky {
            Expr::name("t")
        } else {
            Expr::name("din")
        },
    ));
    stmts.push(wait_on(&["din", "key"]));

    let source = vhdl1_syntax::pretty_program(&program(
        name,
        vec![
            in_port("din", vec8()),
            in_port("key", vec8()),
            out_port("cout", vec8()),
            out_port("dbg", vec8()),
        ],
        vec![Decl::Signal {
            name: "acc".into(),
            ty: vec8(),
            init: Some(Expr::Vector("00000000".into())),
            span: Span::NONE,
        }],
        vec![process("core", vec![var8("t")], stmts)],
    ));
    GeneratedDesign {
        name: name.into(),
        family: Family::SboxCore,
        leaky,
        source,
        secret_inputs: vec!["key".into()],
        public_outputs: vec!["cout".into(), "dbg".into()],
        allowed_flows: owned_pairs(&[("key", "cout")]),
        expected_violations: if leaky {
            owned_pairs(&[("key", "dbg")])
        } else {
            vec![]
        },
        expect_error: false,
    }
}

/// A four-process design with signal cross-flow: two producers feed a
/// select-gated mixer feeding the sinks.  Producer A folds the secret
/// configuration word into its stream (intended, like a keyed transform);
/// the leaky variant adds a monitor process that taps producer A's internal
/// signal straight onto the `mon` port.
pub(crate) fn cross_flow(name: &str, rng: &mut Rng, leaky: bool) -> GeneratedDesign {
    let b_const = Expr::Int(rng.range(1, 9) as i64);
    let producer_a = vec![
        sig_assign(
            "s_a",
            Expr::binary(BinOp::Xor, Expr::name("a_in"), Expr::name("secret_cfg")),
        ),
        wait_on(&["a_in", "secret_cfg"]),
    ];
    let producer_b = vec![
        sig_assign("s_b", Expr::binary(BinOp::Add, Expr::name("b_in"), b_const)),
        wait_on(&["b_in"]),
    ];
    let mut mixer = vec![Stmt::If {
        label: 0,
        cond: Expr::binary(BinOp::Eq, Expr::name("sel"), Expr::one()),
        then_branch: Box::new(var_assign("m", Expr::name("s_a"))),
        else_branch: Box::new(var_assign("m", Expr::name("s_b"))),
    }];
    // Whitening chain between select and publish, as a real mixer would
    // balance the paths; also the family's label-count scaling knob.
    for _ in 0..rng.range(6, 18) {
        if rng.chance(1, 3) {
            mixer.push(rotate_step("m"));
        } else {
            let constant = bits8(rng);
            mixer.push(mix_step(rng, "m", constant));
        }
    }
    mixer.push(sig_assign("s_mix", Expr::name("m")));
    mixer.push(wait_on(&["s_a", "s_b", "sel"]));
    // One sink process per output.  A single process doing both assignments
    // behind `wait on s_mix, s_b` would couple the flows: the analysis
    // (faithfully to the paper) treats the sensitivity list as read at the
    // synchronisation point, so an internal signal sampled after a shared
    // wait receives flows from *everything* waited on — and the secret
    // would reach `z_out` through the wait even though `z_out` only reads
    // `s_b`.  Separate processes keep the clean variant's ground truth
    // genuinely clean.
    let sink_y = vec![
        sig_assign("y_out", Expr::name("s_mix")),
        wait_on(&["s_mix"]),
    ];
    let sink_z = vec![sig_assign("z_out", Expr::name("s_b")), wait_on(&["s_b"])];
    let monitor = vec![
        sig_assign("mon", Expr::name(if leaky { "s_a" } else { "s_b" })),
        wait_on(if leaky { &["s_a"] } else { &["s_b"] }),
    ];

    let source = vhdl1_syntax::pretty_program(&program(
        name,
        vec![
            in_port("a_in", vec8()),
            in_port("b_in", vec8()),
            in_port("sel", Type::StdLogic),
            in_port("secret_cfg", vec8()),
            out_port("y_out", vec8()),
            out_port("z_out", vec8()),
            out_port("mon", vec8()),
        ],
        ["s_a", "s_b", "s_mix"]
            .iter()
            .map(|s| Decl::Signal {
                name: s.to_string(),
                ty: vec8(),
                init: None,
                span: Span::NONE,
            })
            .collect(),
        vec![
            process("producer_a", vec![], producer_a),
            process("producer_b", vec![], producer_b),
            process("mixer", vec![var8("m")], mixer),
            process("sink_y", vec![], sink_y),
            process("sink_z", vec![], sink_z),
            process("monitor", vec![], monitor),
        ],
    ));
    GeneratedDesign {
        name: name.into(),
        family: Family::CrossFlow,
        leaky,
        source,
        secret_inputs: vec!["secret_cfg".into()],
        public_outputs: vec!["y_out".into(), "z_out".into(), "mon".into()],
        allowed_flows: owned_pairs(&[("secret_cfg", "y_out")]),
        expected_violations: if leaky {
            owned_pairs(&[("secret_cfg", "mon")])
        } else {
            vec![]
        },
        expect_error: false,
    }
}

// --- the hostile family -----------------------------------------------------

/// Shared entity interface of the analyzable hostile variants: a secret
/// `key`, a public `inp`, and one observable sink `out_o`.
fn hostile_ports() -> Vec<Port> {
    vec![
        in_port("key", vec8()),
        in_port("inp", vec8()),
        out_port("out_o", vec8()),
    ]
}

/// Ground truth shared by the analyzable hostile variants: `key` reaches
/// `out_o` by construction, recorded as an expected violation for leaky
/// variants and as a declassified (allowed) flow for clean ones.
fn hostile_truth(name: &str, source: String, leaky: bool) -> GeneratedDesign {
    GeneratedDesign {
        name: name.into(),
        family: Family::Hostile,
        leaky,
        source,
        secret_inputs: vec!["key".into()],
        public_outputs: vec!["out_o".into()],
        allowed_flows: if leaky {
            vec![]
        } else {
            owned_pairs(&[("key", "out_o")])
        },
        expected_violations: if leaky {
            owned_pairs(&[("key", "out_o")])
        } else {
            vec![]
        },
        expect_error: false,
    }
}

/// Adversarial stress designs.  Five shapes, drawn at random per design:
///
/// 0. deeply nested parenthesised expressions (parser recursion stress —
///    between the tight budget's depth limit and the hard default);
/// 1. pathological sensitivity/driver fan-in (dozens of producer processes
///    feeding one wide-sensitivity collector);
/// 2. a fixpoint-stressing signal chain long enough to exceed the tight
///    budget's simulation delta limit;
/// 3. oversized vector literals pushing the source past the tight budget's
///    size cap;
/// 4. truncated/garbage bytes the front end must reject with a structured
///    error (`expect_error`, never leaky).
///
/// Every variant must be survivable: under any budget the pipeline returns
/// `Ok` or a structured error, never a panic or a hang.
pub(crate) fn hostile(name: &str, rng: &mut Rng, leaky: bool) -> GeneratedDesign {
    match rng.below(5) {
        0 => hostile_deep_nest(name, rng, leaky),
        1 => hostile_fan_in(name, rng, leaky),
        2 => hostile_fixpoint_chain(name, rng, leaky),
        3 => hostile_oversized(name, rng, leaky),
        _ => hostile_garbage(name, rng),
    }
}

/// Variant 0: a right-nested xor tower.  The printer parenthesises the
/// nested right operand at every level, so the emitted source carries
/// `72..=96` nested parentheses — above the tight budget's parse depth (64),
/// below the parser's hard default (256).
fn hostile_deep_nest(name: &str, rng: &mut Rng, leaky: bool) -> GeneratedDesign {
    let depth = rng.range(72, 96);
    let mut expr = Expr::binary(BinOp::Xor, Expr::name("key"), Expr::name("inp"));
    for _ in 0..depth {
        expr = Expr::binary(BinOp::Xor, Expr::name("inp"), expr);
    }
    let stmts = vec![sig_assign("out_o", expr), wait_on(&["key", "inp"])];
    let source = vhdl1_syntax::pretty_program(&program(
        name,
        hostile_ports(),
        vec![],
        vec![process("deep", vec![], stmts)],
    ));
    hostile_truth(name, source, leaky)
}

/// Variant 1: sensitivity/driver fan-in.  Dozens of producer processes each
/// drive one internal signal from the inputs; a collector process folds all
/// of them into `out_o` behind a sensitivity list as wide as the design.
fn hostile_fan_in(name: &str, rng: &mut Rng, leaky: bool) -> GeneratedDesign {
    let n = rng.range(24, 40) as usize;
    let sigs: Vec<String> = (0..n).map(|i| format!("s_{i}")).collect();
    let decls = sigs
        .iter()
        .map(|s| Decl::Signal {
            name: s.clone(),
            ty: vec8(),
            init: None,
            span: Span::NONE,
        })
        .collect();
    let mut body = Vec::with_capacity(n + 1);
    for (i, s) in sigs.iter().enumerate() {
        body.push(process(
            &format!("prod_{i}"),
            vec![],
            vec![
                sig_assign(
                    s,
                    Expr::binary(BinOp::Xor, Expr::name("key"), Expr::name("inp")),
                ),
                wait_on(&["key", "inp"]),
            ],
        ));
    }
    let mut fold = Expr::name(&sigs[0]);
    for s in &sigs[1..] {
        fold = Expr::binary(BinOp::Xor, fold, Expr::name(s));
    }
    let wait_list: Vec<&str> = sigs.iter().map(String::as_str).collect();
    body.push(process(
        "collect",
        vec![],
        vec![sig_assign("out_o", fold), wait_on(&wait_list)],
    ));
    let source = vhdl1_syntax::pretty_program(&program(name, hostile_ports(), decls, body));
    hostile_truth(name, source, leaky)
}

/// Variant 2: a fixpoint-stressing chain of concurrent assignments
/// `s_1 <= s_0; s_2 <= s_1; ...`, seeded by a literal so the startup event
/// ripples through every link.  A ~200-link chain costs O(n²) closure
/// worklist pops (~40k) and one simulation delta per link, blowing past
/// the tight budget's 10k-pop and 1k-delta caps while staying tractable
/// in seconds under an unlimited budget even in debug builds.
fn hostile_fixpoint_chain(name: &str, rng: &mut Rng, leaky: bool) -> GeneratedDesign {
    let n = rng.range(180, 240) as usize;
    let decls = (0..n)
        .map(|i| Decl::Signal {
            name: format!("s_{i}"),
            ty: vec8(),
            init: None,
            span: Span::NONE,
        })
        .collect();
    let mut body = vec![casg("s_0", bits8(rng))];
    for i in 1..n {
        body.push(casg(&format!("s_{i}"), Expr::name(format!("s_{}", i - 1))));
    }
    body.push(casg(
        "out_o",
        Expr::binary(
            BinOp::Xor,
            Expr::name(format!("s_{}", n - 1)),
            Expr::name("key"),
        ),
    ));
    let source = vhdl1_syntax::pretty_program(&program(name, hostile_ports(), decls, body));
    hostile_truth(name, source, leaky)
}

fn casg(name: &str, expr: Expr) -> Concurrent {
    Concurrent::Assign {
        target: Target::whole(name),
        expr,
    }
}

/// Variant 3: oversized vector literals.  A kilobit-wide scratch variable is
/// rewritten with fresh kilobit literals until the source crosses the tight
/// budget's byte cap; the actual flow logic stays one line.
fn hostile_oversized(name: &str, rng: &mut Rng, leaky: bool) -> GeneratedDesign {
    let width = 1024i64;
    let rewrites = rng.range(18, 24);
    let mut stmts = Vec::new();
    for _ in 0..rewrites {
        let literal: String = (0..width).map(|_| *rng.pick(&['0', '1'])).collect();
        stmts.push(var_assign("pad", Expr::Vector(literal)));
    }
    stmts.push(sig_assign(
        "out_o",
        Expr::binary(BinOp::Xor, Expr::name("key"), Expr::name("inp")),
    ));
    stmts.push(wait_on(&["key", "inp"]));
    let pad = Decl::Variable {
        name: "pad".into(),
        ty: Type::vector_downto(width - 1, 0),
        init: None,
        span: Span::NONE,
    };
    let source = vhdl1_syntax::pretty_program(&program(
        name,
        hostile_ports(),
        vec![],
        vec![process("fat", vec![pad], stmts)],
    ));
    hostile_truth(name, source, leaky)
}

/// Variant 4: truncated or garbage byte streams.  The front end must reject
/// these with a structured error, so they carry `expect_error` and no flow
/// ground truth.  The bytes deliberately avoid `-` so a chunk can never be
/// mistaken for a `--!` manifest metadata line.
fn hostile_garbage(name: &str, rng: &mut Rng) -> GeneratedDesign {
    let source = if rng.chance(1, 2) {
        // Truncated mid-declaration.
        format!("entity {name}_e is\n  port(\n    key : in std_logic_vector(7 downto\n")
    } else {
        let alphabet = [
            'q', 'z', '%', '$', '{', '@', '(', '7', '~', '\\', 'e', 'n', 't', 'i', 'y', ' ',
        ];
        let mut s: String = (0..rng.range(64, 256))
            .map(|_| *rng.pick(&alphabet))
            .collect();
        s.push('\n');
        s
    };
    GeneratedDesign {
        name: name.into(),
        family: Family::Hostile,
        leaky: false,
        source,
        secret_inputs: vec![],
        public_outputs: vec![],
        allowed_flows: vec![],
        expected_violations: vec![],
        expect_error: true,
    }
}
