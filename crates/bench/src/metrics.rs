//! Precision metrics: edge counts of the competing analyses and of the
//! ablations called out in DESIGN.md.

use vhdl1_dataflow::RdOptions;
use vhdl1_infoflow::{analyze_with, AnalysisOptions};
use vhdl1_syntax::Design;

/// Edge counts of one workload under every analysis variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecisionRow {
    /// Workload name (for reporting).
    pub workload: String,
    /// Nodes of the design (variables + signals).
    pub nodes: usize,
    /// Edges reported by Kemmerer's method.
    pub kemmerer_edges: usize,
    /// Edges reported by the RD-based analysis (base closure, merged view).
    pub ours_edges: usize,
    /// Edges when the under-approximation `RD∩ϕ` is disabled.
    pub no_under_approx_edges: usize,
    /// Edges when the RD specialisation of Table 7 is disabled.
    pub no_specialization_edges: usize,
}

impl PrecisionRow {
    /// Edges Kemmerer reports beyond the RD-based analysis (the spurious
    /// flows the paper's Section 6 talks about).
    pub fn spurious_edges(&self) -> usize {
        self.kemmerer_edges.saturating_sub(self.ours_edges)
    }

    /// Formats the row the way the benches print it.
    pub fn format(&self) -> String {
        format!(
            "{:<28} nodes={:<4} kemmerer={:<5} ours={:<5} ours(no RD∩)={:<5} ours(no Table7)={:<5} spurious={}",
            self.workload,
            self.nodes,
            self.kemmerer_edges,
            self.ours_edges,
            self.no_under_approx_edges,
            self.no_specialization_edges,
            self.spurious_edges()
        )
    }
}

/// Runs every analysis variant on `design` and collects the edge counts.
pub fn precision_row(workload: &str, design: &Design) -> PrecisionRow {
    let base = AnalysisOptions::base();
    let result = analyze_with(design, &base);
    let ours = result.base_flow_graph();
    let kemmerer = result.kemmerer_flow_graph();

    let no_under = analyze_with(
        design,
        &base
            .to_builder()
            .rd(RdOptions {
                use_under_approximation: false,
                ..base.rd
            })
            .build(),
    )
    .base_flow_graph();
    let no_spec =
        analyze_with(design, &base.to_builder().specialize_rd(false).build()).base_flow_graph();

    PrecisionRow {
        workload: workload.to_string(),
        nodes: design.resource_names().len(),
        kemmerer_edges: kemmerer.edge_count(),
        ours_edges: ours.edge_count(),
        no_under_approx_edges: no_under.edge_count(),
        no_specialization_edges: no_spec.edge_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{design_of, temp_reuse_src};

    #[test]
    fn ablations_are_never_more_precise_than_the_full_analysis() {
        let design = design_of(&temp_reuse_src(4));
        let row = precision_row("temp_reuse(4)", &design);
        assert!(row.kemmerer_edges > row.ours_edges);
        assert!(row.no_specialization_edges >= row.ours_edges);
        assert!(row.no_under_approx_edges >= row.ours_edges);
        assert!(row.spurious_edges() > 0);
        assert!(row.format().contains("kemmerer="));
    }
}
