//! The Figure 5 experiment: Kemmerer's method versus the RD-based analysis
//! on the AES ShiftRows function.
//!
//! The paper presents both graphs restricted to the twelve bytes of the three
//! shifted rows, with incoming and outgoing nodes merged.  This module runs
//! both analyses on the generated ShiftRows workload and produces the two
//! merged, restricted graphs so that benches and tests can compare their
//! structure: the RD-based analysis separates the rows into three disjoint
//! rotation cycles, Kemmerer's method connects bytes across rows through the
//! shared temporaries.

use aes_vhdl::vhdl::shift_rows_vhdl;
use vhdl1_infoflow::{analyze_with, AnalysisOptions, FlowGraph, Node};
use vhdl1_syntax::frontend;

/// The two graphs of Figure 5, already merged and restricted to the twelve
/// shifted-row bytes.
#[derive(Debug, Clone)]
pub struct ShiftRowsGraphs {
    /// Figure 5(b): the RD-based analysis of this paper.
    pub ours: FlowGraph,
    /// Figure 5(a): Kemmerer's flow-insensitive method.
    pub kemmerer: FlowGraph,
    /// Number of edges of the full (unrestricted, unmerged) graph of the base
    /// RD-guided closure — comparable node set to Kemmerer's graph.
    pub ours_full_edges: usize,
    /// Number of edges of the full Kemmerer graph.
    pub kemmerer_full_edges: usize,
}

/// The row index (0-3) encoded in a Figure 5 node name `a_<row>_<col>`, if
/// the name has that shape (exactly `prefix_row_col` with numeric row and
/// column — temporaries like `temp_1` do not qualify).
pub fn row_of(name: &str) -> Option<usize> {
    let parts: Vec<&str> = name.split('_').collect();
    if parts.len() != 3 {
        return None;
    }
    let row: usize = parts[1].parse().ok()?;
    let _col: usize = parts[2].parse().ok()?;
    Some(row)
}

fn merge_ports(name: &str) -> String {
    // Identify the `b_<r>_<c>` output port with its `a_<r>_<c>` input, as the
    // paper does when it merges incoming and outgoing nodes.
    match name.strip_prefix("b_") {
        Some(rest) => format!("a_{rest}"),
        None => name.to_string(),
    }
}

fn restrict_to_shifted_rows(g: &FlowGraph) -> FlowGraph {
    g.restrict(|n: &Node| matches!(row_of(n.name()), Some(r) if (1..=3).contains(&r)))
}

/// Runs both analyses on the ShiftRows workload and builds the Figure 5
/// graphs.
pub fn shift_rows_graphs() -> ShiftRowsGraphs {
    let design = frontend(&shift_rows_vhdl()).expect("ShiftRows workload elaborates");
    let result = analyze_with(&design, &AnalysisOptions::default());

    let ours_full = result.flow_graph();
    let ours_base = result.base_flow_graph();
    let kemmerer_full = result.kemmerer_flow_graph();

    let ours = restrict_to_shifted_rows(&ours_full.merge_io_nodes().map_names(merge_ports));
    let kemmerer = restrict_to_shifted_rows(&kemmerer_full.merge_io_nodes().map_names(merge_ports));
    ShiftRowsGraphs {
        ours,
        kemmerer,
        ours_full_edges: ours_base.edge_count(),
        kemmerer_full_edges: kemmerer_full.edge_count(),
    }
}

impl ShiftRowsGraphs {
    /// Whether a graph keeps the three rows separate: every edge connects two
    /// bytes of the same row.
    pub fn rows_are_separated(g: &FlowGraph) -> bool {
        g.edges().all(|(f, t)| row_of(f.name()) == row_of(t.name()))
    }

    /// Number of edges connecting bytes of *different* rows (the false
    /// positives of a flow-insensitive analysis).
    pub fn cross_row_edges(g: &FlowGraph) -> usize {
        g.edges()
            .filter(|(f, t)| row_of(f.name()) != row_of(t.name()))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_parsing() {
        assert_eq!(row_of("a_1_3"), Some(1));
        assert_eq!(row_of("b_3_0"), Some(3));
        assert_eq!(row_of("temp_2"), None);
        assert_eq!(row_of("clk"), None);
    }

    #[test]
    fn figure5_shapes() {
        let graphs = shift_rows_graphs();
        // Both restricted graphs have the twelve row-1..3 nodes.
        assert_eq!(graphs.ours.node_count(), 12);
        assert_eq!(graphs.kemmerer.node_count(), 12);
        // Ours: three disjoint rotation cycles, one per row => 12 edges, all
        // within a row.
        assert!(ShiftRowsGraphs::rows_are_separated(&graphs.ours));
        assert_eq!(graphs.ours.edge_count(), 12);
        // Kemmerer: the shared temporaries connect the rows.
        assert!(!ShiftRowsGraphs::rows_are_separated(&graphs.kemmerer));
        assert!(ShiftRowsGraphs::cross_row_edges(&graphs.kemmerer) > 0);
        assert!(graphs.kemmerer.edge_count() > graphs.ours.edge_count());
        assert!(graphs.kemmerer_full_edges > graphs.ours_full_edges);
    }
}
