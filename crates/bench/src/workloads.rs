//! Workload generators: the paper's illustration programs, the AES
//! components, synthetic program families for the scaling study, and raw
//! ALFP clause programs for solver benchmarks.

use alfp_solver::{Program, Term};
use vhdl1_syntax::{frontend, Design};

/// `path` over a chain of `n` edges: the classic transitive-closure solver
/// workload, quadratic in `n` output tuples.  Facts go through the interned
/// fast path.
pub fn chain_tc_program(n: usize) -> Program {
    let mut p = Program::new();
    let edge = p.intern("edge");
    for i in 0..n {
        let (a, b) = (p.intern(&format!("v{i}")), p.intern(&format!("v{}", i + 1)));
        p.fact_interned(edge, vec![a, b]);
    }
    path_rules(&mut p);
    p
}

/// `path` over a pseudo-random graph with `nodes` nodes and `edges` edges
/// (fixed seed, xorshift64), a denser join workload than the chain.
pub fn random_tc_program(nodes: usize, edges: usize) -> Program {
    let mut p = Program::new();
    let edge = p.intern("edge");
    let mut state: u64 = 0x2545_f491_4f6c_dd1d;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..edges {
        let a = (next() % nodes as u64) as usize;
        let b = (next() % nodes as u64) as usize;
        let (a, b) = (p.intern(&format!("v{a}")), p.intern(&format!("v{b}")));
        p.fact_interned(edge, vec![a, b]);
    }
    path_rules(&mut p);
    p
}

fn path_rules(p: &mut Program) {
    p.rule("path", vec![Term::var("X"), Term::var("Y")])
        .pos("edge", vec![Term::var("X"), Term::var("Y")])
        .build();
    p.rule("path", vec![Term::var("X"), Term::var("Z")])
        .pos("path", vec![Term::var("X"), Term::var("Y")])
        .pos("edge", vec![Term::var("Y"), Term::var("Z")])
        .build();
}

/// Program (a) of Section 5: `[c := b]^1; [b := a]^2`, wrapped in a single
/// process over plain variables.
pub fn program_a_src() -> String {
    sequential_variables_src("c := b; b := a;")
}

/// Program (b) of Section 5: `[b := a]^1; [c := b]^2`.
pub fn program_b_src() -> String {
    sequential_variables_src("b := a; c := b;")
}

/// Wraps a body over the variables `a`, `b`, `c` in a single process.
pub fn sequential_variables_src(body: &str) -> String {
    format!(
        "entity seq is port(clk : in std_logic); end seq;
         architecture rtl of seq is begin
           p : process
             variable a : std_logic;
             variable b : std_logic;
             variable c : std_logic;
           begin
             {body}
           end process p;
         end rtl;"
    )
}

/// A synthetic temporary-reuse workload: `groups` independent input/output
/// pairs all routed through a single shared temporary variable.  The RD-based
/// analysis keeps the pairs separate; Kemmerer's method conflates all of
/// them (the shape of the Figure 5 comparison in miniature).
pub fn temp_reuse_src(groups: usize) -> String {
    let mut ports_in = Vec::new();
    let mut ports_out = Vec::new();
    let mut body = String::new();
    for i in 0..groups {
        ports_in.push(format!("in_{i}"));
        ports_out.push(format!("out_{i}"));
        body.push_str(&format!("    tmp := in_{i};\n    out_{i} <= tmp;\n"));
    }
    format!(
        "entity temps is port(
           {} : in std_logic_vector(7 downto 0);
           {} : out std_logic_vector(7 downto 0)
         ); end temps;
         architecture rtl of temps is begin
           p : process
             variable tmp : std_logic_vector(7 downto 0);
           begin
{body}    wait on {};
           end process p;
         end rtl;",
        ports_in.join(", "),
        ports_out.join(", "),
        ports_in.join(", "),
    )
}

/// A chain of `n` variable assignments `v_1 := v_0; ... ; v_n := v_{n-1}`
/// feeding an output signal — used for the scaling study over program size.
pub fn chain_src(n: usize) -> String {
    let mut decls = String::new();
    let mut body = String::new();
    for i in 0..=n {
        decls.push_str(&format!(
            "    variable v_{i} : std_logic_vector(7 downto 0);\n"
        ));
    }
    body.push_str("    v_0 := inp;\n");
    for i in 1..=n {
        body.push_str(&format!("    v_{i} := v_{};\n", i - 1));
    }
    body.push_str(&format!("    outp <= v_{n};\n"));
    format!(
        "entity chain is port(inp : in std_logic_vector(7 downto 0);
                              outp : out std_logic_vector(7 downto 0)); end chain;
         architecture rtl of chain is begin
           p : process
{decls}  begin
{body}    wait on inp;
           end process p;
         end rtl;"
    )
}

/// A pipeline of `n_procs` processes, each forwarding its predecessor's
/// signal through `stmts_per` local assignments — used for the scaling study
/// over process/synchronisation counts.
pub fn pipeline_src(n_procs: usize, stmts_per: usize) -> String {
    let mut signals = String::new();
    for i in 1..n_procs {
        signals.push_str(&format!(
            "  signal stage_{i} : std_logic_vector(7 downto 0);\n"
        ));
    }
    let mut processes = String::new();
    for p in 0..n_procs {
        let input = if p == 0 {
            "inp".to_string()
        } else {
            format!("stage_{p}")
        };
        let output = if p + 1 == n_procs {
            "outp".to_string()
        } else {
            format!("stage_{}", p + 1)
        };
        let mut body = String::new();
        body.push_str(&format!("      v_0 := {input};\n"));
        for i in 1..stmts_per {
            body.push_str(&format!("      v_{i} := v_{};\n", i - 1));
        }
        let last = stmts_per.saturating_sub(1);
        body.push_str(&format!("      {output} <= v_{last};\n"));
        let mut decls = String::new();
        for i in 0..stmts_per {
            decls.push_str(&format!(
                "      variable v_{i} : std_logic_vector(7 downto 0);\n"
            ));
        }
        processes.push_str(&format!(
            "  stage_proc_{p} : process
{decls}    begin
{body}      wait on {input};
    end process stage_proc_{p};\n"
        ));
    }
    format!(
        "entity pipeline is port(inp : in std_logic_vector(7 downto 0);
                                 outp : out std_logic_vector(7 downto 0)); end pipeline;
         architecture rtl of pipeline is
{signals}         begin
{processes}         end rtl;"
    )
}

/// Parses and elaborates a generated source, panicking on errors (the
/// generators are trusted).
pub fn design_of(src: &str) -> Design {
    frontend(src).unwrap_or_else(|e| panic!("generated workload does not elaborate: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn illustration_programs_elaborate() {
        assert_eq!(design_of(&program_a_src()).processes.len(), 1);
        assert_eq!(design_of(&program_b_src()).processes.len(), 1);
    }

    #[test]
    fn temp_reuse_scales_with_groups() {
        let d = design_of(&temp_reuse_src(3));
        assert_eq!(d.input_signals().len(), 3);
        assert_eq!(d.output_signals().len(), 3);
        assert!(design_of(&temp_reuse_src(8)).max_label() > d.max_label());
    }

    #[test]
    fn chain_label_count_grows_linearly() {
        let d10 = design_of(&chain_src(10));
        let d20 = design_of(&chain_src(20));
        assert_eq!(d20.max_label() - d10.max_label(), 10);
    }

    #[test]
    fn pipeline_has_one_wait_per_process() {
        let d = design_of(&pipeline_src(4, 3));
        assert_eq!(d.processes.len(), 4);
        for p in 0..4 {
            assert_eq!(d.wait_labels(p).len(), 1);
        }
    }
}
