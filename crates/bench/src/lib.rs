//! Shared workload generators and measurement helpers for the benchmark
//! harness (and for the cross-crate integration tests).
//!
//! Each module corresponds to one experiment of EXPERIMENTS.md; the Criterion
//! benches in `benches/` print the paper-shaped result rows and measure the
//! analysis run times on the same workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig5;
pub mod metrics;
pub mod workloads;

pub use fig5::{row_of, shift_rows_graphs, ShiftRowsGraphs};
pub use metrics::{precision_row, PrecisionRow};
