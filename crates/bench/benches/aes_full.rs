//! AES-FULL — Section 6: analysing and simulating the AES-128 VHDL1
//! implementation (SubBytes, MixColumns, AddRoundKey and the complete
//! unrolled cipher).  The paper validates "several programs for implementing
//! AES"; this bench measures the pipeline on those components and checks the
//! full cipher against FIPS-197 through the simulator.
//!
//! The simulator series separate concerns:
//!
//! * `frontend_full_aes128` — lex + parse + elaborate of the ~104k-line
//!   source (its own series, unchanged);
//! * `simulate_full_aes128` — compile + simulate an already elaborated
//!   design to quiescence, twice (cold `U` pass, then the driven block);
//! * `sim_dense_full_aes128` — the same simulation over a pre-compiled
//!   shared [`CompiledDesign`], i.e. the steady-state per-simulation cost;
//! * `sim_ref_full_aes128` — the `simref` oracle under the identical
//!   harness: the apples-to-apples baseline the dense core is measured
//!   against.

use aes_vhdl::vhdl::{add_round_key_vhdl, aes128_vhdl, mix_columns_vhdl, sub_bytes_vhdl};
use aes_vhdl::{encrypt_block, hex_block};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use vhdl1_infoflow::{analyze_with, AnalysisOptions};
use vhdl1_sim::simref::RefSimulator;
use vhdl1_sim::{CompiledDesign, SimOptions, Simulator};
use vhdl1_syntax::{frontend, Design};

const KEY_HEX: &str = "000102030405060708090a0b0c0d0e0f";
const PT_HEX: &str = "00112233445566778899aabbccddeeff";

fn simulate_with<S, D, R, O>(mut sim: S, mut run: R, mut drive: D, mut out: O) -> Vec<u8>
where
    R: FnMut(&mut S),
    D: FnMut(&mut S, &str, u128),
    O: FnMut(&S, &str) -> u8,
{
    run(&mut sim);
    let key = hex_block(KEY_HEX);
    let pt = hex_block(PT_HEX);
    for i in 0..16 {
        drive(&mut sim, &format!("pt_{i}"), pt[i] as u128);
        drive(&mut sim, &format!("key_{i}"), key[i] as u128);
    }
    run(&mut sim);
    (0..16).map(|i| out(&sim, &format!("ct_{i}"))).collect()
}

/// Dense core: construction (compile) + two runs to quiescence.
fn simulate_full_aes(design: &Design) -> Vec<u8> {
    simulate_with(
        Simulator::new(design).unwrap(),
        |s| {
            s.run_until_quiescent(50).unwrap();
        },
        |s, name, v| s.drive_input_unsigned(name, v).unwrap(),
        |s, name| s.signal(name).unwrap().to_unsigned().unwrap() as u8,
    )
}

/// Dense core over a shared pre-compiled design: per-simulation cost only.
fn simulate_compiled_aes(compiled: &Arc<CompiledDesign>) -> Vec<u8> {
    simulate_with(
        Simulator::from_compiled(Arc::clone(compiled), SimOptions::default()),
        |s| {
            s.run_until_quiescent(50).unwrap();
        },
        |s, name, v| s.drive_input_unsigned(name, v).unwrap(),
        |s, name| s.signal(name).unwrap().to_unsigned().unwrap() as u8,
    )
}

/// The `simref` oracle under the identical harness.
fn simulate_ref_aes(design: &Design) -> Vec<u8> {
    simulate_with(
        RefSimulator::new(design).unwrap(),
        |s| {
            s.run_until_quiescent(50).unwrap();
        },
        |s, name, v| s.drive_input_unsigned(name, v).unwrap(),
        |s, name| s.signal(name).unwrap().to_unsigned().unwrap() as u8,
    )
}

fn print_summary(design: &Design) {
    println!("== AES-FULL: AES-128 components through the pipeline ==");
    let expected = encrypt_block(&hex_block(KEY_HEX), &hex_block(PT_HEX)).to_vec();
    let dense_ct = simulate_full_aes(design);
    let oracle_ct = simulate_ref_aes(design);
    assert_eq!(
        dense_ct, expected,
        "dense ciphertext must match FIPS-197 / the Rust reference"
    );
    assert_eq!(
        dense_ct, oracle_ct,
        "dense core and simref oracle must agree bit for bit"
    );
    println!("  dense ciphertext matches FIPS-197 / Rust reference: true");
    println!("  dense and simref oracle agree bit for bit: true");
    for (name, src) in [
        ("add_round_key(16 bytes)", add_round_key_vhdl(16)),
        ("mix_columns", mix_columns_vhdl()),
        ("sub_bytes(2 bytes)", sub_bytes_vhdl(2)),
    ] {
        let design = frontend(&src).unwrap();
        let result = analyze_with(&design, &AnalysisOptions::base());
        let ours = result.base_flow_graph();
        let kemmerer = result.kemmerer_flow_graph();
        println!(
            "  {:<24} labels={:<5} ours edges={:<5} kemmerer edges={:<5}",
            name,
            design.max_label(),
            ours.edge_count(),
            kemmerer.edge_count()
        );
    }
    println!();
}

fn bench_aes(c: &mut Criterion) {
    let aes_src = aes128_vhdl();
    let aes_design = frontend(&aes_src).unwrap();
    print_summary(&aes_design);
    let mut group = c.benchmark_group("aes_full");
    group.sample_size(10);

    let ark = frontend(&add_round_key_vhdl(16)).unwrap();
    group.bench_function("analyze_add_round_key", |b| {
        b.iter(|| analyze_with(black_box(&ark), &AnalysisOptions::base()).base_flow_graph())
    });
    let mix = frontend(&mix_columns_vhdl()).unwrap();
    group.bench_function("analyze_mix_columns", |b| {
        b.iter(|| analyze_with(black_box(&mix), &AnalysisOptions::base()).base_flow_graph())
    });
    let sub = frontend(&sub_bytes_vhdl(2)).unwrap();
    group.bench_function("analyze_sub_bytes_2", |b| {
        b.iter(|| analyze_with(black_box(&sub), &AnalysisOptions::base()).base_flow_graph())
    });
    group.bench_function("simulate_full_aes128", |b| {
        b.iter(|| simulate_full_aes(black_box(&aes_design)))
    });
    let compiled = Arc::new(CompiledDesign::compile(&aes_design).unwrap());
    group.bench_function("sim_dense_full_aes128", |b| {
        b.iter(|| simulate_compiled_aes(black_box(&compiled)))
    });
    group.bench_function("sim_ref_full_aes128", |b| {
        b.iter(|| simulate_ref_aes(black_box(&aes_design)))
    });
    group.bench_function("frontend_full_aes128", |b| {
        b.iter(|| frontend(black_box(&aes_src)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_aes);
criterion_main!(benches);
