//! AES-FULL — Section 6: analysing and simulating the AES-128 VHDL1
//! implementation (SubBytes, MixColumns, AddRoundKey and the complete
//! unrolled cipher).  The paper validates "several programs for implementing
//! AES"; this bench measures the pipeline on those components and checks the
//! full cipher against FIPS-197 through the simulator.

use aes_vhdl::vhdl::{add_round_key_vhdl, aes128_vhdl, mix_columns_vhdl, sub_bytes_vhdl};
use aes_vhdl::{encrypt_block, hex_block};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vhdl1_infoflow::{analyze_with, AnalysisOptions};
use vhdl1_sim::Simulator;
use vhdl1_syntax::frontend;

fn simulate_full_aes() -> Vec<u8> {
    let design = frontend(&aes128_vhdl()).unwrap();
    let mut sim = Simulator::new(&design).unwrap();
    sim.run_until_quiescent(50).unwrap();
    let key = hex_block("000102030405060708090a0b0c0d0e0f");
    let pt = hex_block("00112233445566778899aabbccddeeff");
    for i in 0..16 {
        sim.drive_input_unsigned(&format!("pt_{i}"), pt[i] as u128)
            .unwrap();
        sim.drive_input_unsigned(&format!("key_{i}"), key[i] as u128)
            .unwrap();
    }
    sim.run_until_quiescent(50).unwrap();
    (0..16)
        .map(|i| {
            sim.signal(&format!("ct_{i}"))
                .unwrap()
                .to_unsigned()
                .unwrap() as u8
        })
        .collect()
}

fn print_summary() {
    println!("== AES-FULL: AES-128 components through the pipeline ==");
    let ct = simulate_full_aes();
    let expected = encrypt_block(
        &hex_block("000102030405060708090a0b0c0d0e0f"),
        &hex_block("00112233445566778899aabbccddeeff"),
    );
    println!(
        "  simulated ciphertext matches FIPS-197 / Rust reference: {}",
        ct == expected.to_vec()
    );
    for (name, src) in [
        ("add_round_key(16 bytes)", add_round_key_vhdl(16)),
        ("mix_columns", mix_columns_vhdl()),
        ("sub_bytes(2 bytes)", sub_bytes_vhdl(2)),
    ] {
        let design = frontend(&src).unwrap();
        let result = analyze_with(&design, &AnalysisOptions::base());
        let ours = result.base_flow_graph();
        let kemmerer = result.kemmerer_flow_graph();
        println!(
            "  {:<24} labels={:<5} ours edges={:<5} kemmerer edges={:<5}",
            name,
            design.max_label(),
            ours.edge_count(),
            kemmerer.edge_count()
        );
    }
    println!();
}

fn bench_aes(c: &mut Criterion) {
    print_summary();
    let mut group = c.benchmark_group("aes_full");
    group.sample_size(10);

    let ark = frontend(&add_round_key_vhdl(16)).unwrap();
    group.bench_function("analyze_add_round_key", |b| {
        b.iter(|| analyze_with(black_box(&ark), &AnalysisOptions::base()).base_flow_graph())
    });
    let mix = frontend(&mix_columns_vhdl()).unwrap();
    group.bench_function("analyze_mix_columns", |b| {
        b.iter(|| analyze_with(black_box(&mix), &AnalysisOptions::base()).base_flow_graph())
    });
    let sub = frontend(&sub_bytes_vhdl(2)).unwrap();
    group.bench_function("analyze_sub_bytes_2", |b| {
        b.iter(|| analyze_with(black_box(&sub), &AnalysisOptions::base()).base_flow_graph())
    });
    group.bench_function("simulate_full_aes128", |b| b.iter(simulate_full_aes));
    let aes_src = aes128_vhdl();
    group.bench_function("frontend_full_aes128", |b| {
        b.iter(|| frontend(black_box(&aes_src)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_aes);
criterion_main!(benches);
