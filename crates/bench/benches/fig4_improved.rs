//! FIG4 — Figure 4: the improved analysis with incoming (`n◦`) and outgoing
//! (`n•`) nodes on program (b) `b := a; c := b`.  The key claim: the initial
//! value of `b` does *not* reach `c`, while the initial value of `a` does.

use bench::workloads::{design_of, program_b_src};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vhdl1_infoflow::{analyze_with, AnalysisOptions, Node};

fn print_figure4() {
    let design = design_of(&program_b_src());
    let opts = AnalysisOptions::sequential_illustration();
    let result = analyze_with(&design, &opts);
    let base = result.base_flow_graph();
    let improved = result.flow_graph();
    println!("== FIG4: improved analysis of program (b) b:=a; c:=b ==");
    let fmt = |g: &vhdl1_infoflow::FlowGraph| {
        let mut edges: Vec<String> = g.edges().map(|(f, t)| format!("{f}->{t}")).collect();
        edges.sort();
        edges.join(", ")
    };
    println!("  base graph (Fig 4(a) shape): {{{}}}", fmt(&base));
    println!("  improved graph (Fig 4(b)) : {{{}}}", fmt(&improved));
    println!(
        "  a-incoming reaches c: {}   b-incoming reaches c: {} (paper: yes / no)",
        improved
            .reachable_from(&Node::incoming("a"))
            .contains(&Node::res("c")),
        improved
            .reachable_from(&Node::incoming("b"))
            .contains(&Node::res("c")),
    );
    println!();
}

fn bench_fig4(c: &mut Criterion) {
    print_figure4();
    let design = design_of(&program_b_src());
    let opts = AnalysisOptions::sequential_illustration();
    let mut group = c.benchmark_group("fig4");
    group.bench_function("improved_analysis_program_b", |b| {
        b.iter(|| analyze_with(black_box(&design), &opts).flow_graph())
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
