//! SOLVER — Section 6: both analyses were implemented in the Succinct Solver.
//! This bench runs the ALFP/Datalog encodings of the closure and of
//! Kemmerer's method on the evaluation workloads, checks that the extracted
//! graphs agree with the native implementation, and compares run times.

use aes_vhdl::vhdl::shift_rows_vhdl;
use bench::workloads::{chain_tc_program, design_of, random_tc_program, temp_reuse_src};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use vhdl1_infoflow::alfp_encoding::{encode_closure, encode_kemmerer, solve_closure};
use vhdl1_infoflow::{analyze_with, AnalysisOptions};

fn time_once<T>(f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Single-shot semi-naive vs naive comparison on the transitive-closure
/// workloads (the naive reference is only run at sizes where it finishes
/// promptly).
fn print_tc_speedups() {
    println!("== TC: semi-naive indexed engine vs naive reference ==");
    for n in [16usize, 32, 64] {
        let p = chain_tc_program(n);
        let (fast_model, fast) = time_once(|| p.solve().unwrap());
        let (slow_model, slow) = time_once(|| p.solve_naive().unwrap());
        assert_eq!(fast_model, slow_model, "engines disagree on chain({n})");
        println!(
            "  chain({n:<3})  semi-naive {:>10?}  naive {:>10?}  speedup {:>8.1}x",
            fast,
            slow,
            slow.as_secs_f64() / fast.as_secs_f64().max(f64::EPSILON)
        );
    }
    for (nodes, edges) in [(32usize, 96usize), (64, 192)] {
        let p = random_tc_program(nodes, edges);
        let (fast_model, fast) = time_once(|| p.solve().unwrap());
        let (slow_model, slow) = time_once(|| p.solve_naive().unwrap());
        assert_eq!(
            fast_model, slow_model,
            "engines disagree on random({nodes},{edges})"
        );
        println!(
            "  random({nodes},{edges})  semi-naive {:>10?}  naive {:>10?}  speedup {:>8.1}x",
            fast,
            slow,
            slow.as_secs_f64() / fast.as_secs_f64().max(f64::EPSILON)
        );
    }
    println!();
}

fn bench_transitive_closure(c: &mut Criterion) {
    print_tc_speedups();
    let mut group = c.benchmark_group("transitive_closure");
    group.sample_size(10);
    for n in [64usize, 256] {
        let p = chain_tc_program(n);
        group.bench_with_input(BenchmarkId::new("chain_semi_naive", n), &p, |b, p| {
            b.iter(|| black_box(p).solve().unwrap())
        });
    }
    let p = random_tc_program(128, 384);
    group.bench_function("random_128_semi_naive", |b| {
        b.iter(|| black_box(&p).solve().unwrap())
    });
    group.finish();
}

fn print_crosscheck() {
    println!("== SOLVER: ALFP encoding vs native implementation ==");
    for (name, src) in [
        ("temp_reuse(8)", temp_reuse_src(8)),
        ("aes_shift_rows", shift_rows_vhdl()),
    ] {
        let design = design_of(&src);
        let result = analyze_with(&design, &AnalysisOptions::base());
        let native = result.base_flow_graph();
        let alfp = solve_closure(&result).expect("encoding is safe and stratified");
        let agree = native.edges().all(|(f, t)| alfp.has_edge_nodes(f, t))
            && alfp.edges().all(|(f, t)| native.has_edge_nodes(f, t));
        let clauses = encode_closure(&result).len();
        println!(
            "  {:<16} clauses={:<6} native edges={:<5} alfp edges={:<5} graphs agree: {}",
            name,
            clauses,
            native.edge_count(),
            alfp.edge_count(),
            agree
        );
    }
    println!();
}

fn bench_alfp(c: &mut Criterion) {
    print_crosscheck();
    let design = design_of(&temp_reuse_src(8));
    let result = analyze_with(&design, &AnalysisOptions::base());
    let mut group = c.benchmark_group("alfp_solver");
    group.sample_size(20);
    group.bench_function("native_closure_temp_reuse_8", |b| {
        b.iter(|| analyze_with(black_box(&design), &AnalysisOptions::base()).base_flow_graph())
    });
    group.bench_function("alfp_closure_temp_reuse_8", |b| {
        b.iter(|| solve_closure(black_box(&result)).unwrap())
    });
    group.bench_function("alfp_kemmerer_temp_reuse_8", |b| {
        b.iter(|| encode_kemmerer(black_box(&result)).solve().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_transitive_closure, bench_alfp);
criterion_main!(benches);
