//! SOLVER — Section 6: both analyses were implemented in the Succinct Solver.
//! This bench runs the ALFP/Datalog encodings of the closure and of
//! Kemmerer's method on the evaluation workloads, checks that the extracted
//! graphs agree with the native implementation, and compares run times.

use aes_vhdl::vhdl::shift_rows_vhdl;
use bench::workloads::{design_of, temp_reuse_src};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vhdl1_infoflow::alfp_encoding::{encode_closure, encode_kemmerer, solve_closure};
use vhdl1_infoflow::{analyze_with, AnalysisOptions};

fn print_crosscheck() {
    println!("== SOLVER: ALFP encoding vs native implementation ==");
    for (name, src) in
        [("temp_reuse(8)", temp_reuse_src(8)), ("aes_shift_rows", shift_rows_vhdl())]
    {
        let design = design_of(&src);
        let result = analyze_with(&design, &AnalysisOptions::base());
        let native = result.base_flow_graph();
        let alfp = solve_closure(&result).expect("encoding is safe and stratified");
        let agree = native.edges().all(|(f, t)| alfp.has_edge_nodes(f, t))
            && alfp.edges().all(|(f, t)| native.has_edge_nodes(f, t));
        let clauses = encode_closure(&result).len();
        println!(
            "  {:<16} clauses={:<6} native edges={:<5} alfp edges={:<5} graphs agree: {}",
            name,
            clauses,
            native.edge_count(),
            alfp.edge_count(),
            agree
        );
    }
    println!();
}

fn bench_alfp(c: &mut Criterion) {
    print_crosscheck();
    let design = design_of(&temp_reuse_src(8));
    let result = analyze_with(&design, &AnalysisOptions::base());
    let mut group = c.benchmark_group("alfp_solver");
    group.sample_size(20);
    group.bench_function("native_closure_temp_reuse_8", |b| {
        b.iter(|| analyze_with(black_box(&design), &AnalysisOptions::base()).base_flow_graph())
    });
    group.bench_function("alfp_closure_temp_reuse_8", |b| {
        b.iter(|| solve_closure(black_box(&result)).unwrap())
    });
    group.bench_function("alfp_kemmerer_temp_reuse_8", |b| {
        b.iter(|| encode_kemmerer(black_box(&result)).solve().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_alfp);
criterion_main!(benches);
