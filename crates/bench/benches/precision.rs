//! PRECISION — Section 6: "our analysis correctly eliminates the edges
//! introduced by the overwritten variables."  Reports edge counts of
//! Kemmerer's method, the RD-based analysis, and the ablations of DESIGN.md
//! (no under-approximation, no Table 7 specialisation) on temporary-reuse
//! workloads and the AES components.

use aes_vhdl::vhdl::{add_round_key_vhdl, mix_columns_vhdl, shift_rows_vhdl};
use bench::metrics::precision_row;
use bench::workloads::{design_of, temp_reuse_src};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vhdl1_dataflow::RdOptions;
use vhdl1_infoflow::{analyze_with, AnalysisOptions};
use vhdl1_syntax::frontend;

fn print_table() {
    println!("== PRECISION: edge counts per analysis variant ==");
    let workloads: Vec<(String, String)> = vec![
        ("temp_reuse(4)".into(), temp_reuse_src(4)),
        ("temp_reuse(16)".into(), temp_reuse_src(16)),
        ("aes_shift_rows".into(), shift_rows_vhdl()),
        ("aes_add_round_key".into(), add_round_key_vhdl(16)),
        ("aes_mix_columns".into(), mix_columns_vhdl()),
    ];
    for (name, src) in workloads {
        let design = design_of(&src);
        println!("  {}", precision_row(&name, &design).format());
    }
    println!();
}

fn bench_precision(c: &mut Criterion) {
    print_table();
    let design = design_of(&temp_reuse_src(16));
    let mut group = c.benchmark_group("precision");
    group.bench_function("ours_temp_reuse_16", |b| {
        b.iter(|| analyze_with(black_box(&design), &AnalysisOptions::base()).base_flow_graph())
    });
    group.bench_function("ours_no_under_approx_temp_reuse_16", |b| {
        let opts = AnalysisOptions::base()
            .to_builder()
            .rd(RdOptions {
                use_under_approximation: false,
                ..RdOptions::default()
            })
            .build();
        b.iter(|| analyze_with(black_box(&design), &opts).base_flow_graph())
    });
    group.bench_function("kemmerer_temp_reuse_16", |b| {
        b.iter(|| vhdl1_infoflow::kemmerer_graph(black_box(&design)))
    });
    let shift = frontend(&shift_rows_vhdl()).unwrap();
    group.bench_function("ours_shift_rows", |b| {
        b.iter(|| analyze_with(black_box(&shift), &AnalysisOptions::base()).base_flow_graph())
    });
    group.finish();
}

criterion_group!(benches, bench_precision);
criterion_main!(benches);
