//! FIG5 — Figure 5: Kemmerer's method versus the RD-based analysis on the
//! AES ShiftRows function.  Reproduces the paper's qualitative result: the
//! twelve shifted-row bytes form three separate rotation cycles under our
//! analysis, while Kemmerer's method cannot separate the rows.

use aes_vhdl::vhdl::shift_rows_vhdl;
use bench::fig5::{shift_rows_graphs, ShiftRowsGraphs};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vhdl1_infoflow::{analyze_with, kemmerer_graph, AnalysisOptions};
use vhdl1_syntax::frontend;

fn print_figure5() {
    let graphs = shift_rows_graphs();
    println!("== FIG5: AES ShiftRows, 12 shifted-row bytes (in/out merged) ==");
    println!(
        "  this paper : {:>3} edges, cross-row edges {:>3}, rows separated: {}",
        graphs.ours.edge_count(),
        ShiftRowsGraphs::cross_row_edges(&graphs.ours),
        ShiftRowsGraphs::rows_are_separated(&graphs.ours)
    );
    println!(
        "  kemmerer   : {:>3} edges, cross-row edges {:>3}, rows separated: {}",
        graphs.kemmerer.edge_count(),
        ShiftRowsGraphs::cross_row_edges(&graphs.kemmerer),
        ShiftRowsGraphs::rows_are_separated(&graphs.kemmerer)
    );
    println!(
        "  full graphs: ours {} edges vs kemmerer {} edges",
        graphs.ours_full_edges, graphs.kemmerer_full_edges
    );
    let mut edges: Vec<String> = graphs
        .ours
        .edges()
        .map(|(f, t)| format!("{f}->{t}"))
        .collect();
    edges.sort();
    println!("  our per-row rotation edges: {}", edges.join(", "));
    println!();
}

fn bench_fig5(c: &mut Criterion) {
    print_figure5();
    let design = frontend(&shift_rows_vhdl()).unwrap();
    let mut group = c.benchmark_group("fig5_shiftrows");
    group.bench_function("rd_based_analysis", |b| {
        b.iter(|| analyze_with(black_box(&design), &AnalysisOptions::default()).flow_graph())
    });
    group.bench_function("kemmerer_baseline", |b| {
        b.iter(|| kemmerer_graph(black_box(&design)))
    });
    group.bench_function("frontend_parse_elaborate", |b| {
        let src = shift_rows_vhdl();
        b.iter(|| frontend(black_box(&src)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
