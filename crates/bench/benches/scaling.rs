//! COMPLEX — Section 7: scaling of the implementation with program size.
//! The paper reports a worst-case complexity of O(n^5) with a conjectured
//! cubic bound and notes that the bit-vector frameworks behave linearly in
//! practice.  This bench sweeps synthetic program families (assignment
//! chains and process pipelines) and reports the measured analysis times.

use aes_vhdl::vhdl::sub_bytes_vhdl;
use bench::workloads::{chain_src, chain_tc_program, design_of, pipeline_src};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};
use vhdl1_cli::driver::{run_batch, BatchOptions, Job};
use vhdl1_corpus::{generate, CorpusSpec};
use vhdl1_dataflow::{RdOptions, ReachingDefinitions};
use vhdl1_infoflow::alfp_encoding::solve_closure;
use vhdl1_infoflow::{analyze_with, AnalysisOptions, Engine};

/// One measured point of the ALFP scaling sweep, serialised into
/// `BENCH_alfp.json` so the perf trajectory is machine-readable across PRs.
struct BenchPoint {
    workload: &'static str,
    size: usize,
    tuples: usize,
    median_ns: u128,
}

fn median_of(samples: &mut [Duration]) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn measure<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let mut out = f(); // warm-up
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        out = f();
        samples.push(start.elapsed());
    }
    (out, median_of(&mut samples))
}

/// Sweeps the ALFP solver on transitive-closure chains and on the encoded
/// closure of the chain designs, printing the series and writing
/// `BENCH_alfp.json`.
fn alfp_series() {
    println!("== ALFP: solver scaling (semi-naive indexed engine) ==");
    let mut points: Vec<BenchPoint> = Vec::new();

    println!("  transitive closure, chain length sweep:");
    for n in [32usize, 64, 128, 256] {
        let p = chain_tc_program(n);
        let (model, median) = measure(5, || p.solve().unwrap());
        let tuples = model.tuple_count();
        println!("    n={n:<4} tuples={tuples:<7} median={median:?}");
        points.push(BenchPoint {
            workload: "chain_tc",
            size: n,
            tuples,
            median_ns: median.as_nanos(),
        });
    }

    println!("  encoded closure of the chain design:");
    for n in [20usize, 80, 160] {
        let design = design_of(&chain_src(n));
        let result = analyze_with(&design, &AnalysisOptions::base());
        let (graph, median) = measure(5, || solve_closure(&result).unwrap());
        let edges = graph.edge_count();
        println!("    n={n:<4} edges={edges:<6} median={median:?}");
        points.push(BenchPoint {
            workload: "encoded_closure_chain",
            size: n,
            tuples: edges,
            median_ns: median.as_nanos(),
        });
    }

    // Dense Reaching Definitions (Tables 4 and 5 on interned bitset rows):
    // the AES SubBytes family is the label-count stress test (two 256-way
    // sbox chains through one shared temporary), the chain family the
    // breadth test.  `tuples` records the label count of the design.
    println!("  dense Reaching Definitions (interned bitset rows):");
    for n in [1usize, 2] {
        let design = design_of(&sub_bytes_vhdl(n));
        let (rd, median) = measure(5, || {
            ReachingDefinitions::compute(&design, &RdOptions::default())
        });
        let labels = rd.cfg.labels().len();
        println!("    sub_bytes({n}) labels={labels:<5} median={median:?}");
        points.push(BenchPoint {
            workload: "rd_dense",
            size: n,
            tuples: labels,
            median_ns: median.as_nanos(),
        });
    }
    for n in [40usize, 160] {
        let design = design_of(&chain_src(n));
        let (rd, median) = measure(5, || {
            ReachingDefinitions::compute(&design, &RdOptions::default())
        });
        let labels = rd.cfg.labels().len();
        println!("    chain({n})    labels={labels:<5} median={median:?}");
        points.push(BenchPoint {
            workload: "rd_dense_chain",
            size: n,
            tuples: labels,
            median_ns: median.as_nanos(),
        });
    }

    // Dense simulator (compiled interned core): the AES SubBytes family to
    // quiescence — a cold `U` pass plus one driven block — including the
    // per-design compile.  `tuples` records the delta-cycle count.
    println!("  dense simulator (compiled interned core) to quiescence:");
    for n in [1usize, 2] {
        let design = design_of(&sub_bytes_vhdl(n));
        let (deltas, median) = measure(5, || {
            let mut sim = vhdl1_sim::Simulator::new(&design).expect("sub_bytes compiles");
            sim.run_until_quiescent(50).expect("cold pass quiesces");
            for i in 0..n {
                sim.drive_input_unsigned(&format!("a_{i}"), 0x53).unwrap();
            }
            sim.run_until_quiescent(50).expect("driven pass quiesces");
            sim.delta_count()
        });
        println!("    sub_bytes({n}) deltas={deltas:<3} median={median:?}");
        points.push(BenchPoint {
            workload: "sim_dense",
            size: n,
            tuples: deltas as usize,
            median_ns: median.as_nanos(),
        });
    }

    // Batch corpus analysis through the vhdl1c driver: a 50-design corpus
    // swept across worker counts (`tuples` records the corpus size).  On a
    // single-core container the series is flat; on multi-core hardware it is
    // the parallel-speedup trajectory of the worker pool.
    println!("  corpus batch analysis (vhdl1c driver, 50 designs):");
    let jobs: Vec<Job> = generate(&CorpusSpec::new(7, 50))
        .into_iter()
        .map(Job::from_generated)
        .collect();
    for workers in [1usize, 2, 4, 8] {
        let opts = BatchOptions {
            jobs: workers,
            ..BatchOptions::default()
        };
        let (batch, median) = measure(5, || run_batch(&jobs, &opts));
        assert!(batch.check_ok(), "corpus batch must stay clean");
        println!(
            "    jobs={workers:<3} designs={:<4} violations={:<4} median={median:?}",
            batch.designs.len(),
            batch.total_violations()
        );
        points.push(BenchPoint {
            workload: "corpus_scaling",
            size: workers,
            tuples: batch.designs.len(),
            median_ns: median.as_nanos(),
        });
    }

    // Cache efficacy: the same corpus twice in one batch — the second half
    // is served from the content-hash cache.
    let mut doubled = jobs.clone();
    doubled.extend(jobs.iter().cloned().map(|mut j| {
        j.name = format!("{}_again", j.name);
        j
    }));
    let opts = BatchOptions::default();
    let (batch, median) = measure(5, || run_batch(&doubled, &opts));
    assert_eq!(batch.cache_hits, jobs.len());
    println!(
        "    cached rerun: designs={} cache_hits={} median={median:?}",
        batch.designs.len(),
        batch.cache_hits
    );
    points.push(BenchPoint {
        workload: "corpus_cached_rerun",
        size: doubled.len(),
        tuples: batch.cache_hits,
        median_ns: median.as_nanos(),
    });

    // Engine memo table: the same 50-design corpus analysed through a cold
    // engine (fresh session per run: parse + all stages) and a warm one
    // (every source a content-hash hit: no parsing, no stages).  `size`
    // distinguishes the two legs: 0 = cold, 1 = warm.
    println!("  engine cold vs warm (50 corpus designs through analyze_source):");
    let (edges, cold_median) = measure(5, || {
        let engine = Engine::default();
        jobs.iter()
            .map(|j| {
                let a = engine.analyze_source(&j.source).expect("corpus parses");
                a.flow_graph().expect("unlimited budget").edge_count()
            })
            .sum::<usize>()
    });
    println!("    cold: edges={edges:<6} median={cold_median:?}");
    points.push(BenchPoint {
        workload: "engine_cold_vs_warm",
        size: 0,
        tuples: jobs.len(),
        median_ns: cold_median.as_nanos(),
    });
    let warm_engine = Engine::default();
    for j in &jobs {
        let a = warm_engine
            .analyze_source(&j.source)
            .expect("corpus parses");
        let _ = a.flow_graph();
    }
    let (warm_edges, warm_median) = measure(5, || {
        jobs.iter()
            .map(|j| {
                let a = warm_engine.analyze_source(&j.source).expect("cached");
                a.flow_graph().expect("unlimited budget").edge_count()
            })
            .sum::<usize>()
    });
    assert_eq!(edges, warm_edges, "warm engine must reproduce cold results");
    println!("    warm: edges={warm_edges:<6} median={warm_median:?}");
    points.push(BenchPoint {
        workload: "engine_cold_vs_warm",
        size: 1,
        tuples: jobs.len(),
        median_ns: warm_median.as_nanos(),
    });

    // Tracing toggle: the cold sweep again with span collection enabled.
    // The *untraced* legs above are what the gate compares against the
    // committed baseline — instrumentation sitting in the same code path
    // means any disabled-path overhead would surface as an
    // `engine_cold_vs_warm` regression.  This traced leg is its own series
    // (informational until baselined) showing what `--profile` costs.
    assert!(
        Engine::default().trace_sink().is_none(),
        "disabled tracing must allocate no sink at all"
    );
    let traced_options = AnalysisOptions::builder().trace(true).build();
    let (traced_edges, traced_median) = measure(5, || {
        let engine = Engine::with_options(traced_options);
        jobs.iter()
            .map(|j| {
                let a = engine.analyze_source(&j.source).expect("corpus parses");
                a.flow_graph().expect("unlimited budget").edge_count()
            })
            .sum::<usize>()
    });
    assert_eq!(edges, traced_edges, "tracing must not change any artifact");
    println!("    traced cold: edges={traced_edges:<6} median={traced_median:?}");
    points.push(BenchPoint {
        workload: "engine_traced_cold",
        size: 0,
        tuples: jobs.len(),
        median_ns: traced_median.as_nanos(),
    });

    // Demand-driven laziness: querying only the base flow graph through a
    // default-options engine skips the Table-9 closure entirely; the eager
    // one-shot computes it regardless.  Same designs, same options — the gap
    // is the work the lazy API never does.
    println!("  lazy graph-only query vs eager full pipeline (default options):");
    for n in [40usize, 160] {
        let design = design_of(&chain_src(n));
        let lazy_engine = Engine::default();
        let (lazy_edges, lazy_median) = measure(5, || {
            lazy_engine
                .analyze(&design)
                .base_flow_graph()
                .expect("unlimited budget")
                .edge_count()
        });
        let (eager_edges, eager_median) = measure(5, || {
            analyze_with(&design, &AnalysisOptions::default())
                .base_flow_graph()
                .edge_count()
        });
        assert_eq!(lazy_edges, eager_edges);
        assert_eq!(
            lazy_engine.stats().improved,
            0,
            "lazy query must skip Table 9"
        );
        println!("    chain({n}): lazy={lazy_median:?} eager={eager_median:?} edges={lazy_edges}");
        points.push(BenchPoint {
            workload: "engine_lazy_graph_only",
            size: n,
            tuples: lazy_edges,
            median_ns: lazy_median.as_nanos(),
        });
        points.push(BenchPoint {
            workload: "engine_eager_full",
            size: n,
            tuples: eager_edges,
            median_ns: eager_median.as_nanos(),
        });
    }

    let json: String = points
        .iter()
        .map(|p| {
            format!(
                "  {{\"workload\": \"{}\", \"size\": {}, \"tuples\": {}, \"median_ns\": {}}}",
                p.workload, p.size, p.tuples, p.median_ns
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!("[\n{json}\n]\n");
    // Benches run with the package directory as CWD; anchor the summary at
    // the workspace root so successive PRs overwrite the same file.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_alfp.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("  wrote BENCH_alfp.json ({} points)", points.len()),
        Err(e) => println!("  could not write BENCH_alfp.json: {e}"),
    }
    println!();
}

fn print_series() {
    println!("== COMPLEX: analysis time vs program size (single-shot timings) ==");
    println!("  chain length sweep (1 process):");
    for n in [10usize, 20, 40, 80, 160] {
        let design = design_of(&chain_src(n));
        let start = Instant::now();
        let result = analyze_with(&design, &AnalysisOptions::base());
        let elapsed = start.elapsed();
        println!(
            "    n={:<4} labels={:<5} edges={:<5} time={:?}",
            n,
            design.max_label(),
            result.base_flow_graph().edge_count(),
            elapsed
        );
    }
    println!("  process pipeline sweep (8 statements per process):");
    for procs in [1usize, 2, 4, 8] {
        let design = design_of(&pipeline_src(procs, 8));
        let start = Instant::now();
        let result = analyze_with(&design, &AnalysisOptions::base());
        let elapsed = start.elapsed();
        println!(
            "    processes={:<3} labels={:<5} edges={:<5} time={:?}",
            procs,
            design.max_label(),
            result.base_flow_graph().edge_count(),
            elapsed
        );
    }
    println!();
}

fn bench_scaling(c: &mut Criterion) {
    print_series();
    alfp_series();

    let mut group = c.benchmark_group("scaling_chain");
    group.sample_size(20);
    for n in [10usize, 40, 160] {
        let design = design_of(&chain_src(n));
        group.bench_with_input(BenchmarkId::new("full_analysis", n), &design, |b, d| {
            b.iter(|| analyze_with(black_box(d), &AnalysisOptions::base()).base_flow_graph())
        });
        group.bench_with_input(
            BenchmarkId::new("reaching_definitions", n),
            &design,
            |b, d| b.iter(|| ReachingDefinitions::compute(black_box(d), &RdOptions::default())),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("scaling_processes");
    group.sample_size(20);
    for procs in [2usize, 4, 8] {
        let design = design_of(&pipeline_src(procs, 8));
        group.bench_with_input(BenchmarkId::new("full_analysis", procs), &design, |b, d| {
            b.iter(|| analyze_with(black_box(d), &AnalysisOptions::base()).base_flow_graph())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
