//! COMPLEX — Section 7: scaling of the implementation with program size.
//! The paper reports a worst-case complexity of O(n^5) with a conjectured
//! cubic bound and notes that the bit-vector frameworks behave linearly in
//! practice.  This bench sweeps synthetic program families (assignment
//! chains and process pipelines) and reports the measured analysis times.

use bench::workloads::{chain_src, design_of, pipeline_src};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use vhdl1_dataflow::{RdOptions, ReachingDefinitions};
use vhdl1_infoflow::{analyze_with, AnalysisOptions};

fn print_series() {
    println!("== COMPLEX: analysis time vs program size (single-shot timings) ==");
    println!("  chain length sweep (1 process):");
    for n in [10usize, 20, 40, 80, 160] {
        let design = design_of(&chain_src(n));
        let start = Instant::now();
        let result = analyze_with(&design, &AnalysisOptions::base());
        let elapsed = start.elapsed();
        println!(
            "    n={:<4} labels={:<5} edges={:<5} time={:?}",
            n,
            design.max_label(),
            result.base_flow_graph().edge_count(),
            elapsed
        );
    }
    println!("  process pipeline sweep (8 statements per process):");
    for procs in [1usize, 2, 4, 8] {
        let design = design_of(&pipeline_src(procs, 8));
        let start = Instant::now();
        let result = analyze_with(&design, &AnalysisOptions::base());
        let elapsed = start.elapsed();
        println!(
            "    processes={:<3} labels={:<5} edges={:<5} time={:?}",
            procs,
            design.max_label(),
            result.base_flow_graph().edge_count(),
            elapsed
        );
    }
    println!();
}

fn bench_scaling(c: &mut Criterion) {
    print_series();

    let mut group = c.benchmark_group("scaling_chain");
    group.sample_size(20);
    for n in [10usize, 40, 160] {
        let design = design_of(&chain_src(n));
        group.bench_with_input(BenchmarkId::new("full_analysis", n), &design, |b, d| {
            b.iter(|| analyze_with(black_box(d), &AnalysisOptions::base()).base_flow_graph())
        });
        group.bench_with_input(BenchmarkId::new("reaching_definitions", n), &design, |b, d| {
            b.iter(|| ReachingDefinitions::compute(black_box(d), &RdOptions::default()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scaling_processes");
    group.sample_size(20);
    for procs in [2usize, 4, 8] {
        let design = design_of(&pipeline_src(procs, 8));
        group.bench_with_input(BenchmarkId::new("full_analysis", procs), &design, |b, d| {
            b.iter(|| analyze_with(black_box(d), &AnalysisOptions::base()).base_flow_graph())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
