//! FIG3 — Figure 3: non-transitive information-flow graphs for the
//! illustration programs (a) `c := b; b := a` and (b) `b := a; c := b`,
//! analysed exactly as the paper presents them (straight-line, base closure),
//! and contrasted with Kemmerer's transitive closure.

use bench::workloads::{design_of, program_a_src, program_b_src};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vhdl1_infoflow::{analyze_with, AnalysisOptions};

fn sequential_base_options() -> AnalysisOptions {
    let mut opts = AnalysisOptions::sequential_illustration();
    opts.improved = false;
    opts
}

fn print_figure3() {
    println!("== FIG3: information-flow graphs for programs (a) and (b) ==");
    for (name, src) in [
        ("(a) c:=b; b:=a", program_a_src()),
        ("(b) b:=a; c:=b", program_b_src()),
    ] {
        let design = design_of(&src);
        let result = analyze_with(&design, &sequential_base_options());
        let ours = result.base_flow_graph();
        let kemmerer = result.kemmerer_flow_graph();
        let fmt = |g: &vhdl1_infoflow::FlowGraph| {
            let mut edges: Vec<String> = g.edges().map(|(f, t)| format!("{f}->{t}")).collect();
            edges.sort();
            edges.join(", ")
        };
        println!("program {name}");
        println!(
            "  this paper : {{{}}}   transitive: {}",
            fmt(&ours),
            ours.is_transitive()
        );
        println!(
            "  kemmerer   : {{{}}}   transitive: {}",
            fmt(&kemmerer),
            kemmerer.is_transitive()
        );
    }
    println!();
}

fn bench_fig3(c: &mut Criterion) {
    print_figure3();
    let design_a = design_of(&program_a_src());
    let design_b = design_of(&program_b_src());
    let opts = sequential_base_options();
    let mut group = c.benchmark_group("fig3");
    group.bench_function("analyze_program_a", |b| {
        b.iter(|| analyze_with(black_box(&design_a), &opts).base_flow_graph())
    });
    group.bench_function("analyze_program_b", |b| {
        b.iter(|| analyze_with(black_box(&design_b), &opts).base_flow_graph())
    });
    group.bench_function("kemmerer_program_a", |b| {
        b.iter(|| vhdl1_infoflow::kemmerer_graph(black_box(&design_a)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
