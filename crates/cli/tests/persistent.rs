//! End-to-end guarantees of the persistent artifact cache (`--cache-dir`):
//! a warm rerun over the same directory performs **zero** frontend/stage
//! work (counter-verified) and produces byte-identical reports, and the
//! daemon's `run_batch_on` seam matches `run_batch` byte-for-byte.

use vhdl1_cli::driver::{
    run_batch, run_batch_on, run_batch_traced, BatchOptions, Format, Job, VerifyOptions,
    DEFAULT_PERSISTENT_CACHE_CAP,
};
use vhdl1_corpus::{generate, CorpusSpec};
use vhdl1_infoflow::{CachePolicy, Engine, EngineConfig};

/// Self-cleaning scratch directory.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "vhdl1-cli-persistent-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn corpus_jobs(seed: u64, count: usize) -> Vec<Job> {
    generate(&CorpusSpec::new(seed, count))
        .into_iter()
        .map(Job::from_generated)
        .collect()
}

fn persistent_opts(dir: &std::path::Path) -> BatchOptions {
    BatchOptions {
        jobs: 2,
        cache: CachePolicy::Persistent {
            dir: dir.to_path_buf(),
            cap: DEFAULT_PERSISTENT_CACHE_CAP,
        },
        ..BatchOptions::default()
    }
}

#[test]
fn warm_rerun_does_zero_frontend_work_and_matches_bytes() {
    let tmp = TempDir::new("analyze");
    let jobs = corpus_jobs(11, 8);
    let opts = persistent_opts(&tmp.0);

    let (cold, cold_t) = run_batch_traced(&jobs, &opts);
    assert!(cold_t.stats.frontend > 0, "cold run must actually parse");
    assert!(cold_t.stats.store_writes > 0, "cold run must write through");

    // `run_batch_traced` builds a fresh engine per call, so the second run
    // models a new process over the same cache directory.
    let (warm, warm_t) = run_batch_traced(&jobs, &opts);
    assert_eq!(
        warm.to_json(),
        cold.to_json(),
        "reports must be byte-identical"
    );
    assert_eq!(warm_t.stats.frontend, 0, "warm rerun must not parse");
    assert_eq!(warm_t.stats.rd, 0, "warm rerun must not run RD");
    assert_eq!(
        warm_t.stats.global, 0,
        "warm rerun must not run the closure"
    );
    assert_eq!(
        warm_t.stats.flow_graph, 0,
        "warm rerun must not build graphs"
    );
    assert_eq!(warm_t.stats.store_hits as usize, warm_t.unique_jobs);
}

#[test]
fn warm_dot_rerun_renders_labels_without_frontend_work() {
    let tmp = TempDir::new("dot");
    let jobs = corpus_jobs(19, 6);
    let mut opts = persistent_opts(&tmp.0);
    opts.format = Format::Dot;

    let (cold, cold_t) = run_batch_traced(&jobs, &opts);
    assert!(cold_t.stats.frontend > 0);
    let cold_dot = cold.to_dot();
    assert!(
        cold_dot.contains("tooltip=\"accessed at "),
        "DOT rendering must carry the node access labels"
    );

    // The access-label table is persisted with the artifact, so a warm
    // rerun renders byte-identical DOT without re-elaborating anything —
    // the last output format that used to force frontend work from disk.
    let (warm, warm_t) = run_batch_traced(&jobs, &opts);
    assert_eq!(warm.to_dot(), cold_dot, "DOT bytes must survive the store");
    assert_eq!(warm_t.stats.frontend, 0, "warm DOT rerun must not parse");
    assert_eq!(warm_t.stats.flow_graph, 0);
}

#[test]
fn warm_verify_rerun_serves_dynamic_flows_from_disk() {
    let tmp = TempDir::new("verify");
    let jobs = corpus_jobs(13, 4);
    let mut opts = persistent_opts(&tmp.0);
    opts.verify = Some(VerifyOptions { rounds: 4, seed: 1 });

    let (cold, cold_t) = run_batch_traced(&jobs, &opts);
    assert!(cold_t.stats.dynamic_flows > 0);

    let (warm, warm_t) = run_batch_traced(&jobs, &opts);
    assert_eq!(warm.to_json(), cold.to_json());
    assert_eq!(warm_t.stats.frontend, 0);
    assert_eq!(
        warm_t.stats.dynamic_flows, 0,
        "witness sweeps must be served from the artifact store"
    );
}

#[test]
fn run_batch_on_matches_run_batch_bytes_even_on_a_warm_engine() {
    let jobs = corpus_jobs(17, 6);
    let opts = BatchOptions {
        jobs: 2,
        ..BatchOptions::default()
    };
    let expected = run_batch(&jobs, &opts).to_json();

    // A long-lived daemon engine answers the same batch twice; the second
    // pass is fully memo-warm yet the report bytes must not change (the
    // report-level dedup flags reflect intra-batch structure only).
    let engine = Engine::new(EngineConfig {
        options: opts.analysis,
        cache: CachePolicy::Capped(64),
    });
    let first = run_batch_on(&engine, &jobs, &opts).to_json();
    let second = run_batch_on(&engine, &jobs, &opts).to_json();
    assert_eq!(first, expected);
    assert_eq!(second, expected, "cache warmth must never leak into bytes");
    assert!(engine.stats().cache_hits > 0, "second pass was memo-served");

    // Worker-count independence on the same engine.
    let wide = run_batch_on(
        &engine,
        &jobs,
        &BatchOptions {
            jobs: 8,
            ..BatchOptions::default()
        },
    )
    .to_json();
    assert_eq!(wide, expected);
}
