//! Seeded fuzz-style differential test over the adversarial corpus.
//!
//! Every hostile design — deep expression nests, pathological sensitivity
//! fan-in, fixpoint-stressing signal chains, oversized literals, truncated
//! and garbage byte streams — must come out of the pipeline as either a
//! successful analysis or a *structured* error/degradation.  A panic
//! anywhere is a bug, which the test enforces with `catch_unwind` around
//! both entry points:
//!
//! * the library path (`Engine::analyze_source` + forcing every stage), and
//! * the batch path (`run_batch`), under a tight and a loose budget.

use std::panic::{catch_unwind, AssertUnwindSafe};
use vhdl1_cli::driver::{run_batch, BatchOptions, Job};
use vhdl1_corpus::{generate, CorpusSpec, Family};
use vhdl1_infoflow::{Budget, Engine, EngineConfig, Policy};

const SEEDS: [u64; 3] = [1, 2, 3];
const DESIGNS_PER_SEED: usize = 10;

fn budgets() -> Vec<(&'static str, Budget)> {
    vec![("tight", Budget::tight()), ("standard", Budget::standard())]
}

/// Forces every stage of a lazy analysis; each must return `Ok` or a
/// structured `EngineError` — never panic (the caller wraps us in
/// `catch_unwind` to prove it).
fn force_all_stages(engine: &Engine, source: &str) -> Result<(), String> {
    let analysis = match engine.analyze_source(source) {
        Ok(analysis) => analysis,
        Err(e) => {
            // Structured failure: must render and carry a phase or stage.
            let rendered = e.to_string();
            if rendered.is_empty() {
                return Err("empty error rendering".to_string());
            }
            if e.phase().is_none() && e.stage().is_none() {
                return Err(format!("error without phase or stage: {rendered}"));
            }
            return Ok(());
        }
    };
    let _ = analysis.rd();
    let _ = analysis.specialized();
    let _ = analysis.global();
    let _ = analysis.improved();
    let _ = analysis.flow_graph();
    let _ = analysis.merged_flow_graph();
    let _ = analysis.kemmerer_graph();
    let _ = analysis.audit(&Policy::new());
    let _ = analysis.smoke(1_000);
    Ok(())
}

#[test]
fn hostile_designs_never_panic_the_engine() {
    for seed in SEEDS {
        let spec = CorpusSpec::new(seed, DESIGNS_PER_SEED).with_families(vec![Family::Hostile]);
        for (budget_name, budget) in budgets() {
            let engine = Engine::new(EngineConfig {
                options: vhdl1_infoflow::AnalysisOptions::builder()
                    .budget(budget)
                    .build(),
                ..EngineConfig::default()
            });
            for design in generate(&spec) {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    force_all_stages(&engine, &design.source)
                }));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(diag)) => panic!(
                        "{} (seed {seed}, budget {budget_name}): unstructured failure: {diag}",
                        design.name
                    ),
                    Err(_) => panic!(
                        "{} (seed {seed}, budget {budget_name}): the engine panicked",
                        design.name
                    ),
                }
            }
        }
    }
}

#[test]
fn hostile_batches_never_panic_and_account_for_every_job() {
    for seed in SEEDS {
        let spec = CorpusSpec::new(seed, DESIGNS_PER_SEED).with_families(vec![Family::Hostile]);
        let jobs: Vec<Job> = generate(&spec)
            .into_iter()
            .map(Job::from_generated)
            .collect();
        for (budget_name, budget) in budgets() {
            for workers in [1, 4] {
                let mut opts = BatchOptions {
                    jobs: workers,
                    ..BatchOptions::default()
                };
                opts.analysis.budget = budget;
                let batch = catch_unwind(AssertUnwindSafe(|| run_batch(&jobs, &opts)))
                    .unwrap_or_else(|_| {
                        panic!("run_batch panicked (seed {seed}, budget {budget_name})")
                    });
                // Every job lands in exactly one bucket (no smoke, so a
                // report never carries a degradation alongside).
                assert_eq!(
                    batch.designs.len() + batch.errors.len() + batch.degraded.len(),
                    jobs.len(),
                    "jobs lost or double-counted (seed {seed}, budget {budget_name})"
                );
                // No panic slipped through the pool's isolation either.
                for e in &batch.errors {
                    assert_ne!(
                        e.phase.as_deref(),
                        Some("panic"),
                        "{}: worker panicked: {}",
                        e.name,
                        e.error
                    );
                }
                // Degradations name a stage; the report renders cleanly.
                for d in &batch.degraded {
                    assert!(!d.stage.is_empty(), "{}: degraded without stage", d.name);
                }
                let json = batch.to_json();
                assert_eq!(json.matches('{').count(), json.matches('}').count());
            }
        }
    }
}
