//! Golden-file tests for the `vhdl1c` emitters, plus end-to-end determinism
//! checks of the `gen | analyze` pipeline.
//!
//! Regenerate the golden files after an intentional schema change with:
//! `UPDATE_GOLDEN=1 cargo test -p vhdl1-cli --test golden`.

use std::process::{Command, Stdio};
use vhdl1_cli::driver::{run_batch, BatchOptions, Format, Job, VerifyOptions};
use vhdl1_corpus::{generate, write_manifest, CorpusSpec, Family};

/// The quickstart-sized fixture shared by the JSON and DOT goldens.
const GATEKEEPER: &str = "\
entity gatekeeper is
  port(
    data_in : in std_logic_vector(7 downto 0);
    enable  : in std_logic;
    data_out : out std_logic_vector(7 downto 0)
  );
end gatekeeper;
architecture rtl of gatekeeper is
  signal latched : std_logic_vector(7 downto 0);
begin
  latch : process
  begin
    latched <= data_in;
    wait on data_in;
  end process latch;
  forward : process
    variable buffered : std_logic_vector(7 downto 0);
  begin
    if enable = '1' then
      buffered := latched;
    else
      buffered := \"00000000\";
    end if;
    data_out <= buffered;
    wait on latched, enable;
  end process forward;
end rtl;
";

fn fixture_jobs() -> Vec<Job> {
    let mut jobs = vec![Job::from_source("gatekeeper", GATEKEEPER)];
    // Two tiny corpus entries (one clean, one leaky) exercise the
    // ground-truth fields of the report.
    let spec = CorpusSpec::new(1, 2).with_families(vec![Family::Fsm]);
    jobs.extend(generate(&spec).into_iter().map(Job::from_generated));
    jobs
}

fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file `{path}` ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "`{name}` drifted from its golden file; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn json_report_matches_golden() {
    let batch = run_batch(&fixture_jobs(), &BatchOptions::default());
    check_golden("report.json", &batch.to_json());
}

#[test]
fn dot_report_matches_golden() {
    let batch = run_batch(
        &fixture_jobs(),
        &BatchOptions {
            format: Format::Dot,
            ..BatchOptions::default()
        },
    );
    check_golden("graphs.dot", &batch.to_dot());
}

#[test]
fn text_report_matches_golden() {
    let batch = run_batch(
        &fixture_jobs(),
        &BatchOptions {
            format: Format::Text,
            ..BatchOptions::default()
        },
    );
    check_golden("report.txt", &batch.to_text());
}

fn verify_options() -> BatchOptions {
    BatchOptions {
        verify: Some(VerifyOptions { rounds: 8, seed: 1 }),
        ..BatchOptions::default()
    }
}

#[test]
fn verify_json_report_matches_golden() {
    let batch = run_batch(&fixture_jobs(), &verify_options());
    check_golden("verify.json", &batch.to_json());
}

#[test]
fn verify_text_report_matches_golden() {
    let batch = run_batch(
        &fixture_jobs(),
        &BatchOptions {
            format: Format::Text,
            ..verify_options()
        },
    );
    check_golden("verify.txt", &batch.to_text());
}

/// Verify reports are byte-identical across repeated runs and across worker
/// counts: the dynflow sweep depends only on `(design, rounds, seed)`.
#[test]
fn verify_report_is_deterministic_across_runs_and_worker_counts() {
    let jobs: Vec<Job> = generate(&CorpusSpec::new(7, 8))
        .into_iter()
        .map(Job::from_generated)
        .collect();
    let first = run_batch(&jobs, &verify_options()).to_json();
    let again = run_batch(&jobs, &verify_options()).to_json();
    assert_eq!(first, again, "verify must be pure across runs");
    for workers in [2, 4] {
        let parallel = run_batch(
            &jobs,
            &BatchOptions {
                jobs: workers,
                ..verify_options()
            },
        )
        .to_json();
        assert_eq!(
            first, parallel,
            "verify output must not depend on --jobs {workers}"
        );
    }
}

#[test]
fn same_seed_means_byte_identical_corpus_and_report() {
    let manifest_a = write_manifest(&generate(&CorpusSpec::new(7, 12)));
    let manifest_b = write_manifest(&generate(&CorpusSpec::new(7, 12)));
    assert_eq!(manifest_a, manifest_b, "corpus generation must be pure");

    let jobs: Vec<Job> = generate(&CorpusSpec::new(7, 12))
        .into_iter()
        .map(Job::from_generated)
        .collect();
    let report_a = run_batch(&jobs, &BatchOptions::default()).to_json();
    let report_b = run_batch(
        &jobs,
        &BatchOptions {
            jobs: 4,
            ..BatchOptions::default()
        },
    )
    .to_json();
    assert_eq!(
        report_a, report_b,
        "reports must be byte-identical regardless of worker count"
    );
}

/// Drives the real binary end to end: `vhdl1c gen | vhdl1c analyze`.
#[test]
fn binary_pipe_gen_analyze() {
    let bin = env!("CARGO_BIN_EXE_vhdl1c");
    let mut gen = Command::new(bin)
        .args(["gen", "--seed", "7", "--count", "8"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn vhdl1c gen");
    let analyze = Command::new(bin)
        .args(["analyze", "--jobs", "2", "--format", "json", "--check"])
        .stdin(gen.stdout.take().expect("gen stdout"))
        .stdout(Stdio::piped())
        .output()
        .expect("run vhdl1c analyze");
    assert!(gen.wait().expect("wait for gen").success());
    assert!(
        analyze.status.success(),
        "analyze failed: {}",
        String::from_utf8_lossy(&analyze.stderr)
    );
    let json = String::from_utf8(analyze.stdout).unwrap();
    assert!(json.contains("\"designs\": ["));
    assert!(json.contains("\"ground_truth_mismatches\": 0"));
    assert!(json.contains("\"errors\": 0"));
}

/// Drives the real binary end to end: `vhdl1c gen | vhdl1c verify --check`.
#[test]
fn binary_pipe_gen_verify() {
    let bin = env!("CARGO_BIN_EXE_vhdl1c");
    let mut gen = Command::new(bin)
        .args(["gen", "--seed", "7", "--count", "8"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn vhdl1c gen");
    let verify = Command::new(bin)
        .args([
            "verify",
            "--jobs",
            "2",
            "--rounds",
            "8",
            "--seed",
            "1",
            "--min-coverage",
            "0.9",
            "--check",
        ])
        .stdin(gen.stdout.take().expect("gen stdout"))
        .stdout(Stdio::piped())
        .output()
        .expect("run vhdl1c verify");
    assert!(gen.wait().expect("wait for gen").success());
    assert!(
        verify.status.success(),
        "verify failed: {}",
        String::from_utf8_lossy(&verify.stderr)
    );
    let json = String::from_utf8(verify.stdout).unwrap();
    assert!(json.contains("\"schema\": 3,"));
    assert!(json.contains("\"soundness_violations\": 0"));
    assert!(json.contains("\"dynflow_failures\": 0"));
}

/// The binary rejects unknown options instead of silently ignoring them.
#[test]
fn binary_rejects_unknown_flags() {
    let bin = env!("CARGO_BIN_EXE_vhdl1c");
    let out = Command::new(bin)
        .args(["analyze", "--frobnicate"])
        .output()
        .expect("run vhdl1c");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}
