//! End-to-end guarantees of the incremental edit-stream replay: reports
//! are byte-identical to from-scratch batch analysis at every worker
//! count, a cold engine recomputes exactly one process per edit
//! (counter-verified), and a warm persistent store only ever lowers the
//! recomputation — never the answer.

use vhdl1_cli::driver::{
    run_batch, run_edit_stream, BatchOptions, Job, DEFAULT_PERSISTENT_CACHE_CAP,
};
use vhdl1_corpus::edit_stream;
use vhdl1_infoflow::CachePolicy;

/// Self-cleaning scratch directory.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "vhdl1-cli-edit-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The replay job list `vhdl1c edit-stream` builds: base + every revision,
/// in order, named by revision index.
fn stream_jobs(seed: u64, processes: usize, edits: usize) -> Vec<Job> {
    let stream = edit_stream(seed, processes, edits);
    stream
        .sources()
        .into_iter()
        .enumerate()
        .map(|(revision, src)| Job::from_source(format!("{}@r{revision}", stream.name), src))
        .collect()
}

#[test]
fn replay_matches_fresh_batch_bytes_across_worker_counts() {
    let jobs = stream_jobs(7, 8, 4);
    let (incremental, _) = run_edit_stream(&jobs, &BatchOptions::default());
    let incremental = incremental.to_json();
    for workers in [1, 2, 4] {
        let fresh = run_batch(
            &jobs,
            &BatchOptions {
                jobs: workers,
                ..BatchOptions::default()
            },
        )
        .to_json();
        assert_eq!(
            incremental, fresh,
            "incremental replay must be byte-identical to a fresh \
             `--jobs {workers}` batch"
        );
    }
}

#[test]
fn cold_replay_recomputes_exactly_one_process_per_edit() {
    let (processes, edits) = (8, 4);
    let (batch, telemetry) =
        run_edit_stream(&stream_jobs(7, processes, edits), &BatchOptions::default());
    assert!(batch.check_ok());
    // The base revision computes every process; each edit recomputes the
    // touched process only and reuses the other seven.
    assert_eq!(telemetry.stats.units_recomputed, (processes + edits) as u64);
    assert_eq!(
        telemetry.stats.units_reused,
        (edits * (processes - 1)) as u64
    );
}

#[test]
fn warm_store_replay_only_lowers_recomputation_and_keeps_bytes() {
    let tmp = TempDir::new("warm");
    let jobs = stream_jobs(11, 6, 3);
    let opts = BatchOptions {
        cache: CachePolicy::Persistent {
            dir: tmp.0.clone(),
            cap: DEFAULT_PERSISTENT_CACHE_CAP,
        },
        ..BatchOptions::default()
    };

    let (cold, cold_t) = run_edit_stream(&jobs, &opts);
    assert_eq!(cold_t.stats.units_recomputed, 6 + 3);

    // A fresh engine over the warm directory serves every unit from disk:
    // nothing recomputes, every process of every revision is a reuse, and
    // the report bytes cannot tell the difference.
    let (warm, warm_t) = run_edit_stream(&jobs, &opts);
    assert_eq!(warm.to_json(), cold.to_json());
    assert_eq!(warm_t.stats.units_recomputed, 0, "warm replay recomputed");
    assert_eq!(warm_t.stats.units_reused, ((3 + 1) * 6) as u64);
    assert_eq!(warm_t.stats.frontend, 0, "warm replay must not re-parse");
}
