//! End-to-end guarantees of the `--profile`/`--stats` telemetry layer:
//! profiling never changes a report byte, deterministic profile counters
//! are worker-count independent, and watchdog/deadline trips surface as
//! trace events — not as report mutations.

use vhdl1_cli::driver::{run_batch, run_batch_traced, BatchOptions, Job, VerifyOptions};
use vhdl1_cli::profile::render_json;
use vhdl1_corpus::{generate, CorpusSpec};

fn corpus_jobs(seed: u64, count: usize) -> Vec<Job> {
    generate(&CorpusSpec::new(seed, count))
        .into_iter()
        .map(Job::from_generated)
        .collect()
}

#[test]
fn profiling_never_changes_analyze_report_bytes() {
    let jobs = corpus_jobs(7, 10);
    for workers in [1, 4] {
        let plain = run_batch(
            &jobs,
            &BatchOptions {
                jobs: workers,
                ..BatchOptions::default()
            },
        );
        let (profiled, telemetry) = run_batch_traced(
            &jobs,
            &BatchOptions {
                jobs: workers,
                profile: true,
                ..BatchOptions::default()
            },
        );
        assert_eq!(
            plain.to_json(),
            profiled.to_json(),
            "profiling changed analyze report bytes at jobs={workers}"
        );
        assert_eq!(plain.to_text(), profiled.to_text());
        let snapshot = telemetry.trace.expect("profile run must carry a trace");
        assert!(!snapshot.spans.is_empty(), "no spans collected");
    }
}

#[test]
fn profiling_never_changes_verify_report_bytes() {
    let jobs = corpus_jobs(5, 6);
    let base = BatchOptions {
        verify: Some(VerifyOptions::default()),
        smoke: true,
        ..BatchOptions::default()
    };
    let plain = run_batch(&jobs, &base);
    let (profiled, telemetry) = run_batch_traced(
        &jobs,
        &BatchOptions {
            profile: true,
            ..base
        },
    );
    assert_eq!(plain.to_json(), profiled.to_json());
    let snapshot = telemetry.trace.unwrap();
    assert!(
        snapshot.spans.iter().any(|s| s.stage == "dynamic_flows"),
        "verify run must trace the dynamic_flows stage"
    );
    assert!(snapshot.spans.iter().any(|s| s.stage == "smoke"));
}

#[test]
fn deterministic_counters_are_worker_count_independent() {
    // The acceptance criterion: stage runs, memo hits, work and items in
    // the profile's deterministic section must be byte-identical across
    // `--jobs 1/2/4` (wall-clock fields are excluded by construction).
    let jobs = corpus_jobs(11, 12);
    let mut sections = Vec::new();
    for workers in [1, 2, 4] {
        let (_, telemetry) = run_batch_traced(
            &jobs,
            &BatchOptions {
                jobs: workers,
                profile: true,
                ..BatchOptions::default()
            },
        );
        let json = render_json(&telemetry);
        let det = json
            .lines()
            .find(|l| l.trim_start().starts_with("\"deterministic\""))
            .expect("profile JSON carries a deterministic line")
            .to_string();
        sections.push(det);
    }
    assert_eq!(sections[0], sections[1], "jobs=1 vs jobs=2");
    assert_eq!(sections[0], sections[2], "jobs=1 vs jobs=4");
}

#[test]
fn span_counts_match_engine_stats() {
    let jobs = corpus_jobs(3, 8);
    let (_, telemetry) = run_batch_traced(
        &jobs,
        &BatchOptions {
            jobs: 2,
            profile: true,
            ..BatchOptions::default()
        },
    );
    let snapshot = telemetry.trace.unwrap();
    let count = |stage: &str| snapshot.spans.iter().filter(|s| s.stage == stage).count() as u64;
    let s = &telemetry.stats;
    assert_eq!(count("frontend"), s.frontend);
    assert_eq!(count("rd"), s.rd);
    assert_eq!(count("local"), s.local);
    assert_eq!(count("specialized"), s.specialized);
    assert_eq!(count("global"), s.global);
    assert_eq!(count("improved"), s.improved);
    assert_eq!(count("flow_graph"), s.flow_graph);
    assert_eq!(count("smoke"), s.smoke);
    assert_eq!(count("dynamic_flows"), s.dynamic_flows);
}

#[test]
fn expired_deadline_surfaces_as_trace_events() {
    // budget.deadline_ms = 0 trips the engine's own gate deterministically
    // before the first stage of every design; with profiling on each trip
    // is also recorded as a `deadline` trace event, and the report is the
    // same as the unprofiled run.
    let jobs = corpus_jobs(7, 4);
    let mut opts = BatchOptions {
        profile: true,
        ..BatchOptions::default()
    };
    opts.analysis.budget.deadline_ms = Some(0);
    let (report, telemetry) = run_batch_traced(&jobs, &opts);
    assert_eq!(report.degraded.len(), jobs.len());
    let snapshot = telemetry.trace.unwrap();
    assert!(
        snapshot.events.len() >= jobs.len(),
        "every degraded design must log a deadline event, got {:?}",
        snapshot.events
    );
    assert!(snapshot.events.iter().all(|e| e.kind == "deadline"));
    let mut unprofiled = opts.clone();
    unprofiled.profile = false;
    assert_eq!(run_batch(&jobs, &unprofiled).to_json(), report.to_json());
}

#[test]
fn watchdog_cancel_is_counted_and_traced() {
    // A zero watchdog deadline cancels every design's cooperative flag
    // within a few polls.  Cancellation is racy by nature (a design may
    // finish first), so assert consistency, not exact counts: every
    // watchdog trip that bit shows up as a degraded entry and (profiled)
    // as a `cancel`/`deadline` trace event.
    let jobs = corpus_jobs(13, 6);
    let opts = BatchOptions {
        profile: true,
        deadline_ms: Some(0),
        ..BatchOptions::default()
    };
    let (report, telemetry) = run_batch_traced(&jobs, &opts);
    let snapshot = telemetry.trace.unwrap();
    assert_eq!(
        report.degraded.len(),
        snapshot.events.len(),
        "one trace event per degraded design"
    );
    assert!(snapshot
        .events
        .iter()
        .all(|e| e.kind == "cancel" || e.kind == "deadline"));
}
