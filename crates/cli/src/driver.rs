//! Batch orchestration: jobs in, [`BatchReport`] out.
//!
//! Every job (a design source plus optional corpus ground truth) goes
//! through parse → elaborate → RD dataflow → closure → flow graph → policy
//! audit on a worker of the [`crate::pool`].  All workers share one
//! [`vhdl1_infoflow::Engine`] — the analysis memo table lives in the
//! library, keyed by the engine's content hash; the driver adds its own
//! *report-level* dedup on top: two jobs with identical source and
//! identical effective policy share one [`DesignReport`] (per-job
//! ground-truth bookkeeping is re-derived, never copied across the cache),
//! grouped up front so every report byte is independent of worker count.

use crate::pool::{self, PoolStats};
use crate::report::{
    analysis_report, BatchError, BatchReport, DegradedEntry, DesignReport, DynFlowSection,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vhdl1_corpus::GeneratedDesign;
use vhdl1_infoflow::{
    fnv1a64, Analysis, AnalysisOptions, CachePolicy, CancelFlag, Engine, EngineConfig, EngineError,
    EngineStats, Policy, TraceSnapshot,
};

/// Output formats of `vhdl1c analyze`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Machine-readable JSON report.
    Json,
    /// Concatenated Graphviz DOT flow graphs.
    Dot,
    /// Human-readable security report.
    Text,
}

impl Format {
    /// Parses a `--format` argument.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Format> {
        match s {
            "json" => Some(Format::Json),
            "dot" => Some(Format::Dot),
            "text" => Some(Format::Text),
            _ => None,
        }
    }
}

/// Ground truth attached to a job by the corpus generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobTruth {
    /// Corpus family name.
    pub family: String,
    /// Whether the generator marked the design leaky.
    pub leaky: bool,
    /// Secret inputs (security level 1 in the derived policy).
    pub secret_inputs: Vec<String>,
    /// Public outputs (security level 0).
    pub public_outputs: Vec<String>,
    /// Intended (declassified) flows.
    pub allowed_flows: Vec<(String, String)>,
    /// Flow edges the audit must report.
    pub expected_violations: Vec<(String, String)>,
    /// Whether the generator *expects* the front end to reject this design
    /// (hostile truncated/garbage sources).  Such a rejection is recorded
    /// as an expected error; a successful analysis is a ground-truth
    /// mismatch.
    pub expect_error: bool,
}

impl JobTruth {
    /// The policy implied by the ground truth: secrets at level 1, public
    /// sinks at level 0, intended flows declassified.
    pub fn derived_policy(&self) -> Policy {
        let mut policy = Policy::new();
        for s in &self.secret_inputs {
            policy.levels.insert(s.clone(), 1);
        }
        for p in &self.public_outputs {
            policy.levels.insert(p.clone(), 0);
        }
        for (from, to) in &self.allowed_flows {
            policy.allowed.insert((from.clone(), to.clone()));
        }
        policy
    }
}

/// One unit of batch work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Display name (design name for corpus entries, file stem for files).
    pub name: String,
    /// VHDL1 source text.
    pub source: String,
    /// Corpus ground truth, when the job came from a manifest.
    pub truth: Option<JobTruth>,
}

impl Job {
    /// A job from a plain source file (no ground truth).
    pub fn from_source(name: impl Into<String>, source: impl Into<String>) -> Job {
        Job {
            name: name.into(),
            source: source.into(),
            truth: None,
        }
    }

    /// A job from a generated corpus design.
    pub fn from_generated(d: GeneratedDesign) -> Job {
        Job {
            name: d.name,
            source: d.source,
            truth: Some(JobTruth {
                family: d.family.as_str().to_string(),
                leaky: d.leaky,
                secret_inputs: d.secret_inputs,
                public_outputs: d.public_outputs,
                allowed_flows: d.allowed_flows,
                expected_violations: d.expected_violations,
                expect_error: d.expect_error,
            }),
        }
    }
}

/// Configuration of a batch run.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker count (`<= 1` runs inline).
    pub jobs: usize,
    /// Output format; DOT renderings are only produced when selected.
    pub format: Format,
    /// Overrides every job's derived policy when set (`--policy`).
    pub policy: Option<Policy>,
    /// Record per-design and batch wall-clock times (non-deterministic
    /// output; off by default so reports are byte-reproducible).
    pub timing: bool,
    /// Smoke-simulate every design to quiescence.
    pub smoke: bool,
    /// Witness dynamic flows by differential simulation and cross-check
    /// them against the static flow graph (`vhdl1c verify`).
    pub verify: Option<VerifyOptions>,
    /// Collect batch telemetry — engine trace spans, pool timing, watchdog
    /// events — surfaced by [`run_batch_traced`] (`vhdl1c --profile`).
    /// Never touches the [`BatchReport`] itself: report bytes are identical
    /// with profiling on or off.
    pub profile: bool,
    /// Per-design wall-clock deadline, enforced by a watchdog thread that
    /// trips each design's cooperative [`CancelFlag`] — the design lands in
    /// the report's `degraded` section (stage `deadline`) while the batch
    /// completes.  Wall-clock by nature, so reports stop being
    /// byte-reproducible; pure counter budgets (in
    /// [`BatchOptions::analysis`]) keep determinism.
    pub deadline_ms: Option<u64>,
    /// Options of the underlying analysis.
    pub analysis: AnalysisOptions,
    /// Memo-table policy of the shared analysis engine (the library-side
    /// cache; report-level dedup is always on).  The default caps the table
    /// rather than keeping every unique design's stage artifacts alive for
    /// the whole batch: identical jobs are already shared by the report
    /// dedup, so the engine cache only needs to cover the
    /// same-source-different-policy working set.
    pub cache: CachePolicy,
}

/// Default retention of the batch engine's memo table — bounds peak memory
/// on huge corpora while still covering realistic duplicate working sets.
pub const DEFAULT_ENGINE_CACHE: CachePolicy = CachePolicy::Capped(512);

/// Default artifact cap of a persistent cache directory (`--cache-dir`,
/// `vhdl1d`): disk artifacts are small (a few KiB), so the disk cap is an
/// order of magnitude looser than the in-memory default.
pub const DEFAULT_PERSISTENT_CACHE_CAP: usize = 4096;

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            jobs: 1,
            format: Format::Json,
            policy: None,
            timing: false,
            smoke: false,
            verify: None,
            profile: false,
            deadline_ms: None,
            analysis: AnalysisOptions::default(),
            cache: DEFAULT_ENGINE_CACHE,
        }
    }
}

/// Parameters of the dynamic flow-witness pass (`vhdl1c verify`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Stimulus rounds per perturbation source.
    pub rounds: u64,
    /// Stimulus seed.
    pub seed: u64,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            rounds: 16,
            seed: 1,
        }
    }
}

/// Runs the batch: analyzes every job `opts.jobs`-way parallel and collects
/// the aggregate report.  Job order is preserved in the output.
///
/// Jobs are deduplicated up front by content hash of `(source, effective
/// policy)`: only one representative per group is analyzed (in the worker
/// pool); the others reuse its result and are marked `cached`.  Grouping
/// before the pool runs keeps `cached`/`cache_hits` — and therefore every
/// report byte — independent of worker count and scheduling.
pub fn run_batch(jobs: &[Job], opts: &BatchOptions) -> BatchReport {
    run_batch_inner(jobs, opts, false).0
}

/// Batch telemetry collected alongside — never inside — a [`BatchReport`].
///
/// Engine stage counts and cache hit/miss counters are deterministic for a
/// fixed corpus and options (report-level dedup picks representatives
/// before the pool runs); everything wall-clock ([`BatchTelemetry::pool`],
/// span times inside [`BatchTelemetry::trace`], `wall_ns`) is not.
#[derive(Debug, Clone)]
pub struct BatchTelemetry {
    /// Stage-computation and source-cache counters of the shared engine.
    pub stats: EngineStats,
    /// Merged trace spans and events, when [`BatchOptions::profile`] was
    /// set.
    pub trace: Option<TraceSnapshot>,
    /// Worker-pool timing, when [`BatchOptions::profile`] was set and the
    /// batch was non-empty.
    pub pool: Option<PoolStats>,
    /// Designs whose cooperative cancel flag the watchdog tripped.
    pub watchdog_cancels: u64,
    /// Total jobs submitted.
    pub jobs: usize,
    /// Unique jobs after report-level dedup (the ones actually analyzed).
    pub unique_jobs: usize,
    /// Wall-clock duration of the whole batch.
    pub wall_ns: u64,
}

/// [`run_batch`] plus [`BatchTelemetry`] — the entry point of
/// `vhdl1c --stats`/`--profile`.  The report is byte-identical to what
/// [`run_batch`] produces for the same inputs; trace spans and pool timing
/// are only collected when [`BatchOptions::profile`] is set (engine stats
/// and watchdog counts are always returned — they are free).
pub fn run_batch_traced(jobs: &[Job], opts: &BatchOptions) -> (BatchReport, BatchTelemetry) {
    let (report, telemetry) = run_batch_inner(jobs, opts, true);
    (
        report,
        telemetry.expect("traced batch always yields telemetry"),
    )
}

/// Runs a batch on a **caller-supplied** engine — the serving seam: the
/// `vhdl1d` daemon routes every request through its long-lived worker
/// engines this way.  Report bytes are identical to [`run_batch`] over the
/// same jobs and options: dedup picks representatives before the pool runs,
/// and engine memo or disk-artifact hits never alter a report byte — which
/// is what lets a warm daemon answer `cmp`-identically to a cold CLI run.
///
/// The engine's own options govern the analysis; [`BatchOptions::analysis`],
/// [`BatchOptions::cache`] and [`BatchOptions::profile`] are ignored here
/// (they only shape the engine [`run_batch`] builds internally).
pub fn run_batch_on(engine: &Engine, jobs: &[Job], opts: &BatchOptions) -> BatchReport {
    run_batch_core(engine, jobs, opts).0
}

/// Replays an edit stream: every job is a successive revision of one
/// design, analyzed **in input order** through a single
/// [`vhdl1_infoflow::Workspace`] so each revision reuses the per-process
/// artifacts of every process the edit left untouched (the
/// `units_reused` / `units_recomputed` counters of the returned telemetry
/// account for the reuse).  Report bytes are identical to [`run_batch`]
/// over the same jobs — incremental assembly is an implementation detail,
/// never an observable one.
pub fn run_edit_stream(jobs: &[Job], opts: &BatchOptions) -> (BatchReport, BatchTelemetry) {
    let start = Instant::now();
    let mut analysis = opts.analysis;
    if opts.profile {
        analysis.trace = true;
    }
    let engine = Engine::new(EngineConfig {
        options: analysis,
        cache: opts.cache.clone(),
    });
    let batch = run_edit_stream_on(&engine, jobs, opts);
    let telemetry = BatchTelemetry {
        stats: engine.stats(),
        trace: engine.trace_sink().map(|sink| sink.snapshot()),
        pool: None,
        watchdog_cancels: 0,
        jobs: jobs.len(),
        unique_jobs: jobs.len(),
        wall_ns: start.elapsed().as_nanos() as u64,
    };
    (batch, telemetry)
}

/// [`run_edit_stream`] on a caller-supplied engine — the daemon's
/// `POST /update` seam.  Sequential by nature: revision `j+1`'s reuse is
/// defined relative to revision `j`, so there is no pool and
/// [`BatchOptions::jobs`] is ignored.
pub fn run_edit_stream_on(engine: &Engine, jobs: &[Job], opts: &BatchOptions) -> BatchReport {
    let start = Instant::now();
    let workspace = engine.workspace();
    let mut batch = BatchReport::default();
    for job in jobs {
        let policy = effective_policy(job, opts);
        let started = Instant::now();
        let outcome = match workspace.update(&job.source) {
            Ok(analysis) => finish_job(analysis, job, &policy, opts, None, started),
            Err(e) => JobOutcome::from_engine_error(&e),
        };
        push_outcome(&mut batch, job, outcome, false);
    }
    if opts.timing {
        batch.wall_ms = Some(start.elapsed().as_secs_f64() * 1e3);
    }
    batch
}

/// Non-deterministic (wall-clock) byproducts of [`run_batch_core`], folded
/// into [`BatchTelemetry`] by the owning-engine entry points.
struct CoreStats {
    pool: Option<PoolStats>,
    watchdog_cancels: u64,
    unique_jobs: usize,
}

fn run_batch_inner(
    jobs: &[Job],
    opts: &BatchOptions,
    collect: bool,
) -> (BatchReport, Option<BatchTelemetry>) {
    let start = Instant::now();

    // One analysis session for the whole batch, shared by every worker.
    // `--profile` turns the engine's span collection on; the toggle changes
    // no analysis artifact, only whether the sink exists.
    let mut analysis = opts.analysis;
    if opts.profile {
        analysis.trace = true;
    }
    let engine = Engine::new(EngineConfig {
        options: analysis,
        cache: opts.cache.clone(),
    });
    let (batch, core) = run_batch_core(&engine, jobs, opts);
    let telemetry = (collect || opts.profile).then(|| BatchTelemetry {
        stats: engine.stats(),
        trace: engine.trace_sink().map(|sink| sink.snapshot()),
        pool: core.pool,
        watchdog_cancels: core.watchdog_cancels,
        jobs: jobs.len(),
        unique_jobs: core.unique_jobs,
        wall_ns: start.elapsed().as_nanos() as u64,
    });
    (batch, telemetry)
}

fn run_batch_core(engine: &Engine, jobs: &[Job], opts: &BatchOptions) -> (BatchReport, CoreStats) {
    let start = Instant::now();

    // One watchdog thread for the whole batch, when a deadline is set.
    // Joined (via Drop) before the batch returns.
    let watchdog = opts
        .deadline_ms
        .map(|ms| Watchdog::spawn(Duration::from_millis(ms)));

    // Group by cache key; compute each job's effective policy exactly once.
    let mut first_of_key: HashMap<u64, usize> = HashMap::new();
    let mut rep: Vec<usize> = Vec::with_capacity(jobs.len());
    let mut policies: Vec<Policy> = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        let policy = effective_policy(job, opts);
        let key =
            fnv1a64(job.source.as_bytes()) ^ fnv1a64(policy.to_text().as_bytes()).rotate_left(1);
        rep.push(*first_of_key.entry(key).or_insert(i));
        policies.push(policy);
    }

    // Analyze one representative per group, in parallel.  The pool isolates
    // panics: a crashing item becomes `Err(message)` while the rest of the
    // batch completes.
    let unique: Vec<usize> = (0..jobs.len()).filter(|&i| rep[i] == i).collect();
    let worker =
        |_: usize, &i: &usize| analyze_job(engine, &jobs[i], &policies[i], opts, watchdog.as_ref());
    // Pool timing reads the clock per item; only pay for it under
    // `--profile` so the plain batch path is untouched.
    let (unique_outcomes, pool_stats) = if opts.profile {
        let (outcomes, stats) = pool::run_timed(&unique, opts.jobs, worker);
        (outcomes, Some(stats))
    } else {
        (pool::run(&unique, opts.jobs, worker), None)
    };
    let unique_count = unique.len();
    let outcome_of: HashMap<usize, JobOutcome> = unique
        .into_iter()
        .zip(unique_outcomes)
        .map(|(i, r)| (i, r.unwrap_or_else(JobOutcome::panicked)))
        .collect();

    // Reassemble in input order.  Ground-truth bookkeeping is re-derived per
    // job (not copied from the representative): two jobs may share source
    // and policy yet differ in attached ground truth — e.g. a plain `.vhd`
    // file next to the identical corpus entry under a `--policy` override.
    let mut batch = BatchReport::default();
    for (i, job) in jobs.iter().enumerate() {
        let outcome = outcome_of.get(&rep[i]).cloned().unwrap_or_else(|| {
            // Unreachable by construction (every representative was queued);
            // degrade to a structured error rather than crashing the batch.
            JobOutcome::from_error(BatchError {
                error: "internal: representative outcome missing".to_string(),
                ..BatchError::default()
            })
        });
        push_outcome(&mut batch, job, outcome, rep[i] != i);
    }
    if opts.timing {
        batch.wall_ms = Some(start.elapsed().as_secs_f64() * 1e3);
    }
    let core = CoreStats {
        pool: pool_stats,
        watchdog_cancels: watchdog.as_ref().map_or(0, Watchdog::cancel_count),
        unique_jobs: unique_count,
    };
    (batch, core)
}

/// Everything one job can produce: at most one report (possibly with an
/// attached degradation, e.g. smoke budget exhaustion on an otherwise
/// complete analysis), or an error, or a pure degradation.
#[derive(Debug, Clone, Default)]
struct JobOutcome {
    report: Option<DesignReport>,
    error: Option<BatchError>,
    degraded: Option<DegradedEntry>,
}

impl JobOutcome {
    fn from_error(error: BatchError) -> JobOutcome {
        JobOutcome {
            error: Some(error),
            ..JobOutcome::default()
        }
    }

    /// Classifies an engine error: budget exhaustion degrades the design
    /// (the analyzer answered within its contract); anything else is a
    /// genuine per-design error.
    fn from_engine_error(e: &EngineError) -> JobOutcome {
        if let EngineError::ResourceExhausted {
            stage,
            limit,
            consumed,
            ..
        } = e
        {
            JobOutcome {
                degraded: Some(DegradedEntry {
                    name: String::new(), // stamped during reassembly
                    stage: stage.as_str().to_string(),
                    limit: *limit,
                    consumed: *consumed,
                    line: e.line_col().map(|(l, _)| l),
                    col: e.line_col().map(|(_, c)| c),
                    message: e.to_string(),
                }),
                ..JobOutcome::default()
            }
        } else {
            JobOutcome::from_error(BatchError {
                name: String::new(), // stamped during reassembly
                phase: e.phase().map(|p| p.to_string()),
                line: e.line_col().map(|(l, _)| l),
                col: e.line_col().map(|(_, c)| c),
                error: e.to_string(),
                expected: false,
            })
        }
    }

    /// The outcome of a work item the pool caught panicking.
    fn panicked(message: String) -> JobOutcome {
        JobOutcome::from_error(BatchError {
            phase: Some("panic".to_string()),
            error: format!("panicked: {message}"),
            ..BatchError::default()
        })
    }
}

/// The per-batch deadline enforcer: one thread polling every in-flight
/// design's start time, tripping its cooperative [`CancelFlag`] once the
/// deadline passes.  The analysis observes the flag at its next stage
/// boundary and surfaces as `ResourceExhausted` (stage `deadline`) — no
/// threads are killed, no state is torn down mid-stage.
struct Watchdog {
    entries: Arc<Mutex<Vec<(Instant, CancelFlag)>>>,
    stop: Arc<AtomicBool>,
    cancels: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn spawn(deadline: Duration) -> Watchdog {
        let entries: Arc<Mutex<Vec<(Instant, CancelFlag)>>> = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        let cancels = Arc::new(AtomicU64::new(0));
        let poll_entries = Arc::clone(&entries);
        let poll_stop = Arc::clone(&stop);
        let poll_cancels = Arc::clone(&cancels);
        let handle = std::thread::spawn(move || {
            while !poll_stop.load(Ordering::Relaxed) {
                {
                    let mut entries = poll_entries
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    entries.retain(|(started, flag)| {
                        if started.elapsed() >= deadline {
                            flag.cancel();
                            poll_cancels.fetch_add(1, Ordering::Relaxed);
                            return false;
                        }
                        true
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        Watchdog {
            entries,
            stop,
            cancels,
            handle: Some(handle),
        }
    }

    /// Designs whose cancel flag this watchdog has tripped so far.
    fn cancel_count(&self) -> u64 {
        self.cancels.load(Ordering::Relaxed)
    }

    /// Starts the clock for one design; the returned flag trips once the
    /// deadline elapses.
    fn register(&self) -> CancelFlag {
        let flag = CancelFlag::new();
        self.entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push((Instant::now(), flag.clone()));
        flag
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Stamps one job's outcome into the batch, in input order: name and
/// ground-truth bookkeeping are always the job's own, and a `cached`
/// duplicate additionally drops its timing and retitles its DOT graph.
fn push_outcome(batch: &mut BatchReport, job: &Job, outcome: JobOutcome, cached: bool) {
    if cached {
        batch.cache_hits += 1;
    }
    let JobOutcome {
        report,
        error,
        degraded,
    } = outcome;
    if let Some(mut report) = report {
        report.name = job.name.clone();
        report.cached = cached;
        if cached {
            // The duplicate did not spend analysis time itself, and
            // its DOT graph (if any) must carry its own title.
            report.millis = None;
            if let Some(dot) = &mut report.dot {
                if let Some(eol) = dot.find('\n') {
                    *dot = format!("digraph \"{}\" {{{}", job.name, &dot[eol..]);
                }
            }
        }
        apply_truth(&mut report, job);
        batch.designs.push(report);
    }
    if let Some(mut err) = error {
        err.name = job.name.clone();
        err.expected = job.truth.as_ref().is_some_and(|t| t.expect_error);
        batch.errors.push(err);
    }
    if let Some(mut deg) = degraded {
        deg.name = job.name.clone();
        batch.degraded.push(deg);
    }
}

fn effective_policy(job: &Job, opts: &BatchOptions) -> Policy {
    match (&opts.policy, &job.truth) {
        (Some(p), _) => p.clone(),
        (None, Some(truth)) => truth.derived_policy(),
        (None, None) => Policy::new(),
    }
}

/// Stamps (or clears) the job's ground-truth bookkeeping on a report whose
/// analysis fields are already filled in.
fn apply_truth(report: &mut DesignReport, job: &Job) {
    match &job.truth {
        Some(truth) => {
            report.family = Some(truth.family.clone());
            report.leaky = Some(truth.leaky);
            report.expected_violations = truth.expected_violations.clone();
            if truth.expect_error {
                // The front end was supposed to reject this design; an
                // analysis that went through is a wrong answer.
                report.ground_truth_ok = Some(false);
                return;
            }
            let mut actual: Vec<(String, String)> = report
                .violations
                .iter()
                .map(|v| (v.from.clone(), v.to.clone()))
                .collect();
            actual.sort();
            let mut expected = truth.expected_violations.clone();
            expected.sort();
            report.ground_truth_ok = Some(actual == expected);
        }
        None => {
            report.family = None;
            report.leaky = None;
            report.expected_violations = Vec::new();
            report.ground_truth_ok = None;
        }
    }
}

fn analyze_job(
    engine: &Engine,
    job: &Job,
    policy: &Policy,
    opts: &BatchOptions,
    watchdog: Option<&Watchdog>,
) -> JobOutcome {
    let started = Instant::now();
    let analysis = match engine.analyze_source(&job.source) {
        Ok(analysis) => analysis,
        Err(e) => return JobOutcome::from_engine_error(&e),
    };
    finish_job(analysis, job, policy, opts, watchdog, started)
}

/// The post-front-end half of a job: report assembly, optional DOT, smoke
/// and dynamic-flow passes.  Shared by the batch path ([`analyze_job`])
/// and the edit-stream path, which obtains its [`Analysis`] from
/// [`vhdl1_infoflow::Workspace::update`] instead.
fn finish_job(
    analysis: Analysis<'_>,
    job: &Job,
    policy: &Policy,
    opts: &BatchOptions,
    watchdog: Option<&Watchdog>,
    started: Instant,
) -> JobOutcome {
    let analysis = match watchdog {
        Some(watchdog) => analysis.with_cancel_flag(watchdog.register()),
        None => analysis,
    };
    let mut report = match analysis_report(&analysis, policy) {
        Ok(report) => report,
        Err(e) => return JobOutcome::from_engine_error(&e),
    };
    report.name = job.name.clone();
    report.source_hash = format!("fnv1a:{:016x}", fnv1a64(job.source.as_bytes()));
    if opts.format == Format::Dot {
        // `graph_labels()` is served from the persisted artifact on a warm
        // store, so DOT rendering does no front-end work there.
        match analysis.flow_graph() {
            Ok(graph) => {
                report.dot = Some(graph.to_dot_with(&job.name, analysis.graph_labels()));
            }
            Err(e) => return JobOutcome::from_engine_error(&e),
        }
    }
    let mut degraded = None;
    if opts.smoke {
        // The engine memoizes the simulation per design, so duplicate
        // sources in one batch smoke exactly once; simulator errors render
        // `line:col` exactly like analysis errors.  Budget exhaustion
        // degrades the design (the audit verdict above still stands) and
        // does not count as a smoke *failure*.
        match analysis.smoke(SMOKE_MAX_DELTAS) {
            Ok(smoke) => report.smoke_deltas = Some(smoke.deltas),
            Err(e) if e.is_resource_exhausted() => {
                degraded = JobOutcome::from_engine_error(&e).degraded;
            }
            Err(e) => report.smoke_error = Some(e.to_string()),
        }
    }
    if let Some(verify) = &opts.verify {
        // Memoized per (rounds, seed) like smoke; budget exhaustion degrades
        // the design, any other simulator failure is a verify failure the
        // `--check` gate counts.
        match analysis.dynamic_flows(verify.rounds, verify.seed) {
            Ok(dynflow) => report.dynflow = Some(DynFlowSection::from_report(&dynflow)),
            Err(e) if e.is_resource_exhausted() => {
                degraded = JobOutcome::from_engine_error(&e).degraded;
            }
            Err(e) => report.dynflow_error = Some(e.to_string()),
        }
    }
    if opts.timing {
        report.millis = Some(started.elapsed().as_secs_f64() * 1e3);
    }
    JobOutcome {
        report: Some(report),
        error: None,
        degraded,
    }
}

/// Delta-cycle bound of `--smoke` simulations.
const SMOKE_MAX_DELTAS: u64 = 10_000;

#[cfg(test)]
mod tests {
    use super::*;
    use vhdl1_corpus::{generate, CorpusSpec};

    fn corpus_jobs(seed: u64, count: usize) -> Vec<Job> {
        generate(&CorpusSpec::new(seed, count))
            .into_iter()
            .map(Job::from_generated)
            .collect()
    }

    #[test]
    fn ground_truth_is_reproduced_across_all_families() {
        let jobs = corpus_jobs(7, 16); // two clean + two leaky per family
        let batch = run_batch(&jobs, &BatchOptions::default());
        assert!(batch.errors.is_empty(), "errors: {:?}", batch.errors);
        for d in &batch.designs {
            assert_eq!(
                d.ground_truth_ok,
                Some(true),
                "{} ({:?} leaky={:?}): expected {:?}, audit found {:?}",
                d.name,
                d.family,
                d.leaky,
                d.expected_violations,
                d.violations
            );
            assert_eq!(d.leaky, Some(!d.violations.is_empty()));
        }
        assert!(batch.check_ok());
    }

    #[test]
    fn parallel_and_sequential_batches_agree() {
        let jobs = corpus_jobs(11, 12);
        let seq = run_batch(&jobs, &BatchOptions::default());
        let par = run_batch(
            &jobs,
            &BatchOptions {
                jobs: 8,
                ..BatchOptions::default()
            },
        );
        assert_eq!(seq.designs, par.designs);
        assert_eq!(seq.to_json(), par.to_json());
    }

    #[test]
    fn duplicate_sources_hit_the_cache() {
        let mut jobs = corpus_jobs(3, 4);
        let mut dup = jobs[0].clone();
        dup.name = "duplicate".into();
        jobs.push(dup);
        let batch = run_batch(&jobs, &BatchOptions::default());
        assert_eq!(batch.cache_hits, 1);
        let last = batch.designs.last().unwrap();
        assert!(last.cached);
        assert_eq!(last.name, "duplicate");
        // Cached record carries the same analysis results.
        assert_eq!(last.edges, batch.designs[0].edges);
    }

    #[test]
    fn cache_hits_keep_per_job_ground_truth() {
        // Regression: a plain file and a corpus entry with the *identical
        // source* share a cache group under a `--policy` override, but must
        // keep their own ground-truth bookkeeping — the corpus entry's
        // check must run, and the plain file must not inherit corpus
        // metadata.  Exercised in both input orders.
        let corpus_job = corpus_jobs(3, 8).remove(4); // a leaky design
        let plain_job = Job::from_source("plain_copy", corpus_job.source.clone());
        let opts = BatchOptions {
            policy: Some(Policy::new()), // permissive: leaky check must fail
            ..BatchOptions::default()
        };
        for jobs in [
            vec![plain_job.clone(), corpus_job.clone()],
            vec![corpus_job.clone(), plain_job.clone()],
        ] {
            let batch = run_batch(&jobs, &opts);
            assert_eq!(batch.cache_hits, 1);
            let plain = batch
                .designs
                .iter()
                .find(|d| d.name == "plain_copy")
                .unwrap();
            assert_eq!(plain.family, None);
            assert_eq!(plain.leaky, None);
            assert_eq!(plain.ground_truth_ok, None);
            assert!(plain.expected_violations.is_empty());
            let corpus = batch
                .designs
                .iter()
                .find(|d| d.name != "plain_copy")
                .unwrap();
            assert_eq!(corpus.leaky, Some(true));
            assert_eq!(
                corpus.ground_truth_ok,
                Some(false),
                "permissive override hides the leak, so the check must fail"
            );
        }
    }

    #[test]
    fn cache_fields_are_worker_count_independent_with_duplicates() {
        let mut jobs = corpus_jobs(9, 6);
        let mut dup = jobs[2].clone();
        dup.name = "dup".into();
        jobs.insert(3, dup);
        let seq = run_batch(&jobs, &BatchOptions::default());
        let par = run_batch(
            &jobs,
            &BatchOptions {
                jobs: 8,
                ..BatchOptions::default()
            },
        );
        assert_eq!(seq.cache_hits, 1);
        assert_eq!(seq.to_json(), par.to_json());
        // The duplicate — not the representative — carries the cached mark,
        // regardless of scheduling.
        assert!(seq.designs[3].cached);
        assert!(!seq.designs[2].cached);
    }

    #[test]
    fn policy_override_replaces_derived_policies() {
        let jobs = corpus_jobs(5, 8); // includes the leaky second cycle
        let permissive = run_batch(
            &jobs,
            &BatchOptions {
                policy: Some(Policy::new()),
                ..BatchOptions::default()
            },
        );
        assert_eq!(permissive.total_violations(), 0);
        // With an override the ground-truth comparison still runs and now
        // reports the discrepancy on leaky designs.
        assert!(permissive.ground_truth_mismatches() > 0);
    }

    #[test]
    fn smoke_simulation_reaches_quiescence_on_the_corpus() {
        let jobs = corpus_jobs(13, 8);
        let batch = run_batch(
            &jobs,
            &BatchOptions {
                smoke: true,
                ..BatchOptions::default()
            },
        );
        assert_eq!(batch.smoke_failures(), 0, "{:?}", batch.designs);
        assert!(batch.designs.iter().all(|d| d.smoke_deltas.is_some()));
    }

    #[test]
    fn smoke_reports_are_byte_identical_across_runs_and_worker_counts() {
        let jobs = corpus_jobs(17, 10);
        let opts = |workers: usize| BatchOptions {
            smoke: true,
            jobs: workers,
            ..BatchOptions::default()
        };
        let first = run_batch(&jobs, &opts(1)).to_json();
        let second = run_batch(&jobs, &opts(1)).to_json();
        assert_eq!(first, second, "same design must smoke byte-identically");
        let parallel = run_batch(&jobs, &opts(8)).to_json();
        assert_eq!(first, parallel, "smoke deltas are worker-count independent");
    }

    #[test]
    fn smoke_failures_render_source_positions() {
        // Elaboration accepts the out-of-range slice; the simulator rejects
        // it at compile time with `line:col`, exactly like analysis errors.
        let src =
            "entity e is port(a : in std_logic_vector(3 downto 0); b : out std_logic); end e;\n\
                   architecture rtl of e is begin\n\
                   p : process begin\n\
                   b <= a(9 downto 8);\n\
                   wait on a;\n\
                   end process;\n\
                   end rtl;";
        let jobs = vec![Job::from_source("bad_slice", src)];
        let batch = run_batch(
            &jobs,
            &BatchOptions {
                smoke: true,
                ..BatchOptions::default()
            },
        );
        assert_eq!(batch.smoke_failures(), 1);
        let err = batch.designs[0]
            .smoke_error
            .as_deref()
            .expect("smoke must fail");
        assert!(err.contains("slice out of range"), "{err}");
        assert!(err.contains("at 4:"), "smoke errors carry line:col: {err}");
    }

    #[test]
    fn broken_sources_become_errors_not_panics() {
        let jobs = vec![
            Job::from_source("ok", "entity e is port(a : in std_logic; b : out std_logic); end e; architecture rtl of e is begin p : process begin b <= a; wait on a; end process p; end rtl;"),
            Job::from_source("broken", "entity oops"),
        ];
        let batch = run_batch(&jobs, &BatchOptions::default());
        assert_eq!(batch.designs.len(), 1);
        assert_eq!(batch.errors.len(), 1);
        assert_eq!(batch.errors[0].name, "broken");
        assert!(!batch.check_ok());
    }

    #[test]
    fn frontend_errors_carry_phase_and_position_into_reports() {
        let jobs = vec![
            Job::from_source("bad_parse", "entity oops"),
            Job::from_source(
                "bad_elab",
                "entity e is port(a : in std_logic; b : out std_logic); end e;\n\
                 architecture rtl of e is begin\n\
                 p : process begin b <= ghost; wait on a; end process;\n\
                 end rtl;",
            ),
        ];
        let batch = run_batch(&jobs, &BatchOptions::default());
        assert_eq!(batch.errors.len(), 2);
        let parse = &batch.errors[0];
        assert_eq!(parse.phase.as_deref(), Some("parse"));
        assert!(parse.line.is_some() && parse.col.is_some());
        let elab = &batch.errors[1];
        assert_eq!(elab.phase.as_deref(), Some("elaborate"));
        assert_eq!((elab.line, elab.col), (Some(3), Some(24)));
        assert!(
            elab.error.contains("at 3:24"),
            "text rendering must include line:col: {}",
            elab.error
        );
        let json = batch.to_json();
        assert!(json.contains("\"phase\": \"elaborate\""));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\"col\": 24"));
        let text = batch.to_text();
        assert!(text.contains("error bad_elab: elaborate error at 3:24"));
    }

    fn hostile_jobs(seed: u64, count: usize) -> Vec<Job> {
        let spec = CorpusSpec::new(seed, count).with_families(vec![vhdl1_corpus::Family::Hostile]);
        generate(&spec)
            .into_iter()
            .map(Job::from_generated)
            .collect()
    }

    fn tight_opts(workers: usize) -> BatchOptions {
        let mut opts = BatchOptions {
            jobs: workers,
            ..BatchOptions::default()
        };
        opts.analysis.budget = vhdl1_infoflow::Budget::tight();
        opts
    }

    #[test]
    fn hostile_batch_with_tight_budget_is_deterministic_and_clean() {
        // Satellite: same source + same budget => byte-identical report,
        // across repeated runs and across worker counts.  Pure counter
        // budgets (no wall-clock deadline, no timing) keep determinism.
        let jobs = hostile_jobs(3, 12);
        let first = run_batch(&jobs, &tight_opts(1));
        let second = run_batch(&jobs, &tight_opts(1));
        assert_eq!(first.to_json(), second.to_json());
        let parallel = run_batch(&jobs, &tight_opts(8));
        assert_eq!(first.to_json(), parallel.to_json());

        // Every job is accounted for exactly once (no smoke => a report and
        // a degradation never co-occur).
        assert_eq!(
            first.designs.len() + first.errors.len() + first.degraded.len(),
            jobs.len()
        );
        // The tight budget must actually bite on hostile designs, naming
        // the exhausted stage.
        assert!(!first.degraded.is_empty(), "tight budget never tripped");
        for d in &first.degraded {
            assert!(!d.stage.is_empty() && d.limit > 0 && d.consumed > d.limit - 1);
            assert!(d.message.contains("budget exhausted"), "{}", d.message);
        }
        // Degradation and expected rejections are not wrong answers.
        assert!(
            first.errors.iter().all(|e| e.expected),
            "{:?}",
            first.errors
        );
        assert!(first.check_ok());
    }

    #[test]
    fn hostile_garbage_designs_are_expected_errors() {
        // Across a few seeds the hostile family always emits some
        // truncated/garbage designs; their rejections are *expected* and
        // keep the batch clean, and none of them produce a report.
        let jobs = hostile_jobs(42, 10);
        let batch = run_batch(&jobs, &BatchOptions::default());
        assert!(!batch.errors.is_empty(), "no garbage design in seed 42");
        for e in &batch.errors {
            assert!(e.expected, "{}: hostile rejection must be expected", e.name);
            assert!(e.phase.is_some());
        }
        assert_eq!(batch.unexpected_errors(), 0);
        // Under the default (unlimited) budget nothing degrades and every
        // analyzable design reproduces its ground truth — the whole hostile
        // batch checks green, which is what CI's exit-0 leg relies on.
        assert!(batch.degraded.is_empty());
        assert!(
            batch.check_ok(),
            "hostile batch under default budget must check green"
        );
    }

    #[test]
    fn surviving_an_expected_rejection_is_a_mismatch() {
        // A design whose ground truth says "the front end must reject this"
        // but which analyzes fine is a wrong answer, not a success.
        let mut job = corpus_jobs(1, 1).remove(0);
        job.truth.as_mut().unwrap().expect_error = true;
        let batch = run_batch(&[job], &BatchOptions::default());
        assert_eq!(batch.designs[0].ground_truth_ok, Some(false));
        assert!(!batch.check_ok());
    }

    #[test]
    fn zero_deadline_degrades_every_design_via_the_engine_gate() {
        // The engine checks its own wall clock at stage boundaries: an
        // already-expired deadline trips deterministically before the first
        // stage runs, so every design degrades with the `deadline` stage.
        let jobs = corpus_jobs(7, 4);
        let mut opts = BatchOptions::default();
        opts.analysis.budget.deadline_ms = Some(0);
        let batch = run_batch(&jobs, &opts);
        assert!(batch.designs.is_empty());
        assert_eq!(batch.degraded.len(), jobs.len());
        assert!(batch.degraded.iter().all(|d| d.stage == "deadline"));
        assert!(batch.check_ok(), "deadline degradation is not failure");
    }

    #[test]
    fn watchdog_cancels_expired_flags() {
        let watchdog = Watchdog::spawn(Duration::from_millis(0));
        let flag = watchdog.register();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !flag.is_cancelled() {
            assert!(Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn generous_deadline_leaves_the_batch_untouched() {
        // End-to-end through the watchdog thread: a deadline no design
        // comes near must not perturb results (and the watchdog must shut
        // down cleanly when run_batch returns).
        let jobs = corpus_jobs(5, 6);
        let with_deadline = run_batch(
            &jobs,
            &BatchOptions {
                deadline_ms: Some(60_000),
                jobs: 4,
                ..BatchOptions::default()
            },
        );
        let without = run_batch(&jobs, &BatchOptions::default());
        assert_eq!(with_deadline.to_json(), without.to_json());
        assert!(with_deadline.degraded.is_empty());
    }

    #[test]
    fn panic_outcomes_surface_as_batch_errors() {
        let outcome = JobOutcome::panicked("stack blew up".to_string());
        let err = outcome.error.unwrap();
        assert_eq!(err.phase.as_deref(), Some("panic"));
        assert_eq!(err.error, "panicked: stack blew up");
        assert!(!err.expected);
    }

    #[test]
    fn fnv_hash_is_stable() {
        // Pinned: the cache key and the report's source_hash field must not
        // drift silently between releases.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"vhdl"), fnv1a64(b"vhdl"));
        assert_ne!(fnv1a64(b"vhdl"), fnv1a64(b"vhdk"));
    }
}
