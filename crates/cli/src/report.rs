//! The security report shared by the `vhdl1c` batch driver and the library
//! examples: one [`DesignReport`] per analyzed design (flow edges + policy
//! audit + ground-truth verdict), aggregated into a [`BatchReport`] with
//! JSON, Graphviz DOT and human-readable renderings.

use crate::json;
use std::fmt::Write as _;
use vhdl1_infoflow::{
    audit, Analysis, AnalysisResult, DesignSummary, DynFlowReport, EngineError, FlowGraph, Policy,
};
use vhdl1_syntax::Design;

/// The dynamic flow-witness record of one design (`vhdl1c verify`): the
/// engine's [`DynFlowReport`] flattened for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct DynFlowSection {
    /// Stimulus rounds per perturbation source.
    pub rounds: u64,
    /// Stimulus seed.
    pub seed: u64,
    /// Witnessed `(input, output)` flows (concrete diverging executions).
    pub witnessed: Vec<(String, String)>,
    /// Dynamically witnessed dependences the static analysis misses —
    /// soundness bugs, hard `--check` failures.
    pub soundness_violations: Vec<(String, String)>,
    /// Static merged-graph edges never exercised dynamically (expected
    /// conservatism; the precision report).
    pub unwitnessed_static: Vec<(String, String)>,
    /// Mined `no-flow(src, sink)` candidates as `(from, to, static_agrees)`.
    pub no_flow_properties: Vec<(String, String, bool)>,
    /// Static merged-graph edges dynamically exercised.
    pub covered_edges: usize,
    /// Total static merged-graph edges.
    pub static_edges: usize,
    /// Kemmerer-baseline edges dynamically exercised.
    pub kemmerer_covered: usize,
    /// Total Kemmerer-baseline edges.
    pub kemmerer_edges: usize,
}

impl DynFlowSection {
    /// Flattens an engine [`DynFlowReport`].
    pub fn from_report(report: &DynFlowReport) -> DynFlowSection {
        DynFlowSection {
            rounds: report.rounds,
            seed: report.seed,
            witnessed: report.witnessed.clone(),
            soundness_violations: report.soundness_violations.clone(),
            unwitnessed_static: report.unwitnessed_static.clone(),
            no_flow_properties: report
                .no_flow_properties
                .iter()
                .map(|p| (p.from.clone(), p.to.clone(), p.static_agrees))
                .collect(),
            covered_edges: report.covered_edges,
            static_edges: report.static_edges,
            kemmerer_covered: report.kemmerer_covered,
            kemmerer_edges: report.kemmerer_edges,
        }
    }

    /// Fraction of static edges dynamically exercised (1.0 when edgeless).
    pub fn coverage(&self) -> f64 {
        if self.static_edges == 0 {
            1.0
        } else {
            self.covered_edges as f64 / self.static_edges as f64
        }
    }

    fn to_json_value(&self) -> String {
        let pairs = |v: &[(String, String)]| -> String {
            let items: Vec<String> = v
                .iter()
                .map(|(f, t)| format!("[{}, {}]", json::string(f), json::string(t)))
                .collect();
            format!("[{}]", items.join(", "))
        };
        let no_flows: Vec<String> = self
            .no_flow_properties
            .iter()
            .map(|(f, t, agrees)| {
                format!(
                    "{{\"from\": {}, \"to\": {}, \"static_agrees\": {}}}",
                    json::string(f),
                    json::string(t),
                    agrees
                )
            })
            .collect();
        format!(
            "{{\"rounds\": {}, \"seed\": {}, \"witnessed\": {}, \
             \"soundness_violations\": {}, \"unwitnessed_static\": {}, \
             \"no_flow_properties\": [{}], \"covered_edges\": {}, \
             \"static_edges\": {}, \"coverage\": {:.6}, \
             \"kemmerer_covered\": {}, \"kemmerer_edges\": {}}}",
            self.rounds,
            self.seed,
            pairs(&self.witnessed),
            pairs(&self.soundness_violations),
            pairs(&self.unwitnessed_static),
            no_flows.join(", "),
            self.covered_edges,
            self.static_edges,
            self.coverage(),
            self.kemmerer_covered,
            self.kemmerer_edges
        )
    }
}

/// One policy violation, flattened to resource names and levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportViolation {
    /// Source resource of the offending edge.
    pub from: String,
    /// Target resource of the offending edge.
    pub to: String,
    /// Security level of the source, if classified.
    pub from_level: Option<u32>,
    /// Security level of the target, if classified.
    pub to_level: Option<u32>,
}

/// The analysis record of a single design.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignReport {
    /// Design (architecture) name.
    pub name: String,
    /// Corpus family name, when the design came from a corpus manifest.
    pub family: Option<String>,
    /// Whether the corpus marked this design as deliberately leaky.
    pub leaky: Option<bool>,
    /// FNV-1a content hash of the source text (the cache key).
    pub source_hash: String,
    /// Number of processes in the elaborated design.
    pub processes: usize,
    /// Number of labelled elementary blocks.
    pub labels: u32,
    /// Number of variables and signals.
    pub resources: usize,
    /// Edges of the information-flow graph (incoming/outgoing nodes merged
    /// with their resource), in lexicographic order.
    pub edges: Vec<(String, String)>,
    /// Number of edges audited against the policy.
    pub edges_checked: usize,
    /// Every flow edge the policy forbids.
    pub violations: Vec<ReportViolation>,
    /// Ground-truth violation edges embedded by the corpus generator.
    pub expected_violations: Vec<(String, String)>,
    /// `Some(true)` when the audit reproduced the ground truth exactly,
    /// `Some(false)` on a mismatch, `None` for designs without ground truth.
    pub ground_truth_ok: Option<bool>,
    /// Whether this record was served from the content-hash cache.
    pub cached: bool,
    /// Delta cycles until quiescence, when smoke simulation ran.
    pub smoke_deltas: Option<u64>,
    /// Smoke-simulation failure, if any.
    pub smoke_error: Option<String>,
    /// Dynamic flow-witness results, when `verify` ran.
    pub dynflow: Option<DynFlowSection>,
    /// Dynamic flow-witness failure, if any.
    pub dynflow_error: Option<String>,
    /// Wall-clock analysis time, when timing was requested.
    pub millis: Option<f64>,
    /// Graphviz DOT rendering of the full flow graph, when requested.
    pub dot: Option<String>,
}

/// Builds the report record for one analyzed design from the owned, eager
/// [`AnalysisResult`] (compatibility path; rebuilds the graph).
///
/// The flow graph is audited with incoming/outgoing nodes merged into their
/// underlying resource (the paper's presentation form), so policies talk
/// about port and signal names only.
pub fn design_report(design: &Design, result: &AnalysisResult, policy: &Policy) -> DesignReport {
    report_from_graph(design, &result.flow_graph().merge_io_nodes(), policy)
}

/// Builds the report record for one design from a lazy [`Analysis`] handle —
/// the batch driver's path.  Demands exactly the merged flow graph (and its
/// upstream stages); the graph is memoized in the handle, so rendering DOT
/// afterwards reuses it.
///
/// # Errors
///
/// Propagates the engine error of any stage the merged graph depends on —
/// in practice [`EngineError::ResourceExhausted`] when the analysis budget
/// cuts a stage short (pure frontend failures are already surfaced by
/// `Engine::analyze_source` before a handle exists).
pub fn analysis_report(
    analysis: &Analysis<'_>,
    policy: &Policy,
) -> Result<DesignReport, EngineError> {
    // Graph first, then summary: both are restored from the disk artifact
    // under `CachePolicy::Persistent`, so a warm report never re-parses —
    // `analysis.design()` is deliberately not touched here.
    let graph = analysis.merged_flow_graph()?;
    Ok(report_from_summary(analysis.summary(), graph, policy))
}

fn report_from_graph(design: &Design, graph: &FlowGraph, policy: &Policy) -> DesignReport {
    report_from_summary(&DesignSummary::of(design), graph, policy)
}

fn report_from_summary(
    summary: &DesignSummary,
    graph: &FlowGraph,
    policy: &Policy,
) -> DesignReport {
    let report = audit(graph, policy);
    DesignReport {
        name: summary.name.clone(),
        family: None,
        leaky: None,
        source_hash: String::new(),
        processes: summary.processes,
        labels: summary.labels,
        resources: summary.resources,
        edges: graph
            .edges()
            .map(|(f, t)| (f.name().to_string(), t.name().to_string()))
            .collect(),
        edges_checked: report.edges_checked,
        violations: report
            .violations
            .iter()
            .map(|v| ReportViolation {
                from: v.from.name().to_string(),
                to: v.to.name().to_string(),
                from_level: v.from_level,
                to_level: v.to_level,
            })
            .collect(),
        expected_violations: vec![],
        ground_truth_ok: None,
        cached: false,
        smoke_deltas: None,
        smoke_error: None,
        dynflow: None,
        dynflow_error: None,
        millis: None,
        dot: None,
    }
}

impl DesignReport {
    /// Whether the audit found no violations.
    pub fn is_secure(&self) -> bool {
        self.violations.is_empty()
    }

    fn to_json(&self, out: &mut String, indent: &str) {
        let _ = writeln!(out, "{indent}{{");
        let _ = writeln!(out, "{indent}  \"name\": {},", json::string(&self.name));
        let _ = writeln!(
            out,
            "{indent}  \"family\": {},",
            json::opt_string(self.family.as_deref())
        );
        let _ = writeln!(out, "{indent}  \"leaky\": {},", json::opt(self.leaky));
        let _ = writeln!(
            out,
            "{indent}  \"source_hash\": {},",
            json::string(&self.source_hash)
        );
        let _ = writeln!(out, "{indent}  \"processes\": {},", self.processes);
        let _ = writeln!(out, "{indent}  \"labels\": {},", self.labels);
        let _ = writeln!(out, "{indent}  \"resources\": {},", self.resources);
        let edges: Vec<String> = self
            .edges
            .iter()
            .map(|(f, t)| format!("[{}, {}]", json::string(f), json::string(t)))
            .collect();
        let _ = writeln!(out, "{indent}  \"edges\": [{}],", edges.join(", "));
        let _ = writeln!(out, "{indent}  \"edges_checked\": {},", self.edges_checked);
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                format!(
                    "{{\"from\": {}, \"to\": {}, \"from_level\": {}, \"to_level\": {}}}",
                    json::string(&v.from),
                    json::string(&v.to),
                    json::opt(v.from_level),
                    json::opt(v.to_level)
                )
            })
            .collect();
        let _ = writeln!(
            out,
            "{indent}  \"violations\": [{}],",
            violations.join(", ")
        );
        let expected: Vec<String> = self
            .expected_violations
            .iter()
            .map(|(f, t)| format!("[{}, {}]", json::string(f), json::string(t)))
            .collect();
        let _ = writeln!(
            out,
            "{indent}  \"expected_violations\": [{}],",
            expected.join(", ")
        );
        let _ = writeln!(
            out,
            "{indent}  \"ground_truth_ok\": {},",
            json::opt(self.ground_truth_ok)
        );
        let _ = writeln!(out, "{indent}  \"cached\": {},", self.cached);
        let _ = writeln!(
            out,
            "{indent}  \"smoke_deltas\": {},",
            json::opt(self.smoke_deltas)
        );
        let _ = writeln!(
            out,
            "{indent}  \"smoke_error\": {},",
            json::opt_string(self.smoke_error.as_deref())
        );
        let _ = writeln!(
            out,
            "{indent}  \"dynflow\": {},",
            match &self.dynflow {
                Some(d) => d.to_json_value(),
                None => "null".to_string(),
            }
        );
        let _ = writeln!(
            out,
            "{indent}  \"dynflow_error\": {},",
            json::opt_string(self.dynflow_error.as_deref())
        );
        let _ = writeln!(
            out,
            "{indent}  \"millis\": {}",
            match self.millis {
                Some(ms) => format!("{ms:.3}"),
                None => "null".to_string(),
            }
        );
        let _ = write!(out, "{indent}}}");
    }

    fn to_text(&self, out: &mut String) {
        let kind = match (self.family.as_deref(), self.leaky) {
            (Some(f), Some(true)) => format!(" [{f}, leaky]"),
            (Some(f), Some(false)) => format!(" [{f}, clean]"),
            (Some(f), None) => format!(" [{f}]"),
            _ => String::new(),
        };
        let cached = if self.cached { " (cached)" } else { "" };
        let _ = writeln!(
            out,
            "design {}{kind}: {} flows, {} violation(s){cached}",
            self.name,
            self.edges.len(),
            self.violations.len()
        );
        for v in &self.violations {
            let levels = match (v.from_level, v.to_level) {
                (Some(a), Some(b)) => format!(" (level {a} -> level {b})"),
                _ => String::new(),
            };
            let _ = writeln!(out, "  illicit flow {} -> {}{levels}", v.from, v.to);
        }
        match self.ground_truth_ok {
            Some(true) => {
                let _ = writeln!(out, "  ground truth: reproduced");
            }
            Some(false) => {
                let expected: Vec<String> = self
                    .expected_violations
                    .iter()
                    .map(|(f, t)| format!("{f} -> {t}"))
                    .collect();
                let _ = writeln!(
                    out,
                    "  ground truth: MISMATCH (expected: [{}])",
                    expected.join(", ")
                );
            }
            None => {}
        }
        if let Some(deltas) = self.smoke_deltas {
            let _ = writeln!(out, "  smoke simulation: quiescent after {deltas} delta(s)");
        }
        if let Some(err) = &self.smoke_error {
            let _ = writeln!(out, "  smoke simulation: FAILED ({err})");
        }
        if let Some(d) = &self.dynflow {
            let _ = writeln!(
                out,
                "  dynamic flows: {} witnessed, coverage {}/{} ({:.1}%), {} soundness violation(s)",
                d.witnessed.len(),
                d.covered_edges,
                d.static_edges,
                d.coverage() * 100.0,
                d.soundness_violations.len()
            );
            for (src, sink) in &d.soundness_violations {
                let _ = writeln!(out, "  soundness VIOLATION {src} -> {sink}");
            }
            if !d.no_flow_properties.is_empty() {
                let confirmed = d
                    .no_flow_properties
                    .iter()
                    .filter(|(_, _, agrees)| *agrees)
                    .count();
                let _ = writeln!(
                    out,
                    "  no-flow properties: {} mined ({confirmed} statically confirmed)",
                    d.no_flow_properties.len()
                );
            }
        }
        if let Some(err) = &self.dynflow_error {
            let _ = writeln!(out, "  dynamic flows: FAILED ({err})");
        }
        if let Some(ms) = self.millis {
            let _ = writeln!(out, "  analysis time: {ms:.3} ms");
        }
    }
}

/// A design that failed to parse, elaborate, or otherwise analyze.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchError {
    /// Name of the failing design (or its file/manifest entry).
    pub name: String,
    /// The failure message (includes `line:col` when known).
    pub error: String,
    /// Failing pipeline phase (`lex` / `parse` / `elaborate`, or `panic`
    /// for a failure the worker pool isolated), when known.
    pub phase: Option<String>,
    /// 1-based source line of the failure, when known.
    pub line: Option<u32>,
    /// 1-based source column of the failure, when known.
    pub col: Option<u32>,
    /// Whether the corpus ground truth *expected* this design to be
    /// rejected (hostile truncated/garbage sources).  Expected errors are
    /// correct behavior and do not fail [`BatchReport::check_ok`].
    pub expected: bool,
}

/// A design whose analysis a resource budget cut short.
///
/// Degradation is not failure: the analyzer answered "this design exceeds
/// the configured budget" instead of an audit verdict, which is exactly the
/// contract of bounded analysis.  Degraded entries therefore live in their
/// own report section and keep [`BatchReport::check_ok`] green; `vhdl1c
/// analyze --check` signals them with exit code 3 instead of 2.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradedEntry {
    /// Name of the design that blew its budget.
    pub name: String,
    /// Budget stage that ran out (`frontend`, `rd`, `closure`, `improved`,
    /// `smoke`, or `deadline`).
    pub stage: String,
    /// The configured limit of that stage.
    pub limit: u64,
    /// Units consumed when the limit tripped.
    pub consumed: u64,
    /// Line of the construct being processed when the budget tripped, when
    /// the engine attributed one (additive field; absent otherwise).
    pub line: Option<u32>,
    /// Column companion of [`DegradedEntry::line`].
    pub col: Option<u32>,
    /// Full rendered engine error.
    pub message: String,
}

/// The aggregate result of a batch run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchReport {
    /// Per-design reports, in input order.
    pub designs: Vec<DesignReport>,
    /// Designs that failed before analysis.
    pub errors: Vec<BatchError>,
    /// Designs whose analysis exceeded a resource budget, in input order.
    pub degraded: Vec<DegradedEntry>,
    /// Cache hits observed during the run.
    pub cache_hits: usize,
    /// Wall-clock time of the whole batch, when timing was requested.
    pub wall_ms: Option<f64>,
}

impl BatchReport {
    /// Number of designs whose audit found violations.
    pub fn insecure_designs(&self) -> usize {
        self.designs.iter().filter(|d| !d.is_secure()).count()
    }

    /// Total violations across the batch.
    pub fn total_violations(&self) -> usize {
        self.designs.iter().map(|d| d.violations.len()).sum()
    }

    /// Designs whose audit did not reproduce their embedded ground truth.
    pub fn ground_truth_mismatches(&self) -> usize {
        self.designs
            .iter()
            .filter(|d| d.ground_truth_ok == Some(false))
            .count()
    }

    /// Smoke-simulation failures across the batch.
    pub fn smoke_failures(&self) -> usize {
        self.designs
            .iter()
            .filter(|d| d.smoke_error.is_some())
            .count()
    }

    /// Errors the corpus ground truth did *not* predict — the count that
    /// fails a `--check` run.
    pub fn unexpected_errors(&self) -> usize {
        self.errors.iter().filter(|e| !e.expected).count()
    }

    /// Whether any design carries dynamic flow-witness results.
    pub fn has_dynflow(&self) -> bool {
        self.designs.iter().any(|d| d.dynflow.is_some())
    }

    /// Dynamically witnessed flows the static analysis missed, summed over
    /// the batch — every one a soundness counterexample.
    pub fn soundness_violations(&self) -> usize {
        self.designs
            .iter()
            .filter_map(|d| d.dynflow.as_ref())
            .map(|d| d.soundness_violations.len())
            .sum()
    }

    /// Designs whose dynamic flow-witness run failed outright.
    pub fn dynflow_failures(&self) -> usize {
        self.designs
            .iter()
            .filter(|d| d.dynflow_error.is_some())
            .count()
    }

    /// Witnessed `(input, output)` flows summed over the batch.
    pub fn witnessed_flows(&self) -> usize {
        self.designs
            .iter()
            .filter_map(|d| d.dynflow.as_ref())
            .map(|d| d.witnessed.len())
            .sum()
    }

    /// `(covered, total)` static merged-graph edges summed over every
    /// design with dynamic flow-witness results.
    pub fn dynflow_edges(&self) -> (usize, usize) {
        self.designs
            .iter()
            .filter_map(|d| d.dynflow.as_ref())
            .fold((0, 0), |(c, t), d| {
                (c + d.covered_edges, t + d.static_edges)
            })
    }

    /// `(covered, total)` static edges restricted to designs the corpus
    /// marked leaky — the acceptance-bar coverage population (clean designs
    /// legitimately keep conservative edges unexercised).
    pub fn dynflow_leaky_edges(&self) -> (usize, usize) {
        self.designs
            .iter()
            .filter(|d| d.leaky == Some(true))
            .filter_map(|d| d.dynflow.as_ref())
            .fold((0, 0), |(c, t), d| {
                (c + d.covered_edges, t + d.static_edges)
            })
    }

    /// Whether the batch is clean: no unexpected errors, no ground-truth
    /// mismatches, no smoke failures, no dynamic soundness violations and
    /// no dynflow failures (violations by themselves are *findings*, not
    /// failures; expected rejections and budget-degraded designs are
    /// correct bounded-analysis behavior).  This is what `vhdl1c analyze
    /// --check` and `vhdl1c verify --check` gate on.
    pub fn check_ok(&self) -> bool {
        self.unexpected_errors() == 0
            && self.ground_truth_mismatches() == 0
            && self.smoke_failures() == 0
            && self.soundness_violations() == 0
            && self.dynflow_failures() == 0
    }

    /// Renders the machine-readable JSON report.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"tool\": \"vhdl1c\",");
        let _ = writeln!(out, "  \"schema\": 3,");
        out.push_str("  \"designs\": [\n");
        for (i, d) in self.designs.iter().enumerate() {
            d.to_json(&mut out, "    ");
            out.push_str(if i + 1 == self.designs.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ],\n");
        let errors: Vec<String> = self
            .errors
            .iter()
            .map(|e| {
                format!(
                    "{{\"name\": {}, \"phase\": {}, \"line\": {}, \"col\": {}, \
                     \"expected\": {}, \"error\": {}}}",
                    json::string(&e.name),
                    json::opt_string(e.phase.as_deref()),
                    json::opt(e.line),
                    json::opt(e.col),
                    e.expected,
                    json::string(&e.error)
                )
            })
            .collect();
        let _ = writeln!(out, "  \"errors\": [{}],", errors.join(", "));
        let degraded: Vec<String> = self
            .degraded
            .iter()
            .map(|d| {
                // `line`/`col` are additive: emitted only when the engine
                // attributed a position, so position-less entries render
                // byte-identically to earlier releases.
                let pos = match (d.line, d.col) {
                    (Some(l), Some(c)) => format!("\"line\": {l}, \"col\": {c}, "),
                    _ => String::new(),
                };
                format!(
                    "{{\"name\": {}, \"stage\": {}, \"limit\": {}, \"consumed\": {}, \
                     {pos}\"message\": {}}}",
                    json::string(&d.name),
                    json::string(&d.stage),
                    d.limit,
                    d.consumed,
                    json::string(&d.message)
                )
            })
            .collect();
        let _ = writeln!(out, "  \"degraded\": [{}],", degraded.join(", "));
        out.push_str("  \"summary\": {\n");
        let _ = writeln!(out, "    \"designs\": {},", self.designs.len());
        let _ = writeln!(out, "    \"errors\": {},", self.errors.len());
        let _ = writeln!(
            out,
            "    \"unexpected_errors\": {},",
            self.unexpected_errors()
        );
        let _ = writeln!(out, "    \"degraded\": {},", self.degraded.len());
        let _ = writeln!(
            out,
            "    \"insecure_designs\": {},",
            self.insecure_designs()
        );
        let _ = writeln!(out, "    \"violations\": {},", self.total_violations());
        let _ = writeln!(
            out,
            "    \"ground_truth_mismatches\": {},",
            self.ground_truth_mismatches()
        );
        let _ = writeln!(out, "    \"smoke_failures\": {},", self.smoke_failures());
        let _ = writeln!(
            out,
            "    \"soundness_violations\": {},",
            self.soundness_violations()
        );
        let _ = writeln!(
            out,
            "    \"dynflow_failures\": {},",
            self.dynflow_failures()
        );
        let _ = writeln!(out, "    \"witnessed_flows\": {},", self.witnessed_flows());
        let (covered, total) = self.dynflow_edges();
        let _ = writeln!(out, "    \"dynflow_covered_edges\": {covered},");
        let _ = writeln!(out, "    \"dynflow_static_edges\": {total},");
        let _ = writeln!(out, "    \"cache_hits\": {},", self.cache_hits);
        let _ = writeln!(
            out,
            "    \"wall_ms\": {}",
            match self.wall_ms {
                Some(ms) => format!("{ms:.3}"),
                None => "null".to_string(),
            }
        );
        out.push_str("  }\n}\n");
        out
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.designs {
            d.to_text(&mut out);
        }
        for e in &self.errors {
            let tag = if e.expected { " (expected)" } else { "" };
            let _ = writeln!(out, "error {}{tag}: {}", e.name, e.error);
        }
        for d in &self.degraded {
            let at = match (d.line, d.col) {
                (Some(l), Some(c)) => format!(" at {l}:{c}"),
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "degraded {}: {} budget exhausted (consumed {}, limit {}){at}",
                d.name, d.stage, d.consumed, d.limit
            );
        }
        let _ = writeln!(
            out,
            "summary: {} design(s), {} insecure, {} violation(s), {} error(s) \
             ({} unexpected), {} degraded, {} ground-truth mismatch(es), \
             {} smoke failure(s), {} cache hit(s)",
            self.designs.len(),
            self.insecure_designs(),
            self.total_violations(),
            self.errors.len(),
            self.unexpected_errors(),
            self.degraded.len(),
            self.ground_truth_mismatches(),
            self.smoke_failures(),
            self.cache_hits
        );
        if self.has_dynflow() || self.dynflow_failures() > 0 {
            let (covered, total) = self.dynflow_edges();
            let pct = if total == 0 {
                100.0
            } else {
                covered as f64 / total as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "dynflow: {} witnessed flow(s), {} soundness violation(s), \
                 coverage {covered}/{total} static edge(s) ({pct:.1}%), {} failure(s)",
                self.witnessed_flows(),
                self.soundness_violations(),
                self.dynflow_failures()
            );
        }
        out
    }

    /// Renders the concatenated Graphviz DOT graphs of every design that
    /// carries one (i.e. when the batch ran with the DOT format selected).
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        for d in &self.designs {
            if let Some(dot) = &d.dot {
                out.push_str(dot);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vhdl1_infoflow::{analyze, Policy};
    use vhdl1_syntax::frontend;

    fn copy_report(policy: &Policy) -> DesignReport {
        let design = frontend(
            "entity e is port(a : in std_logic; b : out std_logic); end e;
             architecture rtl of e is begin
               p : process begin b <= a; wait on a; end process p;
             end rtl;",
        )
        .unwrap();
        let result = analyze(&design);
        design_report(&design, &result, policy)
    }

    #[test]
    fn design_report_carries_edges_and_violations() {
        let permissive = copy_report(&Policy::new());
        assert!(permissive.edges.contains(&("a".into(), "b".into())));
        assert!(permissive.is_secure());

        let strict = copy_report(&Policy::new().with_level("a", 1).with_level("b", 0));
        assert!(!strict.is_secure());
        assert_eq!(strict.violations[0].from, "a");
        assert_eq!(strict.violations[0].to, "b");
        assert_eq!(strict.violations[0].from_level, Some(1));
    }

    #[test]
    fn json_is_well_formed_enough_to_contain_the_fields() {
        let mut report = BatchReport::default();
        report.designs.push(copy_report(&Policy::new()));
        report.errors.push(BatchError {
            name: "broken".into(),
            error: "parse error at 1:1: \"quoted\"".into(),
            phase: Some("parse".into()),
            line: Some(1),
            col: Some(1),
            expected: false,
        });
        report.degraded.push(DegradedEntry {
            name: "too_big".into(),
            stage: "closure".into(),
            limit: 100,
            consumed: 101,
            line: Some(7),
            col: Some(3),
            message: "closure budget exhausted: consumed 101, limit 100".into(),
        });
        let json = report.to_json();
        assert!(json.contains("\"tool\": \"vhdl1c\""));
        assert!(json.contains("\"schema\": 3,"));
        assert!(json.contains("\"designs\": ["));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"expected\": false"));
        assert!(json.contains("\"stage\": \"closure\""));
        // `consumed` is pinned in the degraded section, and positions are
        // additive (present only when attributed).
        assert!(json.contains("\"consumed\": 101"));
        assert!(json.contains("\"line\": 7, \"col\": 3"));
        assert!(json.contains("\"summary\""));
        // Balanced braces/brackets (cheap structural sanity check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_summary_counts() {
        let mut report = BatchReport::default();
        report.designs.push(copy_report(
            &Policy::new().with_level("a", 1).with_level("b", 0),
        ));
        let text = report.to_text();
        assert!(text.contains("illicit flow a -> b"));
        assert!(text.contains("1 insecure"));
    }

    #[test]
    fn check_ok_gates_on_mismatches_not_violations() {
        let mut report = BatchReport::default();
        let mut d = copy_report(&Policy::new().with_level("a", 1).with_level("b", 0));
        assert!(!d.is_secure());
        d.ground_truth_ok = Some(true);
        report.designs.push(d.clone());
        assert!(report.check_ok(), "violations alone must not fail --check");
        d.ground_truth_ok = Some(false);
        report.designs.push(d);
        assert!(!report.check_ok());
    }

    #[test]
    fn expected_errors_and_degradation_keep_check_green() {
        let mut report = BatchReport::default();
        report.errors.push(BatchError {
            name: "garbage".into(),
            error: "parse error at 1:1: unexpected input".into(),
            expected: true,
            ..BatchError::default()
        });
        report.degraded.push(DegradedEntry {
            name: "huge".into(),
            stage: "rd".into(),
            limit: 10,
            consumed: 11,
            message: "rd budget exhausted: consumed 11, limit 10".into(),
            ..DegradedEntry::default()
        });
        assert!(
            report.check_ok(),
            "expected rejections and budget degradation are correct outcomes"
        );
        let text = report.to_text();
        assert!(text.contains("error garbage (expected):"));
        assert!(text.contains("degraded huge: rd budget exhausted (consumed 11, limit 10)"));
        // No position attributed => no ` at l:c` suffix and no JSON fields.
        assert!(!text.contains("limit 10) at"));
        assert!(!report.to_json().contains("\"line\": 0"));

        report.errors.push(BatchError {
            name: "surprise".into(),
            error: "parse error at 2:2: unexpected input".into(),
            ..BatchError::default()
        });
        assert!(!report.check_ok(), "unexpected errors must still fail");
        assert_eq!(report.unexpected_errors(), 1);
    }

    fn dynflow_section() -> DynFlowSection {
        DynFlowSection {
            rounds: 8,
            seed: 1,
            witnessed: vec![("a".into(), "b".into())],
            soundness_violations: vec![],
            unwitnessed_static: vec![("a".into(), "c".into())],
            no_flow_properties: vec![("a".into(), "c".into(), true)],
            covered_edges: 1,
            static_edges: 2,
            kemmerer_covered: 1,
            kemmerer_edges: 1,
        }
    }

    #[test]
    fn dynflow_section_renders_and_aggregates() {
        let mut report = BatchReport::default();
        let mut d = copy_report(&Policy::new());
        d.leaky = Some(true);
        d.dynflow = Some(dynflow_section());
        report.designs.push(d);

        let json = report.to_json();
        assert!(json.contains("\"dynflow\": {\"rounds\": 8, \"seed\": 1,"));
        assert!(json.contains("\"coverage\": 0.500000"));
        assert!(json.contains("\"static_agrees\": true"));
        assert!(json.contains("\"witnessed_flows\": 1,"));
        assert!(json.contains("\"dynflow_covered_edges\": 1,"));
        assert!(json.contains("\"dynflow_static_edges\": 2,"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        let text = report.to_text();
        assert!(text.contains("dynamic flows: 1 witnessed, coverage 1/2 (50.0%)"));
        assert!(text.contains("no-flow properties: 1 mined (1 statically confirmed)"));
        assert!(text.contains("dynflow: 1 witnessed flow(s), 0 soundness violation(s)"));

        assert_eq!(report.dynflow_leaky_edges(), (1, 2));
        assert!(report.check_ok());
    }

    #[test]
    fn soundness_violations_and_dynflow_failures_fail_check() {
        let mut report = BatchReport::default();
        let mut d = copy_report(&Policy::new());
        let mut section = dynflow_section();
        section.soundness_violations = vec![("a".into(), "x".into())];
        d.dynflow = Some(section);
        report.designs.push(d);
        assert!(
            !report.check_ok(),
            "a witnessed-but-unpredicted flow is a hard failure"
        );
        assert!(report.to_text().contains("soundness VIOLATION a -> x"));

        let mut report = BatchReport::default();
        let mut d = copy_report(&Policy::new());
        d.dynflow_error = Some("simulation error: oops".into());
        report.designs.push(d);
        assert!(!report.check_ok());
        assert!(report.to_text().contains("dynamic flows: FAILED"));
    }
}
