//! Rendering of `vhdl1c --profile` output: the profile JSON document and
//! the text flame-style self-time table.
//!
//! The profile is a *separate* document from the analysis/verify report —
//! report bytes never change with profiling on — and it is explicitly split
//! into a deterministic half and a wall-clock half:
//!
//! * the `"deterministic"` object (rendered on a single line so scripts can
//!   `grep`+`cmp` it) carries only counters that are byte-identical across
//!   runs and worker counts: stage run/memo-hit counts, work and artifact
//!   totals, engine cache hits/misses, dedup counts.  `xtask
//!   profile-series` folds these into `BENCH_alfp.json`;
//! * everything else (span wall times, self-time histograms, pool queue
//!   wait and utilization, watchdog events) varies run to run and exists
//!   for humans and dashboards, never for gating.

use crate::driver::BatchTelemetry;
use crate::json;
use std::fmt::Write as _;
use vhdl1_infoflow::{SpanRecord, TraceSnapshot};

/// Schema version of the profile JSON document.
pub const PROFILE_SCHEMA: u32 = 1;

/// Upper bounds (exclusive, nanoseconds) of the self-time histogram
/// buckets; the last bucket is unbounded.  Decade buckets from 1µs to 1s.
const HIST_BOUNDS: [u64; 7] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// Self wall time of one span: its wall time minus the wall time of
/// directly nested children (same design, parent pointing at this stage).
fn span_self_ns(snapshot: &TraceSnapshot, span: &SpanRecord) -> u64 {
    let child_ns: u64 = snapshot
        .spans
        .iter()
        .filter(|c| c.parent == Some(span.stage) && c.design == span.design)
        .map(|c| c.wall_ns)
        .sum();
    span.wall_ns.saturating_sub(child_ns)
}

/// Histogram of per-span self times for one stage, [`HIST_BOUNDS`] buckets
/// plus one overflow bucket.
fn self_time_hist(snapshot: &TraceSnapshot, stage: &str) -> [u64; HIST_BOUNDS.len() + 1] {
    let mut hist = [0u64; HIST_BOUNDS.len() + 1];
    for span in snapshot.spans.iter().filter(|s| s.stage == stage) {
        let self_ns = span_self_ns(snapshot, span);
        let bucket = HIST_BOUNDS
            .iter()
            .position(|&b| self_ns < b)
            .unwrap_or(HIST_BOUNDS.len());
        hist[bucket] += 1;
    }
    hist
}

/// Renders the single-line deterministic section: every counter in it is
/// byte-identical across runs and `--jobs` values for a fixed corpus and
/// options.
fn deterministic_line(t: &BatchTelemetry) -> String {
    let mut stages = String::new();
    if let Some(snapshot) = &t.trace {
        let totals = snapshot.stage_totals();
        let parts: Vec<String> = totals
            .iter()
            .map(|agg| {
                format!(
                    "\"{}\": {{\"runs\": {}, \"memo_hits\": {}, \"work\": {}, \"items\": {}}}",
                    agg.stage, agg.count, agg.memo_hits, agg.work, agg.items
                )
            })
            .collect();
        stages = format!(", \"stages\": {{{}}}", parts.join(", "));
    }
    format!(
        "{{\"jobs\": {}, \"unique_jobs\": {}, \"cache_hits\": {}, \"cache_misses\": {}{stages}}}",
        t.jobs, t.unique_jobs, t.stats.cache_hits, t.stats.cache_misses
    )
}

/// Renders the profile JSON document.
///
/// The `"deterministic"` value is emitted on one line of its own (see the
/// module docs); the rest of the document is pretty-printed like the
/// analysis report.
pub fn render_json(t: &BatchTelemetry) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"tool\": \"vhdl1c-profile\",");
    let _ = writeln!(out, "  \"schema\": {PROFILE_SCHEMA},");
    let _ = writeln!(out, "  \"deterministic\": {},", deterministic_line(t));
    let _ = writeln!(out, "  \"wall_ns\": {},", t.wall_ns);
    let _ = writeln!(out, "  \"watchdog_cancels\": {},", t.watchdog_cancels);
    let s = &t.stats;
    let _ = writeln!(
        out,
        "  \"engine\": {{\"frontend\": {}, \"rd\": {}, \"local\": {}, \"specialized\": {}, \
         \"global\": {}, \"improved\": {}, \"flow_graph\": {}, \"kemmerer\": {}, \
         \"smoke\": {}, \"dynamic_flows\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
         \"store_hits\": {}, \"store_misses\": {}, \"store_writes\": {}, \
         \"units_reused\": {}, \"units_recomputed\": {}}},",
        s.frontend,
        s.rd,
        s.local,
        s.specialized,
        s.global,
        s.improved,
        s.flow_graph,
        s.kemmerer,
        s.smoke,
        s.dynamic_flows,
        s.cache_hits,
        s.cache_misses,
        s.store_hits,
        s.store_misses,
        s.store_writes,
        s.units_reused,
        s.units_recomputed
    );
    match &t.pool {
        Some(p) => {
            let busy: Vec<String> = p.busy_ns.iter().map(u64::to_string).collect();
            let _ = writeln!(
                out,
                "  \"pool\": {{\"workers\": {}, \"items\": {}, \"steals\": {}, \
                 \"queue_wait_ns\": {}, \"busy_ns\": [{}], \"wall_ns\": {}, \
                 \"utilization\": {:.6}}},",
                p.workers,
                p.items,
                p.steals,
                p.queue_wait_ns,
                busy.join(", "),
                p.wall_ns,
                p.utilization()
            );
        }
        None => {
            let _ = writeln!(out, "  \"pool\": null,");
        }
    }
    match &t.trace {
        Some(snapshot) => {
            let totals = snapshot.stage_totals();
            out.push_str("  \"stages\": [\n");
            for (i, agg) in totals.iter().enumerate() {
                let hist = self_time_hist(snapshot, agg.stage);
                let hist: Vec<String> = hist.iter().map(u64::to_string).collect();
                let comma = if i + 1 < totals.len() { "," } else { "" };
                let _ = writeln!(
                    out,
                    "    {{\"stage\": \"{}\", \"runs\": {}, \"memo_hits\": {}, \
                     \"wall_ns\": {}, \"self_ns\": {}, \"work\": {}, \"items\": {}, \
                     \"self_ns_hist\": [{}]}}{comma}",
                    agg.stage,
                    agg.count,
                    agg.memo_hits,
                    agg.wall_ns,
                    agg.self_ns,
                    agg.work,
                    agg.items,
                    hist.join(", ")
                );
            }
            out.push_str("  ],\n");
            out.push_str("  \"designs\": [\n");
            let mut first = true;
            let mut i = 0;
            while i < snapshot.spans.len() {
                let design = &snapshot.spans[i].design;
                let mut spans = Vec::new();
                while i < snapshot.spans.len() && snapshot.spans[i].design == *design {
                    let span = &snapshot.spans[i];
                    spans.push(format!(
                        "{{\"stage\": \"{}\", \"parent\": {}, \"wall_ns\": {}, \
                         \"work\": {}, \"items\": {}}}",
                        span.stage,
                        json::opt_string(span.parent),
                        span.wall_ns,
                        span.work,
                        span.items
                    ));
                    i += 1;
                }
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "    {{\"name\": {}, \"spans\": [{}]}}",
                    json::string(design),
                    spans.join(", ")
                );
            }
            out.push_str("\n  ],\n");
            let events: Vec<String> = snapshot
                .events
                .iter()
                .map(|e| {
                    format!(
                        "{{\"design\": {}, \"kind\": {}, \"elapsed_ms\": {}}}",
                        json::string(&e.design),
                        json::string(e.kind),
                        e.elapsed_ms
                    )
                })
                .collect();
            let _ = writeln!(out, "  \"events\": [{}]", events.join(", "));
        }
        None => {
            let _ = writeln!(out, "  \"stages\": [],");
            let _ = writeln!(out, "  \"designs\": [],");
            let _ = writeln!(out, "  \"events\": []");
        }
    }
    out.push_str("}\n");
    out
}

fn human_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the flame-style text table: one row per stage, sorted by self
/// time descending, plus a batch summary footer.
pub fn render_table(t: &BatchTelemetry) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>6} {:>6} {:>10} {:>7} {:>12} {:>9}",
        "stage", "runs", "memo", "self", "%self", "work", "items"
    );
    if let Some(snapshot) = &t.trace {
        let mut totals = snapshot.stage_totals();
        totals.sort_by_key(|t| std::cmp::Reverse(t.self_ns));
        let total_self: u64 = totals.iter().map(|agg| agg.self_ns).sum();
        for agg in totals.iter().filter(|a| a.count > 0 || a.memo_hits > 0) {
            let pct = if total_self == 0 {
                0.0
            } else {
                agg.self_ns as f64 * 100.0 / total_self as f64
            };
            let _ = writeln!(
                out,
                "{:<14} {:>6} {:>6} {:>10} {:>6.1}% {:>12} {:>9}",
                agg.stage,
                agg.count,
                agg.memo_hits,
                human_ns(agg.self_ns),
                pct,
                agg.work,
                agg.items
            );
        }
        let _ = writeln!(
            out,
            "{:<14} {:>6} {:>6} {:>10}",
            "total",
            totals.iter().map(|a| a.count).sum::<u64>(),
            totals.iter().map(|a| a.memo_hits).sum::<u64>(),
            human_ns(total_self)
        );
    }
    let _ = writeln!(
        out,
        "batch: {} job(s), {} unique, {} engine cache hit(s)/{} miss(es), wall {}",
        t.jobs,
        t.unique_jobs,
        t.stats.cache_hits,
        t.stats.cache_misses,
        human_ns(t.wall_ns)
    );
    if let Some(p) = &t.pool {
        let _ = writeln!(
            out,
            "pool: {} worker(s), {} item(s), {} steal(s), queue wait {}, utilization {:.0}%",
            p.workers,
            p.items,
            p.steals,
            human_ns(p.queue_wait_ns),
            p.utilization() * 100.0
        );
    }
    if t.watchdog_cancels > 0 {
        let _ = writeln!(out, "watchdog: {} cancel(s)", t.watchdog_cancels);
    }
    out
}

/// Renders the stderr `--stats` summary of the engine counters.
pub fn render_stats(t: &BatchTelemetry) -> String {
    let s = &t.stats;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "stats: {} job(s), {} unique after dedup, {} engine cache hit(s), {} miss(es)",
        t.jobs, t.unique_jobs, s.cache_hits, s.cache_misses
    );
    let _ = writeln!(
        out,
        "stats: stage runs: frontend {}, rd {}, local {}, specialized {}, global {}, \
         improved {}, flow_graph {}, kemmerer {}, smoke {}, dynamic_flows {}",
        s.frontend,
        s.rd,
        s.local,
        s.specialized,
        s.global,
        s.improved,
        s.flow_graph,
        s.kemmerer,
        s.smoke,
        s.dynamic_flows
    );
    if s.units_reused + s.units_recomputed > 0 {
        let _ = writeln!(
            out,
            "stats: incremental units: {} reused, {} recomputed",
            s.units_reused, s.units_recomputed
        );
    }
    if t.watchdog_cancels > 0 {
        let _ = writeln!(out, "stats: watchdog cancel(s): {}", t.watchdog_cancels);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_batch_traced, BatchOptions, Job};
    use vhdl1_corpus::{generate, CorpusSpec};

    fn corpus_jobs(seed: u64, count: usize) -> Vec<Job> {
        generate(&CorpusSpec::new(seed, count))
            .into_iter()
            .map(Job::from_generated)
            .collect()
    }

    fn profiled(jobs: usize) -> BatchOptions {
        BatchOptions {
            profile: true,
            jobs,
            ..BatchOptions::default()
        }
    }

    #[test]
    fn profile_json_is_structurally_sane() {
        let jobs = corpus_jobs(7, 6);
        let (_, telemetry) = run_batch_traced(&jobs, &profiled(2));
        let json = render_json(&telemetry);
        assert!(json.contains("\"tool\": \"vhdl1c-profile\""));
        assert!(json.contains("\"schema\": 1,"));
        assert!(json.contains("\"deterministic\": {"));
        assert!(json.contains("\"stage\": \"frontend\""));
        assert!(json.contains("\"pool\": {"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // The deterministic section is a single line (grep-able in CI).
        let det = json
            .lines()
            .find(|l| l.trim_start().starts_with("\"deterministic\""))
            .unwrap();
        assert!(det.trim_end().ends_with("},"));
    }

    #[test]
    fn deterministic_line_is_worker_count_independent() {
        let jobs = corpus_jobs(11, 8);
        let mut lines = Vec::new();
        for workers in [1, 2, 4] {
            let (report, telemetry) = run_batch_traced(&jobs, &profiled(workers));
            assert!(report.check_ok());
            lines.push(deterministic_line(&telemetry));
        }
        assert_eq!(lines[0], lines[1]);
        assert_eq!(lines[0], lines[2]);
    }

    #[test]
    fn self_time_sums_to_at_most_wall_clock_sequentially() {
        let jobs = corpus_jobs(7, 6);
        let (_, telemetry) = run_batch_traced(&jobs, &profiled(1));
        let snapshot = telemetry.trace.as_ref().unwrap();
        assert!(
            snapshot.total_self_ns() <= telemetry.wall_ns,
            "self {} > wall {}",
            snapshot.total_self_ns(),
            telemetry.wall_ns
        );
    }

    #[test]
    fn table_and_stats_render_the_counters() {
        let jobs = corpus_jobs(3, 4);
        let (_, telemetry) = run_batch_traced(&jobs, &profiled(1));
        let table = render_table(&telemetry);
        assert!(table.contains("stage"));
        assert!(table.contains("frontend"));
        assert!(table.contains("batch: 4 job(s), 4 unique"));
        let stats = render_stats(&telemetry);
        assert!(stats.contains("stage runs: frontend 4"));
    }

    #[test]
    fn histogram_buckets_cover_every_span() {
        let jobs = corpus_jobs(5, 4);
        let (_, telemetry) = run_batch_traced(&jobs, &profiled(1));
        let snapshot = telemetry.trace.as_ref().unwrap();
        for agg in snapshot.stage_totals() {
            let hist = self_time_hist(snapshot, agg.stage);
            assert_eq!(hist.iter().sum::<u64>(), agg.count, "stage {}", agg.stage);
        }
    }
}
