//! A work-stealing worker pool over `std::thread` — no dependencies.
//!
//! The batch driver's unit of work is one design analysis (hundreds of
//! microseconds to tens of milliseconds), so a mutex-guarded deque per
//! worker is far below the noise floor; what matters is that an unlucky
//! worker stuck with the corpus's biggest designs sheds its backlog to idle
//! peers.  Each worker owns a deque seeded round-robin, pops work from its
//! own front, and steals from a victim's back when empty.  The work set is
//! static (no task spawns tasks), so "every queue empty" is a correct
//! termination condition.
//!
//! Every invocation of the work closure runs under
//! [`std::panic::catch_unwind`]: one hostile design panicking the analyzer
//! must not take down the rest of the batch (or the worker thread holding
//! its queue).  A panicking item surfaces as `Err(message)` in its result
//! slot while every other item completes normally.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

/// Timing telemetry of one [`run_timed`] invocation.
///
/// All durations are wall-clock nanoseconds and therefore machine- and
/// load-dependent; only `workers`, `items` and `steals` are comparable
/// across runs (and `steals` only under a fixed worker count and corpus).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers actually spawned (after clamping `jobs` to the item count).
    pub workers: usize,
    /// Items processed.
    pub items: usize,
    /// Items obtained by stealing from another worker's queue.
    pub steals: u64,
    /// Summed over items: time between batch start and the moment a worker
    /// picked the item up — how long work sat queued.
    pub queue_wait_ns: u64,
    /// Per-worker time spent inside the work closure, `workers` entries.
    pub busy_ns: Vec<u64>,
    /// Wall-clock duration of the whole batch.
    pub wall_ns: u64,
}

impl PoolStats {
    /// Mean worker utilization in `[0, 1]`: busy time over wall time,
    /// averaged across workers.  `1.0` on a zero-wall batch by convention.
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 || self.busy_ns.is_empty() {
            return 1.0;
        }
        let busy: u64 = self.busy_ns.iter().sum();
        let cap = self.wall_ns.saturating_mul(self.busy_ns.len() as u64);
        (busy as f64 / cap as f64).min(1.0)
    }
}

/// [`run`] plus timing: returns the same in-order results together with
/// [`PoolStats`] (queue wait, per-worker busy time, steal count).
///
/// This is a separate entry point rather than a flag on [`run`] so the
/// unprofiled batch path performs no clock reads at all.
pub fn run_timed<T, R, F>(items: &[T], jobs: usize, work: F) -> (Vec<Result<R, String>>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let start = Instant::now();
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        let mut busy = 0u64;
        let mut queue_wait = 0u64;
        let results = items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let picked = Instant::now();
                queue_wait += (picked - start).as_nanos() as u64;
                let r = guarded(&work, i, t);
                busy += picked.elapsed().as_nanos() as u64;
                r
            })
            .collect();
        let stats = PoolStats {
            workers: 1,
            items: items.len(),
            steals: 0,
            queue_wait_ns: queue_wait,
            busy_ns: vec![busy],
            wall_ns: start.elapsed().as_nanos() as u64,
        };
        return (results, stats);
    }
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((w..items.len()).step_by(jobs).collect()))
        .collect();
    let steals = AtomicU64::new(0);
    let queue_wait = AtomicU64::new(0);
    let busy: Vec<AtomicU64> = (0..jobs).map(|_| AtomicU64::new(0)).collect();
    let mut slots: Vec<Option<Result<R, String>>> = (0..items.len()).map(|_| None).collect();
    let (tx, rx) = mpsc::channel::<(usize, Result<R, String>)>();
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let tx = tx.clone();
            let queues = &queues;
            let work = &work;
            let (steals, queue_wait, busy) = (&steals, &queue_wait, &busy);
            scope.spawn(move || {
                while let Some((i, stolen)) = pop_or_steal_traced(queues, w) {
                    if stolen {
                        steals.fetch_add(1, Ordering::Relaxed);
                    }
                    let picked = Instant::now();
                    queue_wait.fetch_add((picked - start).as_nanos() as u64, Ordering::Relaxed);
                    let r = guarded(work, i, &items[i]);
                    busy[w].fetch_add(picked.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    if tx.send((i, r)).is_err() {
                        return; // receiver gone: the scope is unwinding
                    }
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    let results = slots
        .into_iter()
        .map(|r| r.unwrap_or_else(|| Err("worker lost before reporting a result".to_string())))
        .collect();
    let stats = PoolStats {
        workers: jobs,
        items: items.len(),
        steals: steals.into_inner(),
        queue_wait_ns: queue_wait.into_inner(),
        busy_ns: busy.into_iter().map(AtomicU64::into_inner).collect(),
        wall_ns: start.elapsed().as_nanos() as u64,
    };
    (results, stats)
}

/// Runs `work` over every item, `jobs`-way parallel, returning results in
/// item order.  `jobs <= 1` runs inline on the calling thread (the honest
/// sequential baseline — no pool overhead to flatter the comparison).
///
/// Each `work` call is isolated with `catch_unwind`: a panic yields
/// `Err(panic message)` for that item only.  The inline path isolates
/// identically, so sequential and parallel runs agree on panicking inputs.
pub fn run<T, R, F>(items: &[T], jobs: usize, work: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| guarded(&work, i, t))
            .collect();
    }
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((w..items.len()).step_by(jobs).collect()))
        .collect();
    let mut slots: Vec<Option<Result<R, String>>> = (0..items.len()).map(|_| None).collect();
    let (tx, rx) = mpsc::channel::<(usize, Result<R, String>)>();
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let tx = tx.clone();
            let queues = &queues;
            let work = &work;
            scope.spawn(move || {
                while let Some(i) = pop_or_steal(queues, w) {
                    let r = guarded(work, i, &items[i]);
                    if tx.send((i, r)).is_err() {
                        return; // receiver gone: the scope is unwinding
                    }
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|r| r.unwrap_or_else(|| Err("worker lost before reporting a result".to_string())))
        .collect()
}

/// One isolated `work` invocation.  `AssertUnwindSafe` is sound here: on
/// `Err` the only thing observed afterwards is the panic payload — the
/// closure's captures are shared immutable state (`&items`, the engine)
/// whose broken invariants, if any, surface as further per-item errors, not
/// undefined behavior.
fn guarded<T, R>(work: &impl Fn(usize, &T) -> R, i: usize, item: &T) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(|| work(i, item))).map_err(|payload| panic_message(&*payload))
}

/// Best-effort extraction of the human-readable panic message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

/// [`pop_or_steal`] that also reports whether the item was stolen from a
/// victim's queue (for [`PoolStats::steals`]).
fn pop_or_steal_traced(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<(usize, bool)> {
    if let Some(i) = queues[w]
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .pop_front()
    {
        return Some((i, false));
    }
    for off in 1..queues.len() {
        let victim = (w + off) % queues.len();
        if let Some(i) = queues[victim]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .pop_back()
        {
            return Some((i, true));
        }
    }
    None
}

fn pop_or_steal(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    // A queue mutex is only held across `pop_front`/`pop_back` (which do
    // not panic), but recover from poisoning anyway: an index deque has no
    // invariants a half-completed pop could break.
    if let Some(i) = queues[w]
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .pop_front()
    {
        return Some(i);
    }
    for off in 1..queues.len() {
        let victim = (w + off) % queues.len();
        if let Some(i) = queues[victim]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .pop_back()
        {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 4, 16] {
            let out = run(&items, jobs, |_, &x| x * 2);
            let out: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..257).collect();
        let out = run(&items, 8, |i, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            (i as u32, x)
        });
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
        for (i, r) in out.iter().enumerate() {
            let (idx, x) = r.as_ref().unwrap();
            assert_eq!(*idx as usize, i);
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn stealing_drains_a_skewed_queue() {
        // One enormous item at index 0 (owned by worker 0) followed by many
        // small ones: with stealing, the small items finish on other workers
        // while worker 0 is busy — the run completes either way, so this is
        // a liveness check plus an eyeball on the skew path.
        let items: Vec<u64> = std::iter::once(200_000u64)
            .chain(std::iter::repeat_n(10, 63))
            .collect();
        let out = run(&items, 4, |_, &spin| {
            // Busy work proportional to the item value.
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i).rotate_left(7);
            }
            acc
        });
        assert_eq!(out.len(), 64);
        assert!(out.iter().all(Result::is_ok));
    }

    #[test]
    fn empty_and_single_item_batches() {
        let none: Vec<u8> = vec![];
        assert!(run(&none, 8, |_, &x| x).is_empty());
        let one = run(&[41u8], 8, |_, &x| x + 1);
        assert_eq!(
            one.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(),
            vec![42]
        );
    }

    #[test]
    fn a_panicking_item_is_isolated() {
        let items: Vec<u32> = (0..32).collect();
        for jobs in [1, 4] {
            let out = run(&items, jobs, |_, &x| {
                assert!(x != 13, "boom at 13");
                x * 3
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i == 13 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains("boom at 13"), "panic message lost: {msg}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 * 3, "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn run_timed_matches_run_and_accounts_time() {
        let items: Vec<u64> = (0..48).map(|i| 500 + i * 10).collect();
        let spinner = |_: usize, &spin: &u64| {
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i).rotate_left(7);
            }
            acc
        };
        let plain: Vec<u64> = run(&items, 4, spinner)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        for workers in [1, 2, 4] {
            let (out, stats) = run_timed(&items, workers, spinner);
            let out: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(out, plain, "results differ at workers={workers}");
            assert_eq!(stats.workers, workers);
            assert_eq!(stats.items, items.len());
            assert_eq!(stats.busy_ns.len(), workers);
            // Busy time is bounded by what the workers could have spent.
            let busy: u64 = stats.busy_ns.iter().sum();
            assert!(
                busy <= stats.wall_ns.saturating_mul(workers as u64),
                "busy {busy} exceeds wall {} x {workers}",
                stats.wall_ns
            );
            let u = stats.utilization();
            assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
            if workers == 1 {
                assert_eq!(stats.steals, 0, "inline path cannot steal");
            }
        }
    }

    #[test]
    fn run_timed_isolates_panics_like_run() {
        let items: Vec<u32> = (0..16).collect();
        let (out, stats) = run_timed(&items, 2, |_, &x| {
            assert!(x != 7, "boom at 7");
            x
        });
        assert_eq!(stats.items, 16);
        assert!(out[7].as_ref().unwrap_err().contains("boom at 7"));
        assert!(out.iter().enumerate().all(|(i, r)| i == 7 || r.is_ok()));
    }

    #[test]
    fn non_string_panic_payloads_render_a_placeholder() {
        let out = run(&[0u8], 1, |_, _| -> u8 {
            std::panic::panic_any(42usize);
        });
        assert_eq!(out[0].as_ref().unwrap_err(), "panic of unknown type");
    }
}
