//! A work-stealing worker pool over `std::thread` — no dependencies.
//!
//! The batch driver's unit of work is one design analysis (hundreds of
//! microseconds to tens of milliseconds), so a mutex-guarded deque per
//! worker is far below the noise floor; what matters is that an unlucky
//! worker stuck with the corpus's biggest designs sheds its backlog to idle
//! peers.  Each worker owns a deque seeded round-robin, pops work from its
//! own front, and steals from a victim's back when empty.  The work set is
//! static (no task spawns tasks), so "every queue empty" is a correct
//! termination condition.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// Runs `work` over every item, `jobs`-way parallel, returning results in
/// item order.  `jobs <= 1` runs inline on the calling thread (the honest
/// sequential baseline — no pool overhead to flatter the comparison).
///
/// # Panics
///
/// Propagates panics from `work` (the scope join panics).
pub fn run<T, R, F>(items: &[T], jobs: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| work(i, t)).collect();
    }
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((w..items.len()).step_by(jobs).collect()))
        .collect();
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let tx = tx.clone();
            let queues = &queues;
            let work = &work;
            scope.spawn(move || {
                while let Some(i) = pop_or_steal(queues, w) {
                    let r = work(i, &items[i]);
                    if tx.send((i, r)).is_err() {
                        return; // receiver gone: another worker panicked
                    }
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("static work set: every index was queued exactly once"))
        .collect()
}

fn pop_or_steal(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = queues[w].lock().expect("pool queue poisoned").pop_front() {
        return Some(i);
    }
    for off in 1..queues.len() {
        let victim = (w + off) % queues.len();
        if let Some(i) = queues[victim]
            .lock()
            .expect("pool queue poisoned")
            .pop_back()
        {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 4, 16] {
            let out = run(&items, jobs, |_, &x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..257).collect();
        let out = run(&items, 8, |i, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            (i as u32, x)
        });
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
        for (i, (idx, x)) in out.iter().enumerate() {
            assert_eq!(*idx as usize, i);
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn stealing_drains_a_skewed_queue() {
        // One enormous item at index 0 (owned by worker 0) followed by many
        // small ones: with stealing, the small items finish on other workers
        // while worker 0 is busy — the run completes either way, so this is
        // a liveness check plus an eyeball on the skew path.
        let items: Vec<u64> = std::iter::once(200_000u64)
            .chain(std::iter::repeat_n(10, 63))
            .collect();
        let out = run(&items, 4, |_, &spin| {
            // Busy work proportional to the item value.
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i).rotate_left(7);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn empty_and_single_item_batches() {
        let none: Vec<u8> = vec![];
        assert!(run(&none, 8, |_, &x| x).is_empty());
        assert_eq!(run(&[41u8], 8, |_, &x| x + 1), vec![42]);
    }
}
