//! A work-stealing worker pool over `std::thread` — no dependencies.
//!
//! The batch driver's unit of work is one design analysis (hundreds of
//! microseconds to tens of milliseconds), so a mutex-guarded deque per
//! worker is far below the noise floor; what matters is that an unlucky
//! worker stuck with the corpus's biggest designs sheds its backlog to idle
//! peers.  Each worker owns a deque seeded round-robin, pops work from its
//! own front, and steals from a victim's back when empty.  The work set is
//! static (no task spawns tasks), so "every queue empty" is a correct
//! termination condition.
//!
//! Every invocation of the work closure runs under
//! [`std::panic::catch_unwind`]: one hostile design panicking the analyzer
//! must not take down the rest of the batch (or the worker thread holding
//! its queue).  A panicking item surfaces as `Err(message)` in its result
//! slot while every other item completes normally.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;

/// Runs `work` over every item, `jobs`-way parallel, returning results in
/// item order.  `jobs <= 1` runs inline on the calling thread (the honest
/// sequential baseline — no pool overhead to flatter the comparison).
///
/// Each `work` call is isolated with `catch_unwind`: a panic yields
/// `Err(panic message)` for that item only.  The inline path isolates
/// identically, so sequential and parallel runs agree on panicking inputs.
pub fn run<T, R, F>(items: &[T], jobs: usize, work: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| guarded(&work, i, t))
            .collect();
    }
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((w..items.len()).step_by(jobs).collect()))
        .collect();
    let mut slots: Vec<Option<Result<R, String>>> = (0..items.len()).map(|_| None).collect();
    let (tx, rx) = mpsc::channel::<(usize, Result<R, String>)>();
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let tx = tx.clone();
            let queues = &queues;
            let work = &work;
            scope.spawn(move || {
                while let Some(i) = pop_or_steal(queues, w) {
                    let r = guarded(work, i, &items[i]);
                    if tx.send((i, r)).is_err() {
                        return; // receiver gone: the scope is unwinding
                    }
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|r| r.unwrap_or_else(|| Err("worker lost before reporting a result".to_string())))
        .collect()
}

/// One isolated `work` invocation.  `AssertUnwindSafe` is sound here: on
/// `Err` the only thing observed afterwards is the panic payload — the
/// closure's captures are shared immutable state (`&items`, the engine)
/// whose broken invariants, if any, surface as further per-item errors, not
/// undefined behavior.
fn guarded<T, R>(work: &impl Fn(usize, &T) -> R, i: usize, item: &T) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(|| work(i, item))).map_err(|payload| panic_message(&*payload))
}

/// Best-effort extraction of the human-readable panic message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

fn pop_or_steal(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    // A queue mutex is only held across `pop_front`/`pop_back` (which do
    // not panic), but recover from poisoning anyway: an index deque has no
    // invariants a half-completed pop could break.
    if let Some(i) = queues[w]
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .pop_front()
    {
        return Some(i);
    }
    for off in 1..queues.len() {
        let victim = (w + off) % queues.len();
        if let Some(i) = queues[victim]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .pop_back()
        {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 4, 16] {
            let out = run(&items, jobs, |_, &x| x * 2);
            let out: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..257).collect();
        let out = run(&items, 8, |i, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            (i as u32, x)
        });
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
        for (i, r) in out.iter().enumerate() {
            let (idx, x) = r.as_ref().unwrap();
            assert_eq!(*idx as usize, i);
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn stealing_drains_a_skewed_queue() {
        // One enormous item at index 0 (owned by worker 0) followed by many
        // small ones: with stealing, the small items finish on other workers
        // while worker 0 is busy — the run completes either way, so this is
        // a liveness check plus an eyeball on the skew path.
        let items: Vec<u64> = std::iter::once(200_000u64)
            .chain(std::iter::repeat_n(10, 63))
            .collect();
        let out = run(&items, 4, |_, &spin| {
            // Busy work proportional to the item value.
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i).rotate_left(7);
            }
            acc
        });
        assert_eq!(out.len(), 64);
        assert!(out.iter().all(Result::is_ok));
    }

    #[test]
    fn empty_and_single_item_batches() {
        let none: Vec<u8> = vec![];
        assert!(run(&none, 8, |_, &x| x).is_empty());
        let one = run(&[41u8], 8, |_, &x| x + 1);
        assert_eq!(
            one.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(),
            vec![42]
        );
    }

    #[test]
    fn a_panicking_item_is_isolated() {
        let items: Vec<u32> = (0..32).collect();
        for jobs in [1, 4] {
            let out = run(&items, jobs, |_, &x| {
                assert!(x != 13, "boom at 13");
                x * 3
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i == 13 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains("boom at 13"), "panic message lost: {msg}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 * 3, "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn non_string_panic_payloads_render_a_placeholder() {
        let out = run(&[0u8], 1, |_, _| -> u8 {
            std::panic::panic_any(42usize);
        });
        assert_eq!(out[0].as_ref().unwrap_err(), "panic of unknown type");
    }
}
