//! Minimal JSON emission helpers (the workspace vendors no serializer; the
//! report schema is small and stable, so hand-rolled emission keeps the
//! output byte-deterministic — a property the golden-file and determinism
//! tests pin down).

/// Escapes a string for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a quoted JSON string literal.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Renders an `Option` as a JSON value or `null`.
pub fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Renders an optional string as a quoted literal or `null`.
pub fn opt_string(v: Option<&str>) -> String {
    match v {
        Some(v) => string(v),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(string("x"), "\"x\"");
    }

    #[test]
    fn options_render_null() {
        assert_eq!(opt::<u32>(None), "null");
        assert_eq!(opt(Some(3)), "3");
        assert_eq!(opt_string(None), "null");
        assert_eq!(opt_string(Some("a")), "\"a\"");
    }
}
