//! # `vhdl1-cli` — the `vhdl1c` batch analysis driver
//!
//! The executable front door of the reproduction: where the library crates
//! analyze one elaborated design at a time, `vhdl1c` runs the whole
//! pipeline — parse → elaborate → Reaching Definitions → closure → flow
//! graph → policy audit — over *files and corpora*, in parallel, with
//! machine-readable output:
//!
//! * [`driver`] — batch orchestration: jobs, policies, ground-truth
//!   checking, smoke simulation, and the content-hash result cache;
//! * [`pool`] — the `std::thread` work-stealing scheduler behind `--jobs`;
//! * [`report`] — the [`report::DesignReport`]/[`report::BatchReport`]
//!   security reports with JSON, Graphviz DOT and text renderings (shared
//!   with the `covert_channel_audit` example);
//! * [`profile`] — the `--profile` telemetry documents (profile JSON and
//!   the flame-style self-time table), kept strictly out of the reports;
//! * [`json`] — dependency-free JSON emission helpers.
//!
//! ```
//! use vhdl1_cli::driver::{run_batch, BatchOptions, Job};
//! use vhdl1_corpus::{generate, CorpusSpec};
//!
//! let jobs: Vec<Job> = generate(&CorpusSpec::new(7, 4))
//!     .into_iter()
//!     .map(Job::from_generated)
//!     .collect();
//! let batch = run_batch(&jobs, &BatchOptions { jobs: 4, ..BatchOptions::default() });
//! assert_eq!(batch.designs.len(), 4);
//! assert!(batch.check_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod json;
pub mod pool;
pub mod profile;
pub mod report;

pub use driver::{
    run_batch, run_batch_on, run_batch_traced, run_edit_stream, run_edit_stream_on, BatchOptions,
    BatchTelemetry, Format, Job, JobTruth, VerifyOptions,
};
pub use pool::PoolStats;
pub use report::{
    analysis_report, design_report, BatchError, BatchReport, DegradedEntry, DesignReport,
    ReportViolation,
};
// The content-hash function moved into the analysis engine (the cache now
// lives in the library); re-exported here so existing `vhdl1_cli::fnv1a64`
// callers keep working.
pub use vhdl1_infoflow::fnv1a64;
