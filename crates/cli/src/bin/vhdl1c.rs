//! `vhdl1c` — generate and batch-analyze VHDL1 design corpora.
//!
//! ```console
//! $ vhdl1c gen --seed 7 --count 50                    # corpus manifest on stdout
//! $ vhdl1c gen --seed 7 --count 50 | vhdl1c analyze --jobs 8 --format json
//! $ vhdl1c analyze design.vhd --policy levels.pol --format text
//! $ vhdl1c analyze corpus.manifest --jobs 4 --smoke --check --out report.json
//! $ vhdl1c gen --seed 3 --count 20 --families hostile \
//!     | vhdl1c analyze --budget tight --deadline-ms 2000 --check
//! ```

use std::io::{Read as _, Write as _};
use std::process::ExitCode;
use vhdl1_cli::driver::{
    run_batch, run_batch_traced, run_edit_stream, BatchOptions, Format, Job, VerifyOptions,
};
use vhdl1_cli::profile;
use vhdl1_corpus::{edit_stream, generate, parse_manifest, write_manifest, CorpusSpec, Family};
use vhdl1_infoflow::{Budget, Policy};

const USAGE: &str = "\
usage:
  vhdl1c gen --seed N --count N [--families f1,f2] [--out FILE]
      Generate a deterministic corpus manifest (stdout by default).
      Families: pipeline, fsm, sbox_core, cross_flow (default: all),
      plus the opt-in `hostile` family of adversarial stress designs
      (never generated unless named).

  vhdl1c analyze [FILE...] [options]
      Analyze .vhd/.vhdl files and/or corpus manifests; with no FILE,
      read a manifest from stdin (the `gen | analyze` pipe).
      --jobs N          worker threads (default 1)
      --format FMT      json | dot | text (default json)
      --policy FILE     audit against this policy file instead of the
                        corpus-embedded ground-truth policies
      --out FILE        write the report to FILE instead of stdout
      --smoke           also smoke-simulate each design to quiescence
      --timing          record per-design and batch wall-clock times
      --check           gate the exit code on batch cleanliness (below)
      --budget NAME     resource budget: tight | standard | unlimited
                        (default unlimited); exhausted designs land in
                        the report's `degraded` section
      --deadline-ms N   per-design wall-clock deadline; over-deadline
                        designs are cooperatively cancelled and degraded
      --base            base closure only (no incoming/outgoing nodes)
      --no-cache        disable the engine's analysis memo table
                        (report-level dedup of identical jobs stays on)
      --cache-dir DIR   persist analysis artifacts to DIR; reruns (and
                        vhdl1d daemons) serve warm designs from disk
                        without re-parsing
      --stats           print engine stage/cache counters to stderr
      --profile[=FILE]  print a per-stage self-time table to stderr and,
                        with =FILE, write the profile JSON document to
                        FILE; the analysis report itself is unchanged

  vhdl1c edit-stream [options]
      Generate a deterministic edit stream — a multi-process base design
      plus cumulative single-process mutations — and replay it through
      one incremental analysis workspace, analyzing every revision in
      order.  Report bytes are identical to a fresh `analyze` of each
      revision; only the work differs (untouched processes are reused).
      --seed N          stream seed (default 1)
      --processes N     processes in the design (default 8, min 2)
      --edits N         single-process mutations to replay (default 4)
      Takes analyze's --format, --policy, --out, --budget, --base,
      --no-cache, --cache-dir, --timing, --stats and --profile[=FILE]
      options, plus:
      --check           gate the exit code on batch cleanliness and on
                        the reuse contract: every edit must recompute
                        exactly one process (skipped under --no-cache
                        or a step-bounded --budget, where incremental
                        reuse is disabled by design)

  vhdl1c verify [FILE...] [options]
      Analyze like `analyze`, then witness dynamic flows per design by
      seeded differential simulation (twin runs perturbing one input at
      a time) and cross-check them against the static flow graph:
      a witnessed flow the static analysis missed is a soundness
      violation (hard --check failure); static edges never witnessed
      are reported as the precision gap, with per-edge flow coverage.
      Takes every `analyze` option, plus:
      --rounds N        stimulus rounds per perturbation source
                        (default 16)
      --seed N          stimulus seed (default 1)
      --min-coverage F  with --check, also fail (exit 2) when static
                        flow-edge coverage over leaky designs falls
                        below F (0..=1)

  vhdl1c help
      Show this message.

exit codes:
  0  success (with --check: batch clean, nothing degraded)
  1  usage or I/O error
  2  --check failed: unexpected error, ground-truth mismatch, smoke
     failure, dynamic soundness violation, dynflow failure, or
     coverage below --min-coverage (wrong answers)
  3  --check passed but at least one design exceeded its resource
     budget or deadline (incomplete answers)

policy file format: `level NAME N` and `allow FROM -> TO` lines.";

/// A CLI failure: usage errors reprint the usage text, runtime errors
/// (unreadable files, malformed policies, broken pipes) stay one line.
enum CliError {
    Usage(String),
    Runtime(String),
}

fn usage(message: impl Into<String>) -> CliError {
    CliError::Usage(message.into())
}

fn runtime(message: impl Into<String>) -> CliError {
    CliError::Runtime(message.into())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        Err(CliError::Runtime(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let (command, rest) = args.split_first().ok_or_else(|| usage("missing command"))?;
    match command.as_str() {
        "gen" => gen_command(rest),
        "analyze" => analyze_command(rest, false),
        "verify" => analyze_command(rest, true),
        "edit-stream" => edit_stream_command(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(usage(format!("unknown command `{other}`"))),
    }
}

/// Pulls the value of a `--flag VALUE` option out of `args`, if present.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, CliError> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(usage(format!("`{flag}` needs a value")));
        }
        let value = args.remove(i + 1);
        args.remove(i);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Pulls `--profile` or `--profile=PATH` out of `args`: `None` when absent,
/// `Some(None)` for the bare flag, `Some(Some(path))` with a destination.
fn take_profile(args: &mut Vec<String>) -> Option<Option<String>> {
    let i = args
        .iter()
        .position(|a| a == "--profile" || a.starts_with("--profile="))?;
    let arg = args.remove(i);
    Some(arg.strip_prefix("--profile=").map(str::to_string))
}

/// Pulls a boolean `--flag` out of `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn gen_command(args: &[String]) -> Result<ExitCode, CliError> {
    let mut args = args.to_vec();
    let seed: u64 = take_value(&mut args, "--seed")?
        .ok_or_else(|| usage("gen needs --seed"))?
        .parse()
        .map_err(|_| usage("--seed must be an unsigned integer"))?;
    let count: usize = take_value(&mut args, "--count")?
        .ok_or_else(|| usage("gen needs --count"))?
        .parse()
        .map_err(|_| usage("--count must be an unsigned integer"))?;
    let mut spec = CorpusSpec::new(seed, count);
    if let Some(families) = take_value(&mut args, "--families")? {
        let families: Vec<Family> = families
            .split(',')
            .map(|f| {
                Family::from_str(f.trim()).ok_or_else(|| usage(format!("unknown family `{f}`")))
            })
            .collect::<Result<_, _>>()?;
        spec = spec.with_families(families);
    }
    let out_path = take_value(&mut args, "--out")?;
    if let Some(extra) = args.first() {
        return Err(usage(format!("unexpected argument `{extra}`")));
    }
    let manifest = write_manifest(&generate(&spec));
    write_output(out_path.as_deref(), &manifest)?;
    Ok(ExitCode::SUCCESS)
}

fn analyze_command(args: &[String], verify: bool) -> Result<ExitCode, CliError> {
    let mut args = args.to_vec();
    let mut opts = BatchOptions::default();
    let mut min_coverage = None;
    if verify {
        let mut verify_opts = VerifyOptions::default();
        if let Some(rounds) = take_value(&mut args, "--rounds")? {
            verify_opts.rounds = rounds
                .parse()
                .map_err(|_| usage("--rounds must be an unsigned integer"))?;
        }
        if let Some(seed) = take_value(&mut args, "--seed")? {
            verify_opts.seed = seed
                .parse()
                .map_err(|_| usage("--seed must be an unsigned integer"))?;
        }
        if let Some(cov) = take_value(&mut args, "--min-coverage")? {
            let cov: f64 = cov
                .parse()
                .map_err(|_| usage("--min-coverage must be a number in 0..=1"))?;
            if !(0.0..=1.0).contains(&cov) {
                return Err(usage("--min-coverage must be a number in 0..=1"));
            }
            min_coverage = Some(cov);
        }
        opts.verify = Some(verify_opts);
    }
    if let Some(jobs) = take_value(&mut args, "--jobs")? {
        opts.jobs = jobs
            .parse()
            .map_err(|_| usage("--jobs must be an unsigned integer"))?;
    }
    if let Some(fmt) = take_value(&mut args, "--format")? {
        opts.format =
            Format::from_str(&fmt).ok_or_else(|| usage(format!("unknown format `{fmt}`")))?;
    }
    if let Some(path) = take_value(&mut args, "--policy")? {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| runtime(format!("cannot read policy `{path}`: {e}")))?;
        opts.policy =
            Some(Policy::parse_text(&text).map_err(|e| runtime(format!("policy `{path}`: {e}")))?);
    }
    if let Some(name) = take_value(&mut args, "--budget")? {
        opts.analysis.budget = Budget::preset(&name).ok_or_else(|| {
            usage(format!(
                "unknown budget `{name}` (tight, standard, unlimited)"
            ))
        })?;
    }
    if let Some(ms) = take_value(&mut args, "--deadline-ms")? {
        let ms: u64 = ms
            .parse()
            .map_err(|_| usage("--deadline-ms must be an unsigned integer"))?;
        // Belt and suspenders: the engine checks its own wall clock at stage
        // boundaries, and the driver's watchdog trips the cooperative cancel
        // flag of any design that overstays.
        opts.analysis.budget.deadline_ms = Some(ms);
        opts.deadline_ms = Some(ms);
    }
    opts.smoke = take_flag(&mut args, "--smoke");
    opts.timing = take_flag(&mut args, "--timing");
    let profile = take_profile(&mut args);
    opts.profile = profile.is_some();
    let stats = take_flag(&mut args, "--stats");
    let check = take_flag(&mut args, "--check");
    if take_flag(&mut args, "--base") {
        opts.analysis.improved = false;
    }
    let no_cache = take_flag(&mut args, "--no-cache");
    if no_cache {
        opts.cache = vhdl1_infoflow::CachePolicy::Disabled;
    }
    if let Some(dir) = take_value(&mut args, "--cache-dir")? {
        if no_cache {
            return Err(usage("--cache-dir conflicts with --no-cache".to_string()));
        }
        std::fs::create_dir_all(&dir)
            .map_err(|e| runtime(format!("cannot create cache dir `{dir}`: {e}")))?;
        opts.cache = vhdl1_infoflow::CachePolicy::Persistent {
            dir: dir.into(),
            cap: vhdl1_cli::driver::DEFAULT_PERSISTENT_CACHE_CAP,
        };
    }
    let out_path = take_value(&mut args, "--out")?;
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        return Err(usage(format!("unknown option `{flag}`")));
    }

    let jobs = collect_jobs(&args)?;
    // Telemetry collection is only engaged when asked for; the plain path
    // goes through `run_batch` with no clock reads at all.
    let (batch, telemetry) = if opts.profile || stats {
        let (batch, telemetry) = run_batch_traced(&jobs, &opts);
        (batch, Some(telemetry))
    } else {
        (run_batch(&jobs, &opts), None)
    };
    let rendered = match opts.format {
        Format::Json => batch.to_json(),
        Format::Dot => batch.to_dot(),
        Format::Text => batch.to_text(),
    };
    write_output(out_path.as_deref(), &rendered)?;
    for e in &batch.errors {
        let tag = if e.expected { " (expected)" } else { "" };
        eprintln!("error{tag}: {}: {}", e.name, e.error);
    }
    for d in &batch.degraded {
        eprintln!(
            "degraded: {}: {} budget exhausted (consumed {}, limit {})",
            d.name, d.stage, d.consumed, d.limit
        );
    }
    if let Some(telemetry) = &telemetry {
        if stats {
            eprint!("{}", profile::render_stats(telemetry));
        }
        if let Some(dest) = &profile {
            eprint!("{}", profile::render_table(telemetry));
            if let Some(path) = dest {
                std::fs::write(path, profile::render_json(telemetry))
                    .map_err(|e| runtime(format!("cannot write profile `{path}`: {e}")))?;
            }
        }
    }
    if check {
        // Coverage gate: judged over the leaky population when one exists
        // (clean designs legitimately keep conservative edges unexercised),
        // over everything otherwise.
        let coverage_ok = min_coverage.is_none_or(|min| {
            let (covered, total) = match batch.dynflow_leaky_edges() {
                (_, 0) => batch.dynflow_edges(),
                leaky => leaky,
            };
            total == 0 || covered as f64 / total as f64 >= min
        });
        if !batch.check_ok() || !coverage_ok {
            eprintln!(
                "check failed: {} unexpected error(s), {} ground-truth mismatch(es), \
                 {} smoke failure(s), {} soundness violation(s), {} dynflow failure(s){}",
                batch.unexpected_errors(),
                batch.ground_truth_mismatches(),
                batch.smoke_failures(),
                batch.soundness_violations(),
                batch.dynflow_failures(),
                if coverage_ok {
                    String::new()
                } else {
                    format!(", coverage below {:.2}", min_coverage.unwrap_or(0.0))
                }
            );
            return Ok(ExitCode::from(2));
        }
        if !batch.degraded.is_empty() {
            eprintln!(
                "check passed with {} design(s) degraded by resource budgets",
                batch.degraded.len()
            );
            return Ok(ExitCode::from(3));
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn edit_stream_command(args: &[String]) -> Result<ExitCode, CliError> {
    let mut args = args.to_vec();
    let parse_u = |flag: &str, value: Option<String>, default: usize| -> Result<usize, CliError> {
        value.map_or(Ok(default), |v| {
            v.parse()
                .map_err(|_| usage(format!("`{flag}` must be an unsigned integer")))
        })
    };
    let seed: u64 = take_value(&mut args, "--seed")?
        .map_or(Ok(1), |v| v.parse())
        .map_err(|_| usage("--seed must be an unsigned integer"))?;
    let processes = parse_u("--processes", take_value(&mut args, "--processes")?, 8)?;
    if processes < 2 {
        return Err(usage("--processes must be at least 2"));
    }
    let edits = parse_u("--edits", take_value(&mut args, "--edits")?, 4)?;

    let mut opts = BatchOptions::default();
    if let Some(fmt) = take_value(&mut args, "--format")? {
        opts.format =
            Format::from_str(&fmt).ok_or_else(|| usage(format!("unknown format `{fmt}`")))?;
    }
    if let Some(path) = take_value(&mut args, "--policy")? {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| runtime(format!("cannot read policy `{path}`: {e}")))?;
        opts.policy =
            Some(Policy::parse_text(&text).map_err(|e| runtime(format!("policy `{path}`: {e}")))?);
    }
    if let Some(name) = take_value(&mut args, "--budget")? {
        opts.analysis.budget = Budget::preset(&name).ok_or_else(|| {
            usage(format!(
                "unknown budget `{name}` (tight, standard, unlimited)"
            ))
        })?;
    }
    opts.timing = take_flag(&mut args, "--timing");
    let stats = take_flag(&mut args, "--stats");
    let profile_dest = take_profile(&mut args);
    opts.profile = profile_dest.is_some();
    let check = take_flag(&mut args, "--check");
    if take_flag(&mut args, "--base") {
        opts.analysis.improved = false;
    }
    let no_cache = take_flag(&mut args, "--no-cache");
    if no_cache {
        opts.cache = vhdl1_infoflow::CachePolicy::Disabled;
    }
    if let Some(dir) = take_value(&mut args, "--cache-dir")? {
        if no_cache {
            return Err(usage("--cache-dir conflicts with --no-cache".to_string()));
        }
        std::fs::create_dir_all(&dir)
            .map_err(|e| runtime(format!("cannot create cache dir `{dir}`: {e}")))?;
        opts.cache = vhdl1_infoflow::CachePolicy::Persistent {
            dir: dir.into(),
            cap: vhdl1_cli::driver::DEFAULT_PERSISTENT_CACHE_CAP,
        };
    }
    let out_path = take_value(&mut args, "--out")?;
    if let Some(extra) = args.first() {
        return Err(usage(format!("unexpected argument `{extra}`")));
    }

    let stream = edit_stream(seed, processes, edits);
    let jobs: Vec<Job> = stream
        .sources()
        .into_iter()
        .enumerate()
        .map(|(revision, src)| Job::from_source(format!("{}@r{revision}", stream.name), src))
        .collect();
    let (batch, telemetry) = run_edit_stream(&jobs, &opts);
    let rendered = match opts.format {
        Format::Json => batch.to_json(),
        Format::Dot => batch.to_dot(),
        Format::Text => batch.to_text(),
    };
    write_output(out_path.as_deref(), &rendered)?;
    for e in &batch.errors {
        eprintln!("error: {}: {}", e.name, e.error);
    }
    if stats {
        eprint!("{}", profile::render_stats(&telemetry));
    }
    if let Some(dest) = &profile_dest {
        eprint!("{}", profile::render_table(&telemetry));
        if let Some(path) = dest {
            std::fs::write(path, profile::render_json(&telemetry))
                .map_err(|e| runtime(format!("cannot write profile `{path}`: {e}")))?;
        }
    }
    if check {
        if !batch.check_ok() {
            eprintln!(
                "check failed: {} unexpected error(s), {} ground-truth mismatch(es)",
                batch.unexpected_errors(),
                batch.ground_truth_mismatches()
            );
            return Ok(ExitCode::from(2));
        }
        // Reuse contract — meaningful only when the incremental path is
        // live (a disabled cache or step-bounded dataflow budget falls
        // back to whole-design analysis by design).
        let incremental = !no_cache && opts.analysis.budget.max_dataflow_steps.is_none();
        if incremental {
            // Cold caches recompute the base plus one process per edit;
            // a warm persistent store can only lower that.  Every process
            // of every revision must be accounted one way or the other.
            let s = &telemetry.stats;
            let total = ((edits + 1) * processes) as u64;
            let max_recomputed = (processes + edits) as u64;
            if s.units_recomputed > max_recomputed || s.units_reused + s.units_recomputed != total {
                eprintln!(
                    "check failed: reuse contract broken: recomputed {} units \
                     (allowed at most {}), reused {}, expected {} total",
                    s.units_recomputed, max_recomputed, s.units_reused, total
                );
                return Ok(ExitCode::from(2));
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Builds the job list: named files (plain VHDL or manifests) or, with no
/// files, a manifest read from stdin.
fn collect_jobs(paths: &[String]) -> Result<Vec<Job>, CliError> {
    let mut jobs = Vec::new();
    if paths.is_empty() {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| runtime(format!("cannot read stdin: {e}")))?;
        jobs.extend(manifest_jobs(&text, "<stdin>")?);
        return Ok(jobs);
    }
    for path in paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| runtime(format!("cannot read `{path}`: {e}")))?;
        let is_vhdl = path.ends_with(".vhd") || path.ends_with(".vhdl");
        if is_vhdl {
            let stem = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or(path)
                .to_string();
            jobs.push(Job::from_source(stem, text));
        } else {
            jobs.extend(manifest_jobs(&text, path)?);
        }
    }
    Ok(jobs)
}

fn manifest_jobs(text: &str, origin: &str) -> Result<Vec<Job>, CliError> {
    let designs = parse_manifest(text).map_err(|e| runtime(format!("manifest `{origin}`: {e}")))?;
    if designs.is_empty() {
        return Err(runtime(format!(
            "manifest `{origin}` contains no designs (expected `--! design` headers)"
        )));
    }
    Ok(designs.into_iter().map(Job::from_generated).collect())
}

/// Writes the rendered output, turning every I/O failure — including a
/// broken stdout pipe (`gen | head`) — into a one-line diagnostic instead
/// of a panic.
fn write_output(path: Option<&str>, content: &str) -> Result<(), CliError> {
    match path {
        Some(path) => std::fs::write(path, content)
            .map_err(|e| runtime(format!("cannot write `{path}`: {e}"))),
        None => {
            let mut stdout = std::io::stdout().lock();
            stdout
                .write_all(content.as_bytes())
                .and_then(|()| stdout.flush())
                .map_err(|e| runtime(format!("cannot write to stdout: {e}")))
        }
    }
}
