//! # `vhdl1-syntax` — front end for the VHDL1 fragment
//!
//! This crate implements the front end of the VHDL1 language defined in
//! *Information Flow Analysis for VHDL* (Tolstrup, Nielson & Nielson,
//! PaCT 2005): the abstract syntax of Figure 1, a lexer and recursive-descent
//! parser for its conventional VHDL spelling, and the elaboration pass that
//! turns a parsed program into a flat [`Design`] of labelled processes — the
//! representation consumed by the simulator, the Reaching Definitions
//! analyses and the Information Flow analysis in the sibling crates.
//!
//! ## Quick start
//!
//! ```
//! use vhdl1_syntax::{parse, elaborate};
//!
//! let src = "
//!   entity copy is port(a : in std_logic; b : out std_logic); end copy;
//!   architecture rtl of copy is begin
//!     p : process begin b <= a; wait on a; end process p;
//!   end rtl;";
//! let design = elaborate(&parse(src)?)?;
//! assert_eq!(design.processes.len(), 1);
//! assert_eq!(design.input_signals(), vec!["a".to_string()]);
//! # Ok::<(), vhdl1_syntax::SyntaxError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod elaborate;
pub mod error;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::{
    Architecture, BinOp, Block, Concurrent, Decl, DesignUnit, Entity, Expr, Ident, Label, Port,
    PortMode, Process, Program, RangeDir, Slice, Stmt, Target, Type, UnOp,
};
pub use elaborate::{
    elaborate, elaborate_with, stmt_label, Design, ElabProcess, ElaborateOptions, SignalInfo,
    SignalKind, SignalNumbering, VariableInfo,
};
pub use error::{SyntaxError, SyntaxErrorKind};
pub use fingerprint::{
    design_context_fingerprint, design_context_text, unit_canonical_text, unit_fingerprint,
    unit_fingerprints,
};
pub use lexer::lex;
pub use parser::{
    parse, parse_expression, parse_statements, parse_with_depth, DEFAULT_PARSE_DEPTH,
};
pub use pretty::{pretty_expr, pretty_program, pretty_stmt};
pub use token::{Pos, Span};

/// Resource limits of the budgeted front end ([`frontend_with_limits`]).
///
/// `None` fields fall back to the built-in defaults: no source-size bound
/// and [`DEFAULT_PARSE_DEPTH`] nesting levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrontendLimits {
    /// Maximum accepted source length in bytes (checked before lexing).
    pub max_source_bytes: Option<u64>,
    /// Maximum combined expression/statement/block nesting depth.
    pub max_parse_depth: Option<u32>,
}

/// Parses and elaborates a source text in one step.
///
/// # Errors
///
/// Returns a [`SyntaxError`] from either the parser or the elaborator.
///
/// # Examples
///
/// ```
/// let d = vhdl1_syntax::frontend(
///     "entity e is port(a : in std_logic; b : out std_logic); end e;
///      architecture rtl of e is begin
///        p : process begin b <= a; wait on a; end process p;
///      end rtl;")?;
/// assert_eq!(d.name, "rtl");
/// # Ok::<(), vhdl1_syntax::SyntaxError>(())
/// ```
pub fn frontend(src: &str) -> Result<Design, SyntaxError> {
    elaborate(&parse(src)?)
}

/// [`frontend`] under explicit resource limits: the source size is checked
/// before lexing and the parser honours the nesting-depth bound.
///
/// # Errors
///
/// Returns a [`SyntaxError`] from the parser or the elaborator; exhausted
/// limits are reported as resource-limit errors
/// ([`SyntaxError::is_resource_limit`]) so budgeted callers can distinguish
/// them from malformed input.
pub fn frontend_with_limits(src: &str, limits: &FrontendLimits) -> Result<Design, SyntaxError> {
    if let Some(max) = limits.max_source_bytes {
        if src.len() as u64 > max {
            return Err(SyntaxError::resource(
                SyntaxErrorKind::Lex,
                None,
                format!("source is {} bytes, limit is {max}", src.len()),
            ));
        }
    }
    let depth = limits.max_parse_depth.unwrap_or(DEFAULT_PARSE_DEPTH);
    elaborate(&parse_with_depth(src, depth)?)
}
