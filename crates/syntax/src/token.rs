//! Tokens produced by the VHDL1 lexer.
//!
//! Tokens borrow their text from the lexed source where possible: an
//! identifier that is already lower-case (and a string literal that is
//! already upper-case) is a [`Cow::Borrowed`] slice of the input, so the
//! common machine-generated-source path allocates nothing per token.

use std::borrow::Cow;
use std::fmt;

/// A lexical token together with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token kind and payload.
    pub kind: TokenKind<'a>,
    /// Source position of the first character of the token.
    pub pos: Pos,
}

/// A line/column position in the source text (both 1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An optional source position carried by AST nodes for diagnostics.
///
/// Spans are deliberately invisible to `==`, hashing and ordering: two AST
/// nodes that differ only in their spans are the same tree.  This keeps the
/// pretty-printer round-trip property (`parse(pretty(ast)) == ast`) exact for
/// programmatically built ASTs — the corpus generator, the AES workloads and
/// the test generators construct nodes with [`Span::NONE`], while the parser
/// attaches real positions that elaboration errors report as `line:col`.
#[derive(Clone, Copy, Default)]
pub struct Span(Option<Pos>);

impl Span {
    /// The absent span (programmatically built nodes).
    pub const NONE: Span = Span(None);

    /// A span at a known source position.
    pub fn at(pos: Pos) -> Span {
        Span(Some(pos))
    }

    /// The recorded position, if any.
    pub fn pos(&self) -> Option<Pos> {
        self.0
    }
}

impl PartialEq for Span {
    fn eq(&self, _other: &Self) -> bool {
        true // spans never distinguish AST nodes
    }
}

impl Eq for Span {}

impl std::hash::Hash for Span {
    fn hash<H: std::hash::Hasher>(&self, _state: &mut H) {} // consistent with `==`
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Some(p) => write!(f, "Span({p})"),
            None => write!(f, "Span(?)"),
        }
    }
}

/// The different kinds of tokens of VHDL1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind<'a> {
    /// Identifier (case-insensitive in VHDL; normalised to lowercase).
    /// Borrows the source text when it is already lower-case.
    Ident(Cow<'a, str>),
    /// Reserved word.
    Keyword(Keyword),
    /// A `std_logic` character literal such as `'1'`.
    CharLit(char),
    /// A vector (string) literal such as `"0101"`.  Borrows the source text
    /// when it is already upper-case.
    StringLit(Cow<'a, str>),
    /// An integer literal.
    IntLit(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `:=`
    ColonEq,
    /// `<=` — signal assignment or less-or-equal, resolved by the parser.
    LtEq,
    /// `=`
    Eq,
    /// `/=`
    SlashEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `&`
    Ampersand,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::CharLit(c) => write!(f, "'{c}'"),
            TokenKind::StringLit(s) => write!(f, "\"{s}\""),
            TokenKind::IntLit(i) => write!(f, "{i}"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::ColonEq => write!(f, "`:=`"),
            TokenKind::LtEq => write!(f, "`<=`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::SlashEq => write!(f, "`/=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::GtEq => write!(f, "`>=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Ampersand => write!(f, "`&`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Reserved words of VHDL1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant names are their own documentation
pub enum Keyword {
    Entity,
    Is,
    Port,
    End,
    In,
    Out,
    StdLogic,
    StdLogicVector,
    Downto,
    To,
    Architecture,
    Of,
    Begin,
    Process,
    Block,
    Variable,
    Signal,
    Null,
    Wait,
    On,
    Until,
    If,
    Then,
    Else,
    Elsif,
    While,
    Loop,
    Do,
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor,
    Not,
}

impl Keyword {
    /// Looks up a keyword by its (lower-case) spelling.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "entity" => Entity,
            "is" => Is,
            "port" => Port,
            "end" => End,
            "in" => In,
            "out" => Out,
            "std_logic" => StdLogic,
            "std_logic_vector" => StdLogicVector,
            "downto" => Downto,
            "to" => To,
            "architecture" => Architecture,
            "of" => Of,
            "begin" => Begin,
            "process" => Process,
            "block" => Block,
            "variable" => Variable,
            "signal" => Signal,
            "null" => Null,
            "wait" => Wait,
            "on" => On,
            "until" => Until,
            "if" => If,
            "then" => Then,
            "else" => Else,
            "elsif" => Elsif,
            "while" => While,
            "loop" => Loop,
            "do" => Do,
            "and" => And,
            "or" => Or,
            "xor" => Xor,
            "nand" => Nand,
            "nor" => Nor,
            "xnor" => Xnor,
            "not" => Not,
            _ => return None,
        })
    }

    /// The canonical spelling of the keyword.
    pub fn as_str(&self) -> &'static str {
        use Keyword::*;
        match self {
            Entity => "entity",
            Is => "is",
            Port => "port",
            End => "end",
            In => "in",
            Out => "out",
            StdLogic => "std_logic",
            StdLogicVector => "std_logic_vector",
            Downto => "downto",
            To => "to",
            Architecture => "architecture",
            Of => "of",
            Begin => "begin",
            Process => "process",
            Block => "block",
            Variable => "variable",
            Signal => "signal",
            Null => "null",
            Wait => "wait",
            On => "on",
            Until => "until",
            If => "if",
            Then => "then",
            Else => "else",
            Elsif => "elsif",
            While => "while",
            Loop => "loop",
            Do => "do",
            And => "and",
            Or => "or",
            Xor => "xor",
            Nand => "nand",
            Nor => "nor",
            Xnor => "xnor",
            Not => "not",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for kw in [
            Keyword::Entity,
            Keyword::Process,
            Keyword::StdLogicVector,
            Keyword::Downto,
            Keyword::Xnor,
            Keyword::Wait,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("frobnicate"), None);
    }

    #[test]
    fn pos_display() {
        assert_eq!(Pos { line: 3, col: 14 }.to_string(), "3:14");
    }
}
